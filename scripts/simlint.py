#!/usr/bin/env python
"""Standalone entry point for the simlint static checker.

Equivalent to ``repro lint``; usable from pre-commit hooks or CI
without installing the package::

    python scripts/simlint.py src tests
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.simlint import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
