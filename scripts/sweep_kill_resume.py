#!/usr/bin/env python
"""Kill-resume acceptance check for the sweep orchestrator.

Runs the same small sweep plan twice:

1. **reference** — uninterrupted, in one process;
2. **victim** — in a subprocess that is SIGKILLed as soon as at least
   one result record is durable, then resumed with ``run_sweep`` until
   every planned fingerprint has a record.

The check passes when the victim's merged ``results.jsonl`` is
**byte-identical** to the reference's, order-normalised by sorting the
record lines (a parallel pool completes tasks in nondeterministic
order; the *bytes of each record* are what determinism promises).
A victim that happens to finish before the kill lands still exercises
the resume-is-noop path, so the comparison always runs.

Usage::

    python scripts/sweep_kill_resume.py [--workdir DIR] [--jobs N]
                                        [--kills K]

Exit status: 0 on byte-identity, 1 on any divergence.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.storage.base import KiB, MiB  # noqa: E402
from repro.sweep import build_plan, char_params, collect_faults  # noqa: E402
from repro.sweep import collect_workloads, run_sweep  # noqa: E402

CONFIGS = ["jbod", "raid1", "raid5"]
WORKLOADS = ["madbench:2:4", "btio:S:4"]
FUZZ_SEEDS = [0, 1, 2]


def small_plan():
    return build_plan(
        CONFIGS,
        collect_workloads(named=WORKLOADS, fuzz_seeds=FUZZ_SEEDS),
        collect_faults(["none"]),
        ["exact"],
        char_params((256 * KiB, 1 * MiB), char_file_bytes=8 * MiB,
                    ior_file_bytes=64 * MiB),
    )


#: subprocess body: run the same plan into the given run directory
_VICTIM_CODE = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {scripts!r})
from sweep_kill_resume import small_plan
from repro.sweep import run_sweep
run_sweep({rundir!r}, small_plan(), params={{"n_jobs": {jobs}}})
"""


def run_victim_until_killed(rundir: Path, jobs: int, min_records: int) -> bool:
    """Start the sweep in a subprocess and SIGKILL it once the WAL holds
    ``min_records`` records; returns True if the kill landed mid-run."""
    code = _VICTIM_CODE.format(
        src=str(Path(__file__).resolve().parent.parent / "src"),
        scripts=str(Path(__file__).resolve().parent),
        rundir=str(rundir),
        jobs=jobs,
    )
    proc = subprocess.Popen([sys.executable, "-c", code])
    results = rundir / "results.jsonl"
    deadline = time.time() + 300
    while time.time() < deadline:
        if proc.poll() is not None:
            return False  # finished (or died) before the kill
        if results.exists() and results.read_bytes().count(b"\n") >= min_records:
            break
        time.sleep(0.002)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    return True


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workdir", default=None,
                    help="directory for the run dirs (default: a tempdir)")
    ap.add_argument("--jobs", type=int, default=2, help="victim pool size")
    ap.add_argument("--kills", type=int, default=2,
                    help="how many times to kill + resume the victim")
    args = ap.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="sweep-kr-"))
    workdir.mkdir(parents=True, exist_ok=True)
    plan = small_plan()
    print(f"plan: {len(plan)} task(s); workdir: {workdir}")

    ref_dir = workdir / "reference"
    out = run_sweep(ref_dir, plan, params={"n_jobs": args.jobs})
    if out.exit_code != 0:
        print(f"FAIL: reference run exited {out.exit_code} ({out.error})")
        return 1
    reference = sorted((ref_dir / "results.jsonl").read_bytes().splitlines())
    print(f"reference: {len(reference)} record(s)")

    victim_dir = workdir / "victim"
    killed = run_victim_until_killed(victim_dir, args.jobs, min_records=1)
    print(f"victim: first run {'killed mid-sweep' if killed else 'completed'}")
    for k in range(1, args.kills):
        done = len(sorted((victim_dir / "results.jsonl").read_bytes()
                          .splitlines())) if (victim_dir / "results.jsonl"
                                              ).exists() else 0
        if done >= len(reference):
            break
        # resume in a fresh subprocess and kill that too
        code = _VICTIM_CODE.format(
            src=str(Path(__file__).resolve().parent.parent / "src"),
            scripts=str(Path(__file__).resolve().parent),
            rundir=str(victim_dir),
            jobs=args.jobs,
        ).replace("small_plan(), ", "None, resume=True, ")
        proc = subprocess.Popen([sys.executable, "-c", code])
        time.sleep(0.3)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        print(f"victim: resume #{k} killed")

    out = run_sweep(victim_dir, resume=True, params={"n_jobs": args.jobs})
    if out.exit_code != 0:
        print(f"FAIL: final resume exited {out.exit_code} ({out.error})")
        return 1
    merged = sorted((victim_dir / "results.jsonl").read_bytes().splitlines())

    if merged != reference:
        only_ref = set(reference) - set(merged)
        only_vic = set(merged) - set(reference)
        print(f"FAIL: {len(only_ref)} record(s) only in reference, "
              f"{len(only_vic)} only in victim")
        return 1
    print(f"OK: {len(merged)} record(s) byte-identical after kill-resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
