#!/usr/bin/env python
"""Perf-regression guard: fresh benchmark timings vs committed baselines.

Compares the timing keys that gate the pipeline's interactive speed —
serial characterization and full (no-fastpath) evaluation — between a
freshly generated ``BENCH_*.json`` and the committed baseline of the
same name.  Fails (exit 1) when a fresh timing is more than
``--factor`` (default 1.25, i.e. >25% slowdown) above the baseline.

CI machines are not the machines the baselines were recorded on, so
the factor is deliberately generous: the guard catches order-of-
magnitude regressions (an accidentally disabled fastpath, a quadratic
loop), not single-digit-percent noise.  Set ``REPRO_PERF_GUARD_FACTOR``
or pass ``--factor`` to loosen it further on noisy runners.

Usage::

    python scripts/perf_guard.py \
        --baseline BENCH_characterize.json --fresh fresh_characterize.json \
        --baseline BENCH_evaluate.json     --fresh fresh_evaluate.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: benchmark name -> timing keys guarded (see cmd_perf in repro.cli)
GUARDED_KEYS = {
    "characterize": ("characterize_serial",),
    "evaluate": ("evaluate_full",),
    # kernel microbench scenarios: a fixed event mix, so wall time is
    # the inverse of events/second — the sub-millisecond uncontended
    # scenario is left unguarded (pure timer noise at that scale)
    "kernel": (
        "kernel_total",
        "kernel_timeout_chain",
        "kernel_request_release",
        "kernel_contended_rotation",
        "kernel_coupled_rotation",
        "kernel_fs_serve",
    ),
}

#: benchmark name -> (base timing, instrumented timing) pairs checked
#: *within* the fresh run: instrumented / base must stay under the
#: overhead factor (metrics collection must stay nearly free)
OVERHEAD_KEYS = {
    "evaluate": (("evaluate_full", "evaluate_full_metrics"),),
}


def load(path: str) -> dict:
    return json.loads(Path(path).read_text())


def check(baseline_path: str, fresh_path: str, factor: float) -> list[str]:
    """Return a list of violation messages (empty = pass)."""
    if not Path(baseline_path).exists():
        print(f"perf-guard: no baseline {baseline_path} — skipping")
        return []
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    kind = fresh.get("benchmark", "")
    keys = GUARDED_KEYS.get(kind, ())
    if baseline.get("benchmark", "") != kind:
        print(
            f"perf-guard: {baseline_path} is a {baseline.get('benchmark')!r} "
            f"baseline but {fresh_path} is {kind!r} — skipping"
        )
        return []
    base_faults = baseline.get("params", {}).get("faults")
    fresh_faults = fresh.get("params", {}).get("faults")
    if base_faults != fresh_faults:
        # A run under fault injection measures degraded-mode behaviour
        # (rebuild contention, retransmit storms) — comparing it to a
        # healthy baseline (or vice versa) would flag the fault cost as
        # a regression.  Never compare across fault modes.
        print(
            f"perf-guard: fault schedules differ (baseline "
            f"{base_faults!r}, fresh {fresh_faults!r}) — skipping "
            f"{fresh_path}: fault-mode timings are never compared to "
            f"healthy baselines"
        )
        return []
    base_analytic = baseline.get("params", {}).get("analytic", False)
    fresh_analytic = fresh.get("params", {}).get("analytic", False)
    if base_analytic != fresh_analytic:
        # the analytic kernel mode trades calendar events for replay
        # arithmetic — its timings are a different regime, never
        # compared to exact-mode baselines
        print(
            f"perf-guard: analytic modes differ (baseline "
            f"{base_analytic!r}, fresh {fresh_analytic!r}) — skipping "
            f"{fresh_path}"
        )
        return []
    problems = []
    for key in keys:
        base = baseline.get("timings_s", {}).get(key)
        now = fresh.get("timings_s", {}).get(key)
        if base is None or now is None:
            print(f"perf-guard: {key}: missing in baseline or fresh run — skipping")
            continue
        ratio = now / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > factor else "ok"
        print(
            f"perf-guard: {key}: baseline {base:.3f}s fresh {now:.3f}s "
            f"(x{ratio:.2f}, limit x{factor:.2f}) {verdict}"
        )
        if ratio > factor:
            problems.append(
                f"{key}: {now:.3f}s is {ratio:.2f}x the committed {base:.3f}s "
                f"(limit {factor:.2f}x)"
            )
    return problems


def check_overhead(fresh_path: str, factor: float) -> list[str]:
    """Bound instrumentation overhead inside one fresh benchmark run.

    Both timings come from the same run on the same machine, so the
    factor can be much tighter than the cross-run guard — but not
    arbitrarily tight: even best-of-N evaluation timings carry ~±10%
    wall-clock noise on shared runners, which swamps the few-percent
    true cost of the sampler.  The default 1.10 catches a sampler
    regression to its pre-optimization cost (~1.17x measured) without
    tripping on timer noise; override with
    ``REPRO_METRICS_OVERHEAD_FACTOR``.
    """
    fresh = load(fresh_path)
    problems = []
    for base_key, inst_key in OVERHEAD_KEYS.get(fresh.get("benchmark", ""), ()):
        base = fresh.get("timings_s", {}).get(base_key)
        inst = fresh.get("timings_s", {}).get(inst_key)
        if base is None or inst is None:
            print(f"perf-guard: {inst_key}: missing in fresh run — skipping")
            continue
        ratio = inst / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > factor else "ok"
        print(
            f"perf-guard: {inst_key}: {inst:.3f}s vs {base_key} {base:.3f}s "
            f"(x{ratio:.3f}, limit x{factor:.2f}) {verdict}"
        )
        if ratio > factor:
            problems.append(
                f"{inst_key}: metrics collection costs {ratio:.3f}x the "
                f"uninstrumented {base_key} (limit {factor:.2f}x)"
            )
    return problems


def check_sanitize(fresh_path: str) -> list[str]:
    """Assert sanitize mode was OFF while the benchmark ran.

    The sanitizer must be strictly opt-in: a benchmark accidentally
    recorded under ``REPRO_SANITIZE=1`` would bake the instrumentation
    cost into the committed baselines and mask real regressions.  The
    disabled-mode hooks themselves are already covered by the regular
    ``evaluate_full`` regression check — they sit on the guarded hot
    path.
    """
    fresh = load(fresh_path)
    sanitize = fresh.get("params", {}).get("sanitize")
    if sanitize:
        print(f"perf-guard: {fresh_path}: recorded with sanitize mode ON — FAIL")
        return [f"{fresh_path}: benchmark ran with the sanitizer enabled"]
    print(f"perf-guard: {fresh_path}: sanitize mode off ok")
    return []


def profile_movers(
    baseline_path: str, fresh_path: str, top: int = 10
) -> None:
    """Attribute a gated regression to functions, not just a scenario.

    Diffs the committed vs fresh ``PROFILE_perf.json`` top-25 tables
    and prints the biggest cumulative-time movers.  Purely informative
    — the timing checks decide pass/fail; this tells the reader *where*
    the time went.  Functions present in only one table diff against
    zero (new hot code, or code that left the top-25).
    """
    for path in (baseline_path, fresh_path):
        if not Path(path).exists():
            print(f"perf-guard: no profile {path} — cannot attribute")
            return
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    if baseline.get("benchmark") != "profile" or fresh.get("benchmark") != "profile":
        print("perf-guard: profile files are not 'profile' benchmarks — cannot attribute")
        return
    base_rows = {r["function"]: r for r in baseline.get("top_cumulative", [])}
    fresh_rows = {r["function"]: r for r in fresh.get("top_cumulative", [])}
    base_reps = max(baseline.get("params", {}).get("profile_repeat", 1), 1)
    fresh_reps = max(fresh.get("params", {}).get("profile_repeat", 1), 1)
    movers = []
    for func in base_rows.keys() | fresh_rows.keys():
        # normalize per-run so differing --profile-repeat settings
        # between the committed and fresh profiles don't masquerade
        # as a regression of every function at once
        base_ct = base_rows.get(func, {}).get("cumtime_s", 0.0) / base_reps
        fresh_ct = fresh_rows.get(func, {}).get("cumtime_s", 0.0) / fresh_reps
        movers.append((fresh_ct - base_ct, base_ct, fresh_ct, func))
    movers.sort(key=lambda m: abs(m[0]), reverse=True)
    print(f"perf-guard: top cumtime movers ({baseline_path} -> {fresh_path}, per run):")
    for delta, base_ct, fresh_ct, func in movers[:top]:
        print(f"  {delta:+8.3f}s  {base_ct:7.3f}s -> {fresh_ct:7.3f}s  {func}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", action="append", default=[], help="committed BENCH_*.json"
    )
    parser.add_argument(
        "--fresh", action="append", default=[], help="freshly generated BENCH_*.json"
    )
    parser.add_argument(
        "--profile-baseline",
        help="committed PROFILE_perf.json, used to attribute a regression "
             "to its biggest cumtime movers",
    )
    parser.add_argument(
        "--profile-fresh",
        help="freshly generated PROFILE_perf.json to diff against "
             "--profile-baseline when a regression is detected",
    )
    parser.add_argument(
        "--check-sanitize",
        action="store_true",
        help="fail if a fresh benchmark was recorded with REPRO_SANITIZE on",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=float(os.environ.get("REPRO_PERF_GUARD_FACTOR", "1.25")),
        help="max allowed fresh/baseline timing ratio (default 1.25)",
    )
    parser.add_argument(
        "--overhead-factor",
        type=float,
        default=float(os.environ.get("REPRO_METRICS_OVERHEAD_FACTOR", "1.10")),
        help="max allowed instrumented/uninstrumented ratio within a "
             "fresh run (default 1.10: a few %% true sampler cost plus "
             "the ~±10%% timing noise floor of shared runners)",
    )
    args = parser.parse_args(argv)
    if len(args.baseline) != len(args.fresh):
        parser.error("--baseline and --fresh must be paired")
    problems: list[str] = []
    for base, fresh in zip(args.baseline, args.fresh):
        problems += check(base, fresh, args.factor)
    for fresh in args.fresh:
        problems += check_overhead(fresh, args.overhead_factor)
    if args.check_sanitize:
        for fresh in args.fresh:
            problems += check_sanitize(fresh)
    if problems:
        print("perf-guard: REGRESSION DETECTED", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        if args.profile_baseline and args.profile_fresh:
            profile_movers(args.profile_baseline, args.profile_fresh)
        return 1
    print("perf-guard: all guarded timings within limits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
