"""Aggregator-selection strategies for two-phase collective I/O.

ROMIO's ``cb_config_list``/``cb_nodes`` hints pick which ranks act as
aggregators during collective buffering.  The choice trades exchange
traffic against filesystem concurrency — a first-class ablation axis
for this reproduction (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["one_per_node", "fixed_count", "all_ranks", "select_aggregators"]


def one_per_node(node_of_rank: Sequence[str]) -> list[int]:
    """ROMIO's default: the lowest rank on each node."""
    seen: dict[str, int] = {}
    for r, node in enumerate(node_of_rank):
        seen.setdefault(node, r)
    return sorted(seen.values())


def fixed_count(node_of_rank: Sequence[str], n: int) -> list[int]:
    """``cb_nodes = n``: the first n of the per-node aggregators, or
    evenly spaced ranks when n exceeds the node count."""
    if n < 1:
        raise ValueError("need at least one aggregator")
    per_node = one_per_node(node_of_rank)
    if n <= len(per_node):
        return per_node[:n]
    p = len(node_of_rank)
    step = max(p // n, 1)
    out = sorted(set(per_node) | set(range(0, p, step)))
    return out[:n]


def all_ranks(node_of_rank: Sequence[str]) -> list[int]:
    """Every rank writes its own file domain (cb_nodes = nprocs)."""
    return list(range(len(node_of_rank)))


def select_aggregators(node_of_rank: Sequence[str], cb_nodes: int | None = None) -> list[int]:
    """Dispatch on the hint value (None -> ROMIO default)."""
    if cb_nodes is None:
        return one_per_node(node_of_rank)
    if cb_nodes >= len(node_of_rank):
        return all_ranks(node_of_rank)
    return fixed_count(node_of_rank, cb_nodes)
