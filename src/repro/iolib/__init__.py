"""I/O library level internals: data sieving, aggregator selection, hints.

The MPI-IO entry points live in :mod:`repro.mpi.io`; this package
holds the ROMIO-style machinery they dispatch to, factored out so the
ablation benchmarks can exercise each mechanism in isolation.
"""

from ..mpi.io import IOHints
from .aggregation import all_ranks, fixed_count, one_per_node, select_aggregators
from .sieving import DEFAULT_BUFFER, plan_sieve, should_sieve, SievePlan

__all__ = [
    "IOHints",
    "all_ranks",
    "fixed_count",
    "one_per_node",
    "select_aggregators",
    "DEFAULT_BUFFER",
    "plan_sieve",
    "should_sieve",
    "SievePlan",
]
