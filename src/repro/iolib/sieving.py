"""Data sieving (ROMIO's independent-I/O optimisation).

For a noncontiguous request, instead of issuing one small operation
per piece, ROMIO reads a large contiguous *sieve buffer* covering
many pieces and extracts/merges in memory (writes additionally need a
read-modify-write of the buffer).  Whether sieving wins depends on
the pattern's *density*: reading ``span`` bytes to use
``total_bytes`` of them beats ``count`` seeks/RPCs when the holes are
small — precisely the regime of NAS BT-IO's 1.6 KB rows with 6.4 KB
stride.

:func:`plan_sieve` turns a sparse request into the list of dense
covering requests; :func:`should_sieve` is the profitability test
ROMIO's heuristic approximates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.base import IORequest, MiB

__all__ = ["SievePlan", "plan_sieve", "should_sieve"]

#: ROMIO's default ind_rd_buffer_size is 4 MiB
DEFAULT_BUFFER = 4 * MiB


@dataclass(frozen=True)
class SievePlan:
    """Dense covering requests + the memory traffic they imply."""

    requests: tuple[IORequest, ...]
    useful_bytes: int
    fetched_bytes: int

    @property
    def efficiency(self) -> float:
        """Fraction of fetched bytes the application actually wanted."""
        return self.useful_bytes / self.fetched_bytes if self.fetched_bytes else 0.0


def should_sieve(req: IORequest, buffer_bytes: int = DEFAULT_BUFFER) -> bool:
    """ROMIO-style profitability heuristic.

    Sieve when the pattern is sparse but *dense enough*: fetching the
    span must cost less than per-operation overheads — approximated by
    requiring at least ~1/8 of the covered bytes to be useful and the
    pieces to be small (large pieces are efficient on their own).
    """
    if req.is_dense or req.stride == -1 or req.count < 2:
        return False
    density = req.total_bytes / req.span
    return density >= 0.125 and req.nbytes < buffer_bytes // 8


def plan_sieve(req: IORequest, buffer_bytes: int = DEFAULT_BUFFER) -> SievePlan:
    """Cover a sparse request with dense buffer-sized reads/writes.

    The covering requests always carry ``req.op``'s *read* geometry:
    for a sieved write the caller must issue the covering read first
    (read-modify-write) and then write the same extents back.
    """
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    span = req.span
    chunks = []
    covered = 0
    offset = req.offset
    while covered < span:
        n = min(buffer_bytes, span - covered)
        chunks.append(IORequest(req.op, offset + covered, n))
        covered += n
    return SievePlan(
        requests=tuple(chunks),
        useful_bytes=req.total_bytes,
        fetched_bytes=span,
    )
