"""Drive a fault schedule against a built system.

A :class:`FaultInjector` is armed on a
:class:`~repro.clusters.builder.System` *before* the application
runs: it installs the schedule's seeded
:class:`~repro.simengine.rng.RngRegistry` as ``env.rng`` (the jitter
source for NFS retransmit backoff) and spawns one simulation process
per schedule entry.  Each process sleeps to its injection time, fires
the fault against the right hardware object, and records the
resulting **fault window** (start, end, outcome) for the degraded
-mode report.

Injection processes never raise: fault *consequences* surface where
they belong — a dead array raises
:class:`~repro.hardware.raid.DataLossError` at the application's next
submit, not inside the injector.
"""

from __future__ import annotations

from typing import Any

from ..simengine.rng import RngRegistry
from .schedule import FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Injects one :class:`FaultSchedule` into one system run."""

    def __init__(self, system: Any, schedule: FaultSchedule):
        self.system = system
        self.schedule = schedule
        #: per-entry fault-window records, in injection order
        self.windows: list[dict] = []
        self._armed = False

    # -- target resolution ----------------------------------------------
    def _array(self, target: str):
        if target in ("ionode", "server"):
            return self.system.server_node.array
        node = self.system.node(target)
        if node.array is None:
            raise ValueError(f"node {target!r} has no local array")
        return node.array

    def _network(self, which: str):
        cluster = self.system.cluster
        if which == "comm" or cluster.shared_network:
            return cluster.comm_network
        return cluster.data_network

    # -- arming -----------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Install the RNG registry and schedule the injection processes.

        Call once, after the system is built/reset and before the
        application starts; entries are scheduled in time order so
        same-time faults fire in schedule order.
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        env = self.system.env
        # resolve every target NOW: a bad schedule must fail loudly at
        # arm time, not as an unwaited process failure mid-simulation
        for spec in self.schedule:
            if spec.kind == "disk_fail":
                array = self._array(spec.target)
                if not 0 <= spec.disk < array.config.ndisks:
                    raise ValueError(
                        f"disk {spec.disk} out of range for array "
                        f"{array.name!r} ({array.config.ndisks} members)"
                    )
            elif spec.kind in ("link_flap", "latency_spike"):
                net = self._network(spec.network)
                if spec.target not in net.uplinks:
                    raise ValueError(
                        f"unknown network endpoint {spec.target!r} on {net.name!r}"
                    )
        env.rng = RngRegistry(self.schedule.seed)
        for i, spec in enumerate(self.schedule):
            env.process(self._inject(i, spec), name=f"fault.{i}.{spec.kind}")
        self._armed = True
        return self

    def _inject(self, index, spec):
        env = self.system.env
        if spec.t_s > env.now:
            yield env.wake_at(spec.t_s)
        record = {
            "index": index,
            "kind": spec.kind,
            "target": spec.target,
            "t0_s": env.now,
            "t1_s": None,  # None = open until run end
            "outcome": "injected",
        }
        self.windows.append(record)

        if spec.kind == "disk_fail":
            array = self._array(spec.target)
            record["disk"] = spec.disk
            array.fail_disk(spec.disk)
            if array.data_lost:
                # unsurvivable organisation: terminal, no rebuild
                record["t1_s"] = env.now
                record["outcome"] = "data-loss"
                return
            record["outcome"] = "rebuilding"
            ev = array.start_rebuild(
                spec.disk,
                rate_Bps=spec.rebuild_rate_Bps,
                rebuild_bytes=spec.rebuild_bytes,
                priority=spec.rebuild_priority,
                hot_spare_delay_s=spec.hot_spare_delay_s,
            )
            result = yield ev
            record["t1_s"] = env.now
            record["outcome"] = result
        elif spec.kind == "nfs_stall":
            self.system.nfs_server.stall(spec.duration_s)
            record["t1_s"] = env.now + spec.duration_s
            record["outcome"] = "stalled"
        elif spec.kind == "link_flap":
            net = self._network(spec.network)
            net.flap(spec.target, spec.duration_s, direction=spec.direction)
            record["t1_s"] = env.now + spec.duration_s
            record["outcome"] = "flapped"
        elif spec.kind == "latency_spike":
            net = self._network(spec.network)
            net.latency_spike(spec.target, spec.factor, spec.duration_s)
            record["t1_s"] = env.now + spec.duration_s
            record["outcome"] = "spiked"
        else:  # pragma: no cover - schedule validation rejects these
            record["outcome"] = f"unknown kind {spec.kind!r}"
