"""Seeded, serialisable fault schedules.

A :class:`FaultSchedule` is the unit of reproducibility for degraded
-mode evaluation: a root seed plus an ordered list of
:class:`FaultSpec` entries (*at simulated time T, inject fault F*).
Schedules round-trip through JSON so a faulted experiment is a small
artifact that can live next to its results (``repro evaluate
--faults schedule.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Optional

__all__ = ["FAULT_KINDS", "FaultScheduleError", "FaultSpec", "FaultSchedule"]

#: supported fault kinds, in documentation order
FAULT_KINDS = ("disk_fail", "nfs_stall", "link_flap", "latency_spike")

#: kinds that require a positive duration
_DURATION_KINDS = ("nfs_stall", "link_flap", "latency_spike")


class FaultScheduleError(ValueError):
    """A schedule document failed validation; ``errors`` carries one
    ``"<where>: <what>"`` entry per problem (same shape as
    :class:`~repro.workloads.grammar.WorkloadSpecError`)."""

    def __init__(self, errors: "list[str] | str"):
        self.errors = [errors] if isinstance(errors, str) else list(errors)
        super().__init__("; ".join(self.errors))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Only the fields relevant to ``kind`` are consulted:

    ``disk_fail``
        ``target`` names the node owning the array (``"ionode"`` for
        the NFS server's array, a compute-node name for local
        storage); ``disk`` is the member index.  A background rebuild
        onto a hot spare starts immediately unless
        ``hot_spare_delay_s`` postpones it; ``rebuild_rate_Bps``
        caps the rebuild rate, ``rebuild_bytes`` bounds the extent
        (default: the member's full capacity) and
        ``rebuild_priority`` queues rebuild I/O behind foreground
        traffic.
    ``nfs_stall``
        The NFS server stops servicing RPCs for ``duration_s``;
        clients retransmit with exponential backoff (``target``
        is ignored — there is one server).
    ``link_flap``
        ``target`` endpoint's link(s) on ``network`` (``"data"`` or
        ``"comm"``) go down for ``duration_s`` in ``direction``
        (``"both"``/``"up"``/``"down"``).
    ``latency_spike``
        ``target`` endpoint's per-message latency on ``network`` is
        multiplied by ``factor`` for ``duration_s``.
    """

    t_s: float
    kind: str
    target: str = "ionode"
    disk: int = 0
    duration_s: float = 0.0
    rebuild_rate_Bps: Optional[float] = None
    rebuild_bytes: Optional[int] = None
    rebuild_priority: int = 2
    hot_spare_delay_s: float = 0.0
    factor: float = 1.0
    direction: str = "both"
    network: str = "data"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})")
        if self.t_s < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind in _DURATION_KINDS and self.duration_s <= 0:
            raise ValueError(f"{self.kind} needs a positive duration_s")
        if self.disk < 0:
            raise ValueError("disk index must be >= 0")
        if self.factor <= 0:
            raise ValueError("latency factor must be positive")
        if self.direction not in ("both", "up", "down"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.network not in ("data", "comm"):
            raise ValueError(f"bad network {self.network!r}")
        if self.rebuild_rate_Bps is not None and self.rebuild_rate_Bps <= 0:
            raise ValueError("rebuild_rate_Bps must be positive")
        if self.rebuild_bytes is not None and self.rebuild_bytes <= 0:
            raise ValueError("rebuild_bytes must be positive")
        if self.hot_spare_delay_s < 0:
            raise ValueError("hot_spare_delay_s must be >= 0")

    def as_dict(self) -> dict:
        """Compact JSON-safe form: defaults are omitted."""
        out: dict = {"t_s": self.t_s, "kind": self.kind}
        for f in fields(self):
            if f.name in ("t_s", "kind"):
                continue
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault fields {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults plus the root seed of their jitter.

    Entries are kept sorted by injection time (stable for ties), so
    two schedules listing the same faults in different order are the
    same schedule.
    """

    entries: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        ordered = tuple(sorted(self.entries, key=lambda e: e.t_s))
        object.__setattr__(self, "entries", ordered)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- serialisation ---------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "entries": [e.as_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Strict parse: every problem in the document is collected and
        reported at once via :class:`FaultScheduleError` — unknown keys
        (top-level or per-entry), bad types, invalid field values —
        rather than stopping at the first.  Out-of-order entries are
        not an error; construction sort-normalises them by ``t_s``.
        """
        if not isinstance(data, dict) or "entries" not in data:
            raise FaultScheduleError(
                "schedule: a fault schedule is {'seed': ..., 'entries': [...]}"
            )
        errors: list[str] = []
        unknown = set(data) - {"seed", "entries"}
        if unknown:
            errors.append(f"schedule: unknown keys {sorted(unknown)}")
        seed = 0
        raw_seed = data.get("seed", 0)
        if isinstance(raw_seed, bool) or not isinstance(raw_seed, int):
            errors.append(f"seed: must be an integer, got {raw_seed!r}")
        else:
            seed = raw_seed
        raw_entries = data["entries"]
        entries: list[FaultSpec] = []
        if not isinstance(raw_entries, list):
            errors.append("entries: must be a list of fault objects")
        else:
            for i, e in enumerate(raw_entries):
                if not isinstance(e, dict):
                    errors.append(f"entries[{i}]: must be an object, got {e!r}")
                    continue
                try:
                    entries.append(FaultSpec.from_dict(e))
                except (TypeError, ValueError) as exc:
                    errors.append(f"entries[{i}]: {exc}")
        if errors:
            raise FaultScheduleError(errors)
        return cls(entries=tuple(entries), seed=seed)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        from pathlib import Path

        return cls.from_json(Path(path).read_text())
