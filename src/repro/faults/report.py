"""Degraded-mode report: what a fault did to the I/O path.

:func:`build_degraded_report` condenses a faulted evaluation run into
a JSON-safe dict answering the three questions the methodology asks
of a configuration under failure:

* **what happened** — the fault windows the injector recorded, each
  with the transfer rates the application achieved *inside* the
  window versus the healthy remainder of the run;
* **where the time went** — utilization re-attribution: for each
  fault window, the sampled observability windows it overlaps and
  their hottest resource (rebuild traffic shows up here as member
  disks saturating while application throughput drops), plus the
  rebuild / retransmit overhead counters;
* **how gracefully the configuration degraded** — the degraded-to-
  healthy bandwidth ratio per operation and a verdict
  (``graceful`` / ``degraded`` / ``data-loss``), with the degraded
  rates additionally compared level-by-level against the
  characterized tables (the paper's used-percentage view, Figs.
  10/11, recomputed for the fault windows).

The healthy baseline comes from a **fault-free twin run** of the same
configuration when one is supplied (the methodology always runs one
for a faulted evaluation): the degraded rate inside each fault window
is compared against the *same simulated-time span* of the twin, so
the workload's own phase mix (write-heavy start, read-back tail)
cancels out instead of masquerading as degradation.  Without a twin
the baseline falls back to the faulted run's own out-of-window
remainder.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["build_degraded_report"]

#: a configuration keeping at least this fraction of its healthy
#: bandwidth inside fault windows degrades "gracefully"
GRACEFUL_THRESHOLD = 0.5


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def _window_bytes(events, t0: float, t1: float) -> dict[str, int]:
    """Bytes each op moved within [t0, t1], attributing each traced
    event proportionally to its overlap with the window."""
    out = {"read": 0, "write": 0}
    for e in events:
        if e.op not in out:
            continue
        d = e.duration
        if d <= 0:
            share = 1.0 if t0 <= e.t_start < t1 else 0.0
        else:
            share = _overlap(e.t_start, e.t_end, t0, t1) / d
        if share > 0:
            out[e.op] += int(e.total_bytes * share)
    return out


def _merge_windows(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [t0, t1) spans."""
    merged: list[tuple[float, float]] = []
    for t0, t1 in sorted(spans):
        if merged and t0 <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
        else:
            merged.append((t0, t1))
    return merged


def build_degraded_report(
    config_name: str,
    system: Any,
    schedule: Any,
    fault_windows: list[dict],
    tracer: Any,
    profile: Any,
    tables: Optional[dict],
    utilization: Any = None,
    threshold: float = GRACEFUL_THRESHOLD,
    data_loss: Optional[str] = None,
    healthy_events: Optional[list] = None,
    healthy_end: Optional[float] = None,
) -> dict:
    """Assemble the degraded-mode report for one faulted run.

    ``fault_windows`` is :attr:`FaultInjector.windows`; ``utilization``
    the run's :class:`~repro.core.utilization.UtilizationReport` (its
    sampled windows feed the re-attribution section, absent when the
    run was not instrumented); ``data_loss`` the message of a
    :class:`~repro.hardware.raid.DataLossError` that terminated the
    run, if one did.  ``healthy_events``/``healthy_end`` are the traced
    events and end time of a fault-free twin run used as the healthy
    baseline (see the module docstring).
    """
    run_end = system.env.now
    events = list(tracer.events) if tracer is not None else []
    data_events = [e for e in events if e.op in ("read", "write")]

    # -- per-fault windows, clamped to the run -------------------------
    windows_out: list[dict] = []
    spans: list[tuple[float, float]] = []
    for rec in fault_windows:
        t0 = min(rec["t0_s"], run_end)
        t1 = rec["t1_s"] if rec["t1_s"] is not None else run_end
        t1 = min(t1, run_end)
        width = max(t1 - t0, 0.0)
        moved = _window_bytes(data_events, t0, t1)
        entry = {
            "index": rec["index"],
            "kind": rec["kind"],
            "target": rec["target"],
            "t0_s": t0,
            "t1_s": t1,
            "outcome": rec["outcome"],
            "bytes": moved,
            "rate_Bps": {
                op: (moved[op] / width if width > 0 else 0.0)
                for op in ("read", "write")
            },
        }
        if "disk" in rec:
            entry["disk"] = rec["disk"]
        if utilization is not None and getattr(utilization, "windows", None):
            attributed = []
            for w in utilization.windows:
                if _overlap(w.t0_s, w.t1_s, t0, t1) <= 0:
                    continue
                hot = w.hottest(n=1)
                name, util = hot[0] if hot else (None, 0.0)
                attributed.append(
                    {
                        "t0_s": w.t0_s,
                        "t1_s": w.t1_s,
                        "hottest": name,
                        "utilization": util,
                        "bottleneck": w.bottleneck(),
                    }
                )
            entry["utilization_windows"] = attributed
        windows_out.append(entry)
        if width > 0:
            spans.append((t0, t1))

    # -- degraded vs healthy rates -------------------------------------
    merged = _merge_windows(spans)
    degraded_s = sum(t1 - t0 for t0, t1 in merged)
    healthy_s = max(run_end - degraded_s, 0.0)
    degraded_bytes = {"read": 0, "write": 0}
    for t0, t1 in merged:
        moved = _window_bytes(data_events, t0, t1)
        for op in degraded_bytes:
            degraded_bytes[op] += moved[op]
    total_bytes = {
        "read": sum(e.total_bytes for e in data_events if e.op == "read"),
        "write": sum(e.total_bytes for e in data_events if e.op == "write"),
    }
    degraded_rate = {
        op: (degraded_bytes[op] / degraded_s if degraded_s > 0 else 0.0)
        for op in degraded_bytes
    }
    if healthy_events is not None:
        # baseline: the SAME time spans in the fault-free twin run
        # (clamped to its end — past it the twin had simply finished)
        ref_events = [e for e in healthy_events if e.op in ("read", "write")]
        ref_end = healthy_end if healthy_end is not None else run_end
        healthy_bytes = {"read": 0, "write": 0}
        ref_s = 0.0
        for t0, t1 in merged:
            t1 = min(t1, ref_end)
            if t1 <= t0:
                continue
            moved = _window_bytes(ref_events, t0, t1)
            for op in healthy_bytes:
                healthy_bytes[op] += moved[op]
            ref_s += t1 - t0
        healthy_rate = {
            op: (healthy_bytes[op] / ref_s if ref_s > 0 else 0.0)
            for op in healthy_bytes
        }
    else:
        # no twin: fall back to the faulted run's own remainder
        healthy_bytes = {
            op: max(total_bytes[op] - degraded_bytes[op], 0) for op in total_bytes
        }
        healthy_rate = {
            op: (healthy_bytes[op] / healthy_s if healthy_s > 0 else 0.0)
            for op in healthy_bytes
        }
    # a ratio needs both a healthy baseline and degraded traffic of the
    # op — a fault window with no traffic of an op says nothing about it
    ratios = {}
    for op in ("read", "write"):
        if healthy_rate[op] > 0 and degraded_s > 0 and degraded_bytes[op] > 0:
            ratios[op] = degraded_rate[op] / healthy_rate[op]
    meaningful = list(ratios.values())

    if data_loss is not None or any(
        w["outcome"] == "data-loss" for w in windows_out
    ):
        verdict = "data-loss"
    elif not merged or not meaningful:
        verdict = "graceful"  # faults never intersected the run's I/O
    elif min(meaningful) >= threshold:
        verdict = "graceful"
    else:
        verdict = "degraded"

    # -- level-by-level comparison against characterized tables --------
    used_rows: list[dict] = []
    if tables and profile is not None and getattr(profile, "measures", None):
        # dominant measure (by bytes) per op carries the run's geometry
        dominant: dict[str, Any] = {}
        for m in profile.measures:
            if m.op not in ("read", "write"):
                continue
            cur = dominant.get(m.op)
            if cur is None or m.total_bytes > cur.total_bytes:
                dominant[m.op] = m
        for level in tables:
            for op, m in sorted(dominant.items()):
                char = tables[level].lookup(m.op, m.block_bytes, m.access, m.mode)
                if char is None or char <= 0:
                    continue
                used_rows.append(
                    {
                        "level": level,
                        "op": op,
                        "block_bytes": m.block_bytes,
                        "characterized_Bps": char,
                        "healthy_used_pct": 100.0 * healthy_rate[op] / char,
                        "degraded_used_pct": 100.0 * degraded_rate[op] / char,
                    }
                )

    # -- overhead traffic ----------------------------------------------
    rebuild: dict[str, dict] = {}
    arrays = [("ionode", system.server_node.array)] + [
        (n.name, n.array) for n in system.compute if n.array is not None
    ]
    for owner, array in arrays:
        st = array.rebuild_stats
        if st.bytes_read or st.bytes_written or st.completed or st.aborted:
            rebuild[owner] = {
                "bytes_read": st.bytes_read,
                "bytes_written": st.bytes_written,
                "completed": st.completed,
                "aborted": st.aborted,
                "still_rebuilding": array.rebuilding,
                "degraded": array.degraded,
            }
    nfs = {
        "retransmits": sum(
            m.stats.retransmits for m in system.nfs_mounts.values()
        ),
        "major_timeouts": sum(
            m.stats.major_timeouts for m in system.nfs_mounts.values()
        ),
    }

    return {
        "config": config_name,
        "schedule": schedule.as_dict(),
        "run_end_s": run_end,
        "baseline": "twin-run" if healthy_events is not None else "out-of-window",
        "healthy_run_end_s": healthy_end,
        "windows": windows_out,
        "degraded_s": degraded_s,
        "healthy_s": healthy_s,
        "rates_Bps": {"healthy": healthy_rate, "degraded": degraded_rate},
        "bandwidth_ratio": ratios,
        "verdict": verdict,
        "threshold": threshold,
        "used_pct": used_rows,
        "rebuild": rebuild,
        "nfs": nfs,
        "data_loss": data_loss,
    }
