"""Deterministic fault injection and degraded-mode evaluation.

The paper's methodology characterizes and evaluates *healthy* I/O
configurations; this package extends the evaluation phase with the
failure behaviour that distinguishes them in production: a RAID 5 and
a RAID 10 array with equal healthy bandwidth degrade very differently
when a member disk dies mid-run.

Three pieces:

* :mod:`~repro.faults.schedule` — a seeded, JSON-serialisable
  :class:`FaultSchedule`: *at simulated time T, inject fault F*.
  Kinds: ``disk_fail`` (with background RAID rebuild), ``nfs_stall``
  (server brown-out driving client RPC retransmits), ``link_flap``
  and ``latency_spike`` (network faults).
* :mod:`~repro.faults.injector` — a :class:`FaultInjector` armed on a
  built :class:`~repro.clusters.builder.System` before the
  application runs; it spawns one simulation process per schedule
  entry and records the resulting fault windows.
* :mod:`~repro.faults.report` — :func:`build_degraded_report` turns a
  faulted run into the **degraded-mode report**: per-fault-window
  transfer rates, utilization re-attribution, rebuild/retransmit
  overheads and a graceful-degradation verdict per configuration.

Everything is deterministic: the schedule's ``seed`` feeds a
:class:`~repro.simengine.rng.RngRegistry` installed as ``env.rng``,
so the same schedule on the same configuration produces a
byte-identical degraded-mode report.
"""

from .schedule import FAULT_KINDS, FaultSchedule, FaultScheduleError, FaultSpec
from .injector import FaultInjector
from .report import build_degraded_report

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultInjector",
    "build_degraded_report",
]
