"""Simulated cluster hardware: disks, RAID arrays, networks, nodes."""

from .disk import Disk, DiskSpec, READ, WRITE
from .network import GIGABIT, TEN_GIGABIT, Link, LinkSpec, Network
from .node import Cluster, Node, NodeSpec
from .raid import DataLossError, RAIDArray, RAIDConfig, RAIDLevel

__all__ = [
    "DataLossError",
    "Disk",
    "DiskSpec",
    "READ",
    "WRITE",
    "GIGABIT",
    "TEN_GIGABIT",
    "Link",
    "LinkSpec",
    "Network",
    "Cluster",
    "Node",
    "NodeSpec",
    "RAIDArray",
    "RAIDConfig",
    "RAIDLevel",
]
