"""RAID / JBOD block-device organisations.

This is the "I/O devices organisation" configurable factor of the
paper (JBOD, RAID 1, RAID 5 on cluster Aohyper; RAID 5 on cluster A's
NFS server).  A :class:`RAIDArray` presents the same byte-addressed
``submit`` interface as a :class:`~repro.hardware.disk.Disk` and maps
logical extents onto member disks:

* **JBOD / SINGLE** — passthrough to one disk.
* **RAID 0** — striping; reads and writes spread over all members.
* **RAID 1** — mirroring; writes go to every mirror (completion =
  slowest), bulk reads are split across mirrors.
* **RAID 5** — block-interleaved distributed parity; full-stripe
  writes update all members in parallel, *partial-stripe* writes pay
  the classic read-modify-write penalty (read old data + old parity,
  write new data + new parity).
* **RAID 10** — mirrored stripes.
* **RAID 6** — like RAID 5 with two parity blocks (and a heavier
  small-write penalty).

An optional **controller write-back cache** absorbs writes at bus
speed until it fills, after which writers are throttled by the media
drain rate — the behaviour enabled on both of the paper's clusters
("write-cache enabled (write back)").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..simengine import Environment, Event
from .disk import Disk, DiskSpec, READ, WRITE, MiB

__all__ = ["RAIDLevel", "RAIDConfig", "RAIDArray", "DataLossError", "RebuildStats"]


class DataLossError(RuntimeError):
    """The failure set exceeds the organisation's redundancy.

    A terminal state: every subsequent :meth:`RAIDArray.submit` raises
    until :meth:`RAIDArray.reset` rebuilds the array from scratch.
    """


@dataclass
class RebuildStats:
    """Cumulative background-rebuild traffic of one array."""

    bytes_read: int = 0
    bytes_written: int = 0
    completed: int = 0
    aborted: int = 0


class RAIDLevel(str, Enum):
    JBOD = "jbod"
    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID6 = "raid6"
    RAID10 = "raid10"


#: minimum member-disk counts per level
_MIN_DISKS = {
    RAIDLevel.JBOD: 1,
    RAIDLevel.RAID0: 2,
    RAIDLevel.RAID1: 2,
    RAIDLevel.RAID5: 3,
    RAIDLevel.RAID6: 4,
    RAIDLevel.RAID10: 4,
}


@dataclass(frozen=True)
class RAIDConfig:
    """Organisation of an array (paper Fig. 4)."""

    level: RAIDLevel = RAIDLevel.JBOD
    ndisks: int = 1
    stripe_bytes: int = 256 * 1024  # the paper's RAID 5 uses stripe=256 KB
    write_back: bool = True
    cache_bytes: int = 256 * MiB
    disk: DiskSpec = DiskSpec()

    def __post_init__(self):
        if self.ndisks < _MIN_DISKS[self.level]:
            raise ValueError(
                f"{self.level.value} needs >= {_MIN_DISKS[self.level]} disks, got {self.ndisks}"
            )
        if self.level is RAIDLevel.RAID10 and self.ndisks % 2:
            raise ValueError("RAID10 needs an even number of disks")
        if self.stripe_bytes <= 0:
            raise ValueError("stripe_bytes must be positive")

    @property
    def data_disks(self) -> int:
        """Members contributing user capacity."""
        if self.level in (RAIDLevel.JBOD, RAIDLevel.RAID0):
            return self.ndisks
        if self.level is RAIDLevel.RAID1:
            return 1
        if self.level is RAIDLevel.RAID5:
            return self.ndisks - 1
        if self.level is RAIDLevel.RAID6:
            return self.ndisks - 2
        return self.ndisks // 2  # RAID10

    @property
    def capacity_bytes(self) -> int:
        return self.data_disks * self.disk.capacity_bytes


class RAIDArray:
    """A block device built from member :class:`Disk` objects."""

    FLUSH_CHUNK = 4 * MiB

    def __init__(self, env: Environment, config: RAIDConfig, name: str = "array"):
        self.env = env
        self.config = config
        self.name = name
        self.disks = [
            Disk(env, config.disk, name=f"{name}.d{i}") for i in range(config.ndisks)
        ]
        self.capacity_bytes = config.capacity_bytes
        self._failed: set[int] = set()
        self._data_lost = False
        self._rebuilding: set[int] = set()
        self.rebuild_stats = RebuildStats()
        # -- write-back cache state --
        self._dirty = 0
        self._pending_flush: list[tuple[int, int]] = []  # (offset, nbytes)
        self._space_waiters: list[Event] = []
        self._flusher_running = False
        self._drained = env.event()
        self._drained.succeed()  # starts clean

    # ------------------------------------------------------------------
    # failure injection / degraded mode
    # ------------------------------------------------------------------
    def fail_disk(self, index: int) -> None:
        """Take a member disk offline.

        Redundant levels (RAID 1/5/6/10) continue in *degraded mode*
        — reads that would have hit the failed member must reconstruct
        from the survivors (RAID 5: read every surviving member of the
        stripe and XOR).  Non-redundant levels (JBOD, RAID 0) raise
        :class:`DataLossError` on the next access: the data is gone.

        Safe to call with requests in flight: operations already
        granted a member's head complete normally (their data was on
        the wire), and when the failure exceeds the redundancy the
        write-back machinery is drained rather than left stranded —
        pending flushes are dropped, the drain event fires, and writers
        blocked on cache space are woken so they fail at their own
        submit instead of waiting forever.
        """
        if not 0 <= index < len(self.disks):
            raise IndexError(f"no member disk {index}")
        self._failed.add(index)
        if not self.survives_failures:
            self._data_lost = True
            self._abort_writeback()

    def repair_disk(self, index: int) -> None:
        """Return a member to service (rebuild completed / disk swapped)."""
        self._failed.discard(index)
        self._rebuilding.discard(index)

    def _abort_writeback(self) -> None:
        """Unwind write-back state after an unsurvivable failure.

        Dirty cache contents have nowhere to go; dropping them models
        the data loss.  Space waiters are woken so their
        ``_cached_write`` loops re-check :attr:`_data_lost` and raise
        instead of sleeping on an event that would never fire.
        """
        self._pending_flush.clear()
        self._dirty = 0
        while self._space_waiters:
            self._space_waiters.pop(0).succeed()
        if not self._flusher_running and not self._drained.triggered:
            self._drained.succeed()

    @property
    def failed_disks(self) -> frozenset[int]:
        return frozenset(self._failed)

    @property
    def degraded(self) -> bool:
        return bool(self._failed)

    @property
    def survives_failures(self) -> bool:
        """Whether the current failure set still allows service."""
        n = len(self._failed)
        lvl = self.config.level
        if n == 0:
            return True
        if lvl in (RAIDLevel.JBOD, RAIDLevel.RAID0):
            return False
        if lvl in (RAIDLevel.RAID1,):
            return n < self.config.ndisks
        if lvl is RAIDLevel.RAID5:
            return n <= 1
        if lvl is RAIDLevel.RAID6:
            return n <= 2
        if lvl is RAIDLevel.RAID10:
            # one failure per mirror pair is survivable
            half = self.config.ndisks // 2
            pairs = {i % half for i in sorted(self._failed)}
            return len(pairs) == len(self._failed)
        return False

    def _alive(self) -> list[Disk]:
        return [d for i, d in enumerate(self.disks) if i not in self._failed]

    @property
    def data_lost(self) -> bool:
        return self._data_lost

    @property
    def rebuilding(self) -> bool:
        return bool(self._rebuilding)

    # ------------------------------------------------------------------
    # background rebuild
    # ------------------------------------------------------------------
    #: per-iteration rebuild extent (matches the md default stripe batch)
    REBUILD_CHUNK = 4 * MiB

    def start_rebuild(
        self,
        index: int,
        rate_Bps: Optional[float] = None,
        rebuild_bytes: Optional[int] = None,
        priority: int = 2,
        hot_spare_delay_s: float = 0.0,
    ) -> Event:
        """Rebuild failed member ``index`` onto a hot spare, in the
        background, competing with foreground traffic for the array.

        Mirrored levels copy the surviving mirror; parity levels read
        *every* surviving member and XOR, so a RAID 5 rebuild loads the
        whole array while a RAID 10 rebuild loads one spindle — the
        contention difference behind their graceful-degradation gap.

        ``rate_Bps`` caps the rebuild rate (`md` speed_limit_max);
        rebuild traffic additionally runs at a *lower* priority than
        foreground requests (``priority``, larger = later in the head
        queue).  ``rebuild_bytes`` overrides the extent to reconstruct
        (default: the member's full capacity — far beyond most
        simulated runs, i.e. the rebuild outlives the run, which is
        realistic for mid-run failures).

        Returns an event whose value is ``"rebuilt"`` when the member
        returned to service or ``"data-loss"`` if another failure made
        the array unsurvivable mid-rebuild (the event *succeeds* with
        that value — the terminal state surfaces at the next submit).
        """
        if index not in self._failed:
            raise ValueError(f"member disk {index} has not failed")
        if index in self._rebuilding:
            raise ValueError(f"member disk {index} is already rebuilding")
        self._rebuilding.add(index)
        total = rebuild_bytes
        if total is None:
            total = self.config.disk.capacity_bytes
        return self.env.process(
            self._rebuild(index, total, rate_Bps, priority, hot_spare_delay_s),
            name=f"{self.name}.rebuild",
        )

    def _rebuild(self, index, total, rate_Bps, priority, hot_spare_delay_s):  # simlint: ignore[generator-serve]
        if hot_spare_delay_s > 0:
            yield self.env.timeout(hot_spare_delay_s)
        spare = self.disks[index]
        lvl = self.config.level
        done = 0
        while done < total:
            if self._data_lost or not self.survives_failures:
                self._rebuilding.discard(index)
                self.rebuild_stats.aborted += 1
                return "data-loss"
            chunk = min(total - done, self.REBUILD_CHUNK)
            t0 = self.env.now
            alive = self._alive()
            if lvl in (RAIDLevel.RAID1, RAIDLevel.RAID10):
                # copy from the surviving mirror of the failed member
                if lvl is RAIDLevel.RAID10:
                    half = self.config.ndisks // 2
                    partner = (index + half) % self.config.ndisks
                    source = self.disks[partner]
                    if partner in self._failed:  # pragma: no cover - defensive
                        source = alive[0]
                else:
                    source = alive[0]
                reads = [source.submit(READ, done, chunk, priority=priority)]
                read_bytes = chunk
            else:
                # parity reconstruction: read the extent from every
                # surviving member and XOR in controller memory
                reads = [
                    d.submit(READ, done, chunk, priority=priority) for d in alive
                ]
                read_bytes = chunk * len(alive)
            write = spare.submit(WRITE, done, chunk, priority=priority)
            yield self.env.all_of(reads + [write])
            self.rebuild_stats.bytes_read += read_bytes
            self.rebuild_stats.bytes_written += chunk
            san = self.env.sanitizer
            if san is not None:
                san.note_rebuild(read_bytes, chunk)
            done += chunk
            if rate_Bps:
                # pace to the configured rebuild rate
                floor = chunk / rate_Bps
                elapsed = self.env.now - t0
                if elapsed < floor:
                    yield self.env.timeout(floor - elapsed)
        self.repair_disk(index)
        self.rebuild_stats.completed += 1
        return "rebuilt"

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def submit(
        self,
        op: str,
        offset: int,
        nbytes: int,
        count: int = 1,
        stride: Optional[int] = None,
        priority: int = 0,
        cached: bool = True,
    ) -> Event:
        """Serve a logical request; the returned event fires on completion.

        For write-back arrays a cached write completes once it is
        absorbed by the controller cache; media flushing proceeds in
        the background and throttles later writers when the cache is
        full.  Callers that already provide their own write-back (the
        OS page cache flusher) pass ``cached=False`` to reach the media
        directly, so sustained flush streams are charged to their
        originator instead of lingering as background interference.
        """
        if op not in (READ, WRITE):
            raise ValueError(f"bad op {op!r}")
        if offset < 0 or nbytes < 0 or count < 1:
            raise ValueError("invalid request geometry")
        if self._data_lost or (self._failed and not self.survives_failures):
            raise DataLossError(
                f"array {self.name!r} has lost data: {sorted(self._failed)} failed "
                f"on a {self.config.level.value} organisation"
            )
        if op == WRITE and cached and self.config.write_back:
            return self.env.process(
                self._cached_write(offset, nbytes, count, stride, priority),
                name=f"{self.name}.wb",
            )
        return self._media(op, offset, nbytes, count, stride, priority)

    def flush(self) -> Event:
        """Event firing when all dirty cache contents have hit the media."""
        return self._drained

    @property
    def dirty_bytes(self) -> int:
        return self._dirty

    # ------------------------------------------------------------------
    # write-back cache
    # ------------------------------------------------------------------
    def _cached_write(self, offset, nbytes, count, stride, priority):  # simlint: ignore[generator-serve]
        spec = self.config.disk
        total = nbytes * count
        absorbed = 0
        while absorbed < total:
            if self._data_lost:
                raise DataLossError(
                    f"array {self.name!r} lost data while a cached write was "
                    "waiting for controller-cache space"
                )
            space = self.config.cache_bytes - self._dirty
            if space <= 0:
                ev = self.env.event()
                self._space_waiters.append(ev)
                yield ev
                continue
            chunk = min(total - absorbed, space)
            self._dirty += chunk
            self._pending_flush.append((offset + absorbed, chunk))
            absorbed += chunk
            if not self._flusher_running:
                self._flusher_running = True
                self._drained = self.env.event()
                self.env.process(self._flusher(), name=f"{self.name}.flusher")
            # absorbing into cache costs bus time only
            yield self.env.timeout(chunk / spec.bus_rate_Bps + spec.command_overhead_s)
        return total

    def _flusher(self):  # simlint: ignore[generator-serve]
        while self._pending_flush:
            off, n = self._pending_flush.pop(0)
            flushed = 0
            while flushed < n:
                chunk = min(n - flushed, self.FLUSH_CHUNK)
                try:
                    yield self._media(WRITE, off + flushed, chunk, 1, None, priority=1)
                except DataLossError:
                    # the array died under the flusher: the remaining
                    # dirty data is gone; terminate cleanly so waiters
                    # on flush()/cache space are not stranded
                    self._abort_writeback()
                    break
                flushed += chunk
                # clamped: a concurrent _abort_writeback may have
                # zeroed the counter while this chunk was in flight
                self._dirty = max(self._dirty - chunk, 0)
                while self._space_waiters and self._dirty < self.config.cache_bytes:
                    self._space_waiters.pop(0).succeed()
        self._flusher_running = False
        if not self._drained.triggered:
            self._drained.succeed()

    # ------------------------------------------------------------------
    # media geometry
    # ------------------------------------------------------------------
    def _media(self, op, offset, nbytes, count, stride, priority) -> Event:
        lvl = self.config.level
        if stride == -1:  # random pattern marker: model as a large scatter
            stride = 127 * max(nbytes, 65536)
        if self._failed:
            if not self.survives_failures:
                raise DataLossError(
                    f"array {self.name!r} has lost data: {sorted(self._failed)} failed "
                    f"on a {lvl.value} organisation"
                )
            return self._degraded(op, offset, nbytes, count, stride, priority)
        sparse = count > 1 and stride is not None and stride != nbytes
        if lvl is RAIDLevel.JBOD:
            return self.disks[0].submit(op, offset, nbytes, count, stride, priority)
        if sparse and lvl is not RAIDLevel.RAID1:
            ways = len(self.disks)
            if lvl is RAIDLevel.RAID10:
                ways //= 2
            return self._striped_sparse(op, offset, nbytes, count, stride, priority, ways)
        if lvl is RAIDLevel.RAID0:
            return self._striped(op, offset, nbytes * count, priority, self.disks, len(self.disks))
        if lvl is RAIDLevel.RAID1:
            return self._mirrored(op, offset, nbytes, count, stride, priority, self.disks)
        if lvl is RAIDLevel.RAID10:
            half = len(self.disks) // 2
            # stripes of mirror pairs: model as mirrored RAID0 halves
            return self._mirrored_striped(op, offset, nbytes * count, priority, half)
        if lvl is RAIDLevel.RAID5:
            return self._parity(op, offset, nbytes, count, stride, priority, nparity=1)
        if lvl is RAIDLevel.RAID6:
            return self._parity(op, offset, nbytes, count, stride, priority, nparity=2)
        raise AssertionError(lvl)

    def _striped_sparse(self, op, offset, nbytes, count, stride, priority, ways) -> Event:
        """Scattered small operations land round-robin over the members.

        Each member disk serves roughly ``count / ways`` seek-bound
        operations in parallel; write paths on parity levels double the
        per-member work (read-modify-write of data + parity).
        """
        factor = 1
        if op == WRITE and self.config.level is RAIDLevel.RAID5:
            factor = 4  # RMW: data read+write, parity read+write over the array
        elif op == WRITE and self.config.level is RAIDLevel.RAID6:
            factor = 6
        elif op == WRITE and self.config.level is RAIDLevel.RAID10:
            factor = 2
        eff_count = count * factor
        per = eff_count // ways
        evs = []
        used = min(ways, len(self.disks))
        for i in range(used):
            c = per if i < used - 1 else eff_count - per * (used - 1)
            if c:
                evs.append(
                    self.disks[i].submit(
                        op, (offset + i * abs(stride)) % self.disks[i].spec.capacity_bytes,
                        nbytes, c, abs(stride) * ways, priority,
                    )
                )
        return self.env.all_of(evs) if evs else self.env.timeout(0)

    def _degraded(self, op, offset, nbytes, count, stride, priority) -> Event:
        """Service with one or more members offline.

        Mirrored levels lose read parallelism: a RAID 1 survivor serves
        alone, and a RAID 10 stripe keeps its geometry while only the
        broken pair loses its mirror.  Parity levels pay
        *reconstruction*: an access whose data lived on the failed
        member must read the whole surviving stripe and XOR, roughly
        doubling the media traffic spread over the survivors.
        """
        lvl = self.config.level
        alive = self._alive()
        total = nbytes * count
        if lvl is RAIDLevel.RAID10:
            return self._degraded_raid10(op, offset, total, priority)
        if lvl is RAIDLevel.RAID1:
            if op == WRITE:
                evs = [d.submit(WRITE, offset, nbytes, count, stride, priority) for d in alive]
                return self.env.all_of(evs)
            return self._mirrored(op, offset, nbytes, count, stride, priority, alive)
        # RAID5 / RAID6 reconstruction
        factor = 2
        sparse = count > 1 and stride is not None and stride != nbytes
        if sparse:
            eff = count * factor * (2 if op == WRITE else 1)
            per = max(eff // len(alive), 1)
            evs = [
                d.submit(op, (offset + i * abs(stride)) % d.spec.capacity_bytes,
                         nbytes, per, abs(stride) * len(alive), priority)
                for i, d in enumerate(alive)
            ]
            return self.env.all_of(evs)
        return self._striped(op, offset, total * factor, priority, alive, len(alive))

    def _degraded_raid10(self, op, offset, total, priority) -> Event:
        """RAID 10 with a member down: data stays striped over the
        mirror pairs, so only the pair with the failed member loses
        redundancy — its survivor absorbs that pair's writes alone and
        serves its reads without mirror parallelism.  (Access patterns
        are flattened to their byte totals, the same approximation the
        healthy striped path makes for sub-stripe geometry.)"""
        half = self.config.ndisks // 2
        stripe = self.config.stripe_bytes
        if total <= stripe:
            shares = [0] * half
            shares[(offset // stripe) % half] = total
        else:
            shares = self._split_over(offset, total, half, stripe)
        base = offset // half
        evs = []
        for k, share in enumerate(shares):
            if not share:
                continue
            members = [
                self.disks[i] for i in (k, k + half) if i not in self._failed
            ]
            if op == WRITE:
                evs += [d.submit(WRITE, base, share, 1, None, priority) for d in members]
            elif len(members) == 2 and share >= 2 * stripe:
                h = share // 2
                evs.append(members[0].submit(READ, base, h, 1, None, priority))
                evs.append(members[1].submit(READ, base + h, share - h, 1, None, priority))
            else:
                evs.append(members[0].submit(READ, base, share, 1, None, priority))
        if not evs:  # zero-byte request
            return self.env.timeout(0.0)
        return self.env.all_of(evs)

    def _split_over(self, offset: int, total: int, ways: int, stripe: int):
        """Byte share of each of ``ways`` members for a logical extent."""
        shares = [0] * ways
        first = offset // stripe
        nchunks, rem = divmod(total, stripe)
        for i in range(ways):
            # chunk j of the extent lands on member (first + j) % ways,
            # so the member reached at relative position i serves chunks
            # i, i + ways, i + 2*ways, ...
            full = (nchunks + ways - 1 - i) // ways if nchunks else 0
            shares[(first + i) % ways] += full * stripe
        if rem:
            shares[(first + nchunks) % ways] += rem
        return shares

    def _striped(self, op, offset, total, priority, disks, ways) -> Event:
        stripe = self.config.stripe_bytes
        if total <= stripe:
            d = disks[(offset // stripe) % ways]
            return d.submit(op, offset // ways, total, 1, None, priority)
        shares = self._split_over(offset, total, ways, stripe)
        evs = []
        for i, share in enumerate(shares):
            if share:
                evs.append(disks[i].submit(op, offset // ways, share, 1, None, priority))
        return self.env.all_of(evs)

    def _mirrored(self, op, offset, nbytes, count, stride, priority, disks) -> Event:
        if op == WRITE:
            evs = [d.submit(WRITE, offset, nbytes, count, stride, priority) for d in disks]
            return self.env.all_of(evs)
        total = nbytes * count
        if count == 1 or (stride in (None, nbytes)):
            # split a contiguous read across the mirrors
            half = total // len(disks)
            if half < self.config.stripe_bytes:
                d = disks[(offset // self.config.stripe_bytes) % len(disks)]
                return d.submit(READ, offset, nbytes, count, stride, priority)
            evs = []
            for i, d in enumerate(disks):
                share = half if i < len(disks) - 1 else total - half * (len(disks) - 1)
                evs.append(d.submit(READ, offset + i * half, share, 1, None, priority))
            return self.env.all_of(evs)
        # strided bulk read: alternate ops between mirrors
        per = count // len(disks)
        evs = []
        for i, d in enumerate(disks):
            c = per if i < len(disks) - 1 else count - per * (len(disks) - 1)
            if c:
                evs.append(
                    d.submit(READ, offset + i * (stride or nbytes), nbytes, c,
                             (stride or nbytes) * len(disks), priority)
                )
        return self.env.all_of(evs)

    def _mirrored_striped(self, op, offset, total, priority, half) -> Event:
        a, b = self.disks[: half], self.disks[half:]
        if op == WRITE:
            return self.env.all_of(
                [
                    self._striped(WRITE, offset, total, priority, a, half),
                    self._striped(WRITE, offset, total, priority, b, half),
                ]
            )
        mid = total // 2
        if mid < self.config.stripe_bytes:
            return self._striped(READ, offset, total, priority, a, half)
        return self.env.all_of(
            [
                self._striped(READ, offset, mid, priority, a, half),
                self._striped(READ, offset + mid, total - mid, priority, b, half),
            ]
        )

    # -- RAID5 / RAID6 ----------------------------------------------------
    def _parity(self, op, offset, nbytes, count, stride, priority, nparity) -> Event:
        n = len(self.disks)
        ndata = n - nparity
        stripe = self.config.stripe_bytes
        full_stripe = stripe * ndata
        total = nbytes * count
        if op == READ:
            # Reads stripe over all members; parity blocks rotate so all
            # spindles carry data, but each spindle reads through its
            # parity holes (cheaper than seeking around them), so the
            # effective user-data rate is ndata/n of the raw stripe rate.
            return self._striped(
                READ, offset, total * n // ndata, priority, self.disks, n
            )
        stride_ = nbytes if stride is None else stride
        contiguous = count == 1 or stride_ == nbytes
        if contiguous and total >= full_stripe:
            # Full-stripe writes: parity computed in controller memory,
            # all members written in parallel; leftover partial stripe
            # pays RMW.
            aligned = (total // full_stripe) * full_stripe
            evs = []
            per_disk = aligned // ndata
            for d in self.disks:
                evs.append(d.submit(WRITE, offset // ndata, per_disk, 1, None, priority))
            leftover = total - aligned
            if leftover:
                evs.append(self._rmw_write(offset + aligned, leftover, 1, None, priority, nparity))
            return self.env.all_of(evs)
        return self._rmw_write(offset, nbytes, count, stride_, priority, nparity)

    def _rmw_write(self, offset, nbytes, count, stride, priority, nparity) -> Event:
        """Read-modify-write small-write path.

        Each logical write touching less than a full stripe costs, per
        parity unit: read old data + read old parity, write new data +
        write new parity — 2×(1+nparity) member operations.
        """
        n = len(self.disks)
        stripe = self.config.stripe_bytes
        d_data = self.disks[(offset // stripe) % n]
        d_par = self.disks[(offset // stripe + 1) % n]
        evs = [
            d_data.submit(READ, offset // max(n - nparity, 1), nbytes, count, stride, priority),
            d_data.submit(WRITE, offset // max(n - nparity, 1), nbytes, count, stride, priority),
        ]
        for k in range(nparity):
            p = self.disks[(offset // stripe + 1 + k) % n]
            evs.append(p.submit(READ, offset // max(n - nparity, 1), nbytes, count, stride, priority))
            evs.append(p.submit(WRITE, offset // max(n - nparity, 1), nbytes, count, stride, priority))
        _ = d_par
        return self.env.all_of(evs)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop cache/failure state and reset every member (warm reuse)."""
        for d in self.disks:
            d.reset()
        self._failed.clear()
        self._data_lost = False
        self._rebuilding.clear()
        self.rebuild_stats = RebuildStats()
        self._dirty = 0
        self._pending_flush.clear()
        self._space_waiters.clear()
        self._flusher_running = False
        self._drained = self.env.event()
        self._drained.succeed()

    @property
    def stats(self):
        """Aggregated member-disk statistics."""
        from .disk import DiskStats

        agg = DiskStats()
        for d in self.disks:
            agg.reads += d.stats.reads
            agg.writes += d.stats.writes
            agg.bytes_read += d.stats.bytes_read
            agg.bytes_written += d.stats.bytes_written
            agg.busy_s += d.stats.busy_s
            agg.readahead_hits += d.stats.readahead_hits
            agg.seeks += d.stats.seeks
        return agg

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RAIDArray {self.name!r} {self.config.level.value} x{self.config.ndisks}>"
