"""Interconnect model: links, switch fabric, message transfers.

The paper's clusters use one or two Gigabit Ethernet networks (one for
"communication"/services, one for data).  We model a network as a
star: every node owns a full-duplex **uplink** (node→switch) and
**downlink** (switch→node); a transfer from A to B holds A's uplink
and B's downlink for its serialisation time, so hot receivers (an NFS
server under N writers) become the shared bottleneck, which is the
dominant effect in the paper's NFS-level results.

Effective bandwidth accounts for protocol framing overhead (TCP/IP
over Ethernet, ~94% of line rate), and each message pays a fixed
per-message latency (propagation, interrupt and protocol stack cost).
Bulk transfers (``count`` messages back-to-back) are pipelined: the
latency is paid once per message but overlaps with serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simengine import Environment, Event, Resource, hold_quantum
from ..simengine import resources as _kernel
from ..simengine.core import Timeout, Wake
from ..simengine.resources import FastHold

__all__ = ["LinkSpec", "Link", "Network", "GIGABIT", "TEN_GIGABIT"]

MiB = 1024 * 1024


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a network link."""

    raw_bandwidth_Bps: float = 125.0 * 1000 * 1000  # 1 Gb/s line rate
    efficiency: float = 0.94  # framing + TCP/IP overhead
    latency_s: float = 55e-6  # per-message one-way latency
    per_message_cpu_s: float = 8e-6  # stack cost per message/RPC

    @property
    def bandwidth_Bps(self) -> float:
        return self.raw_bandwidth_Bps * self.efficiency


GIGABIT = LinkSpec()
TEN_GIGABIT = LinkSpec(raw_bandwidth_Bps=1250.0 * 1000 * 1000, latency_s=30e-6)


class _FastSend(FastHold):
    """State-machine twin of ``Link._send`` (same entries, no process)."""

    __slots__ = ("link", "nbytes", "count")

    def __init__(self, link: "Link", nbytes: int, count: int, priority: int, order_key=None):
        self.link = link
        self.nbytes = nbytes
        self.count = count
        super().__init__(link.env, [link.channel], priority, order_key=order_key)

    def _start(self, event) -> None:
        link = self.link
        env = self.env
        if env._now < link._down_until:
            # ride out the outage; re-check on wake (it may have been
            # extended), exactly like the generator's while loop
            Wake(env, link._down_until).callbacks.append(self._start)
            return
        self._acquire()

    def _granted(self) -> None:
        link = self.link
        total = link.hold_time(self.nbytes, self.count)
        link.busy_s += total
        link.bytes_carried += self.nbytes * self.count
        link.messages += self.count
        self._begin_hold(total, link.QUANTUM_S)

    def _done(self) -> None:
        # propagation latency of the tail message (pipelined with the rest)
        Timeout(self.env, self.link.effective_latency_s).callbacks.append(
            self._latency_done
        )

    def _latency_done(self, ev) -> None:
        self.result.succeed(self.nbytes * self.count)


class _FastRoute(FastHold):
    """State-machine twin of ``Network._route``: uplink + downlink held
    concurrently, released in reverse order, latency is the max."""

    __slots__ = ("up", "down", "nbytes", "count")

    def __init__(
        self,
        up: "Link",
        down: "Link",
        nbytes: int,
        count: int,
        priority: int,
        order_key=None,
    ):
        self.up = up
        self.down = down
        self.nbytes = nbytes
        self.count = count
        super().__init__(up.env, [up.channel, down.channel], priority, order_key=order_key)

    def _start(self, event) -> None:
        env = self.env
        up, down = self.up, self.down
        if env._now < up._down_until or env._now < down._down_until:
            Wake(env, max(up._down_until, down._down_until)).callbacks.append(
                self._start
            )
            return
        self._acquire()

    def _granted(self) -> None:
        up, down = self.up, self.down
        nb = self.nbytes * self.count
        total = up.hold_time(self.nbytes, self.count)
        up.busy_s += total
        down.busy_s += total
        up.bytes_carried += nb
        down.bytes_carried += nb
        up.messages += self.count
        down.messages += self.count
        self._begin_hold(total, Link.QUANTUM_S)

    def _done(self) -> None:
        Timeout(
            self.env,
            max(self.up.effective_latency_s, self.down.effective_latency_s),
        ).callbacks.append(self._latency_done)

    def _latency_done(self, ev) -> None:
        self.result.succeed(self.nbytes * self.count)


class Link:
    """A single simplex link; transfers serialise FIFO on it."""

    QUANTUM_S = 0.010

    def __init__(self, env: Environment, spec: LinkSpec, name: str = "link"):
        self.env = env
        self.spec = spec
        self.name = name
        self.channel = Resource(env, capacity=1, name=name)
        self.bytes_carried = 0
        self.messages = 0
        self.busy_s = 0.0
        # fault-injection state: transfers wait out a down window, and
        # a latency spike multiplies the per-message latency until it
        # expires (see repro.faults)
        self._down_until = 0.0
        self._latency_factor = 1.0
        self._latency_until = 0.0
        # measurement origin for :attr:`utilization` (see
        # mark_measurement): excludes pre-run setup time
        self._mark_t = 0.0
        self._mark_busy = 0.0

    # -- fault injection -------------------------------------------------
    def fail_until(self, t_s: float) -> None:
        """Take the link down until absolute simulated time ``t_s``.

        Transfers that have not yet acquired the channel wait out the
        window; a transfer already serialising completes (its frames
        were on the wire).
        """
        self._down_until = max(self._down_until, t_s)

    def spike_latency_until(self, factor: float, t_s: float) -> None:
        """Multiply the per-message latency by ``factor`` until ``t_s``."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self._latency_factor = factor
        self._latency_until = t_s

    @property
    def down(self) -> bool:
        return self.env.now < self._down_until

    @property
    def effective_latency_s(self) -> float:
        if self.env.now < self._latency_until:
            return self.spec.latency_s * self._latency_factor
        return self.spec.latency_s

    def hold_time(self, nbytes: int, count: int = 1) -> float:
        """Serialisation time for ``count`` back-to-back messages."""
        return (
            nbytes * count / self.spec.bandwidth_Bps
            + count * self.spec.per_message_cpu_s
        )

    def transfer(
        self, nbytes: int, count: int = 1, priority: int = 0, order_key=None
    ) -> Event:
        """Move ``count`` messages of ``nbytes`` each across the link."""
        if nbytes < 0 or count < 1:
            raise ValueError("invalid transfer geometry")
        if _kernel.FAST_HOLD:
            return _FastSend(self, nbytes, count, priority, order_key).result
        return self.env.process(
            self._send(nbytes, count, priority, order_key), name=f"{self.name}.xfer"
        )

    def _send(self, nbytes, count, priority, order_key=None):  # simlint: ignore[generator-serve]
        while self.env.now < self._down_until:
            yield self.env.wake_at(self._down_until)
        req = self.channel.request(priority, order_key)
        yield req
        reqs = [req]
        try:
            total = self.hold_time(nbytes, count)
            self.busy_s += total
            self.bytes_carried += nbytes * count
            self.messages += count
            yield from hold_quantum(
                self.env, [self.channel], reqs, total, self.QUANTUM_S, priority,
                order_key=order_key,
            )
        finally:
            # held-check: a teardown close (abandoned/reset env) may
            # arrive while hold_quantum is between release and re-grant
            if reqs[0] in self.channel.users:
                self.channel.release(reqs[0])
        # propagation latency of the tail message (pipelined with the rest)
        yield self.env.timeout(self.effective_latency_s)
        return nbytes * count

    def mark_measurement(self) -> None:
        """Start the utilization measurement interval *now*."""
        self._mark_t = self.env.now
        self._mark_busy = self.busy_s

    @property
    def utilization(self) -> float:
        """Busy fraction over the measured interval (since the last
        :meth:`mark_measurement`; build time when never marked)."""
        elapsed = self.env.now - self._mark_t
        if elapsed <= 0:
            return 0.0
        return (self.busy_s - self._mark_busy) / elapsed

    def reset(self) -> None:
        """Clear channel occupancy and traffic counters (warm reuse)."""
        self.channel.reset()
        self.bytes_carried = 0
        self.messages = 0
        self.busy_s = 0.0
        self._down_until = 0.0
        self._latency_factor = 1.0
        self._latency_until = 0.0
        self._mark_t = 0.0
        self._mark_busy = 0.0


class Network:
    """A switched star network connecting named endpoints.

    >>> env = Environment()
    >>> net = Network(env, ["n0", "n1", "server"], GIGABIT)
    >>> ev = net.transfer("n0", "server", 1 << 20)
    """

    def __init__(
        self,
        env: Environment,
        endpoints: list[str],
        spec: LinkSpec = GIGABIT,
        name: str = "net",
    ):
        if len(set(endpoints)) != len(endpoints):
            raise ValueError("duplicate endpoint names")
        self.env = env
        self.spec = spec
        self.name = name
        self._ep_index = {n: i for i, n in enumerate(endpoints)}
        self.uplinks = {n: Link(env, spec, f"{name}.{n}.up") for n in endpoints}
        self.downlinks = {n: Link(env, spec, f"{name}.{n}.down") for n in endpoints}

    @property
    def endpoints(self) -> list[str]:
        return list(self.uplinks)

    def add_endpoint(self, node: str) -> None:
        if node in self.uplinks:
            raise ValueError(f"endpoint {node!r} already attached")
        self._ep_index[node] = len(self._ep_index)
        self.uplinks[node] = Link(self.env, self.spec, f"{self.name}.{node}.up")
        self.downlinks[node] = Link(self.env, self.spec, f"{self.name}.{node}.down")

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        count: int = 1,
        priority: int = 0,
        order_key=None,
    ) -> Event:
        """Event firing when the last byte reaches ``dst``.

        Cut-through switching: the sender's uplink and the receiver's
        downlink are held *concurrently* for the serialisation time, so
        a hot receiver (many-to-one traffic) bottlenecks on its
        downlink while independent pairs proceed in parallel.  Local
        transfers (``src == dst``) cost a memcpy and never touch the
        fabric.
        """
        if src not in self.uplinks or dst not in self.uplinks:
            raise KeyError(f"unknown endpoint in transfer {src!r}->{dst!r}")
        if src == dst:
            return self.env.timeout(1e-6 + nbytes * count / (2000.0 * MiB))
        if _kernel.FAST_HOLD:
            return _FastRoute(
                self.uplinks[src], self.downlinks[dst], nbytes, count, priority,
                order_key=order_key,
            ).result
        return self.env.process(
            self._route(src, dst, nbytes, count, priority, order_key)
        )

    def _route(self, src, dst, nbytes, count, priority, order_key=None):  # simlint: ignore[generator-serve]
        up = self.uplinks[src]
        down = self.downlinks[dst]
        # A flapped link delays the transfer until it is back up (TCP
        # rides out short outages by retransmitting; payload accounting
        # of those retransmits lives at the RPC layer, see storage.nfs).
        while self.env.now < up._down_until or self.env.now < down._down_until:
            yield self.env.wake_at(max(up._down_until, down._down_until))
        # Acquire uplink first, downlink second (fixed order; the two
        # resource sets are disjoint so no deadlock cycle can form).
        up_req = up.channel.request(priority, order_key)
        yield up_req
        down_req = down.channel.request(priority, order_key)
        yield down_req
        reqs = [up_req, down_req]
        try:
            total = up.hold_time(nbytes, count)
            up.busy_s += total
            down.busy_s += total
            up.bytes_carried += nbytes * count
            down.bytes_carried += nbytes * count
            up.messages += count
            down.messages += count
            # Competitors interleave at quantum granularity.
            yield from hold_quantum(
                self.env,
                [up.channel, down.channel],
                reqs,
                total,
                Link.QUANTUM_S,
                priority,
                order_key=order_key,
            )
        finally:
            if reqs[1] in down.channel.users:
                down.channel.release(reqs[1])
            if reqs[0] in up.channel.users:
                up.channel.release(reqs[0])
        yield self.env.timeout(
            max(up.effective_latency_s, down.effective_latency_s)
        )
        return nbytes * count

    # -- fault injection -------------------------------------------------
    def flap(self, endpoint: str, duration_s: float, direction: str = "both") -> None:
        """Take ``endpoint``'s link(s) down for ``duration_s`` from now."""
        if endpoint not in self.uplinks:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        if direction not in ("both", "up", "down"):
            raise ValueError(f"bad direction {direction!r}")
        until = self.env.now + duration_s
        if direction in ("both", "up"):
            self.uplinks[endpoint].fail_until(until)
        if direction in ("both", "down"):
            self.downlinks[endpoint].fail_until(until)

    def latency_spike(self, endpoint: str, factor: float, duration_s: float) -> None:
        """Multiply ``endpoint``'s per-message latency for ``duration_s``."""
        if endpoint not in self.uplinks:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        until = self.env.now + duration_s
        self.uplinks[endpoint].spike_latency_until(factor, until)
        self.downlinks[endpoint].spike_latency_until(factor, until)

    def reset(self) -> None:
        """Reset every link of the fabric (warm reuse)."""
        for link in self.uplinks.values():
            link.reset()
        for link in self.downlinks.values():
            link.reset()

    def estimate_point_to_point(self, nbytes: int) -> float:
        """Uncontended one-message A→B time (for cost-model callers)."""
        return (
            self.spec.latency_s
            + self.spec.per_message_cpu_s
            + nbytes / self.spec.bandwidth_Bps
        )
