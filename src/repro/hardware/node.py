"""Compute / I/O nodes and the cluster container.

A :class:`Node` bundles the per-machine hardware state: CPU (used to
convert workload "busy work" into simulated time), RAM (which bounds
the OS page cache), and an optional local block device (JBOD or RAID
array).  A :class:`Cluster` holds the nodes plus the network fabrics
that connect them — the paper's clusters have two Gigabit Ethernet
networks, one for communication and one for data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simengine import Environment, Resource
from .network import LinkSpec, Network, GIGABIT
from .raid import RAIDArray, RAIDConfig

__all__ = ["NodeSpec", "Node", "Cluster"]

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one machine."""

    cores: int = 2
    core_gflops: float = 4.0  # per-core double-precision rate (2011-era)
    ram_bytes: int = 2 * GiB
    memcpy_Bps: float = 2500.0 * MiB


class Node:
    """One machine in the cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        spec: NodeSpec | None = None,
        storage: Optional[RAIDConfig] = None,
    ):
        self.env = env
        self.name = name
        self.spec = spec or NodeSpec()
        self.cpu = Resource(env, capacity=self.spec.cores, name=f"{name}.cpu")
        self.array: Optional[RAIDArray] = (
            RAIDArray(env, storage, name=f"{name}.array") if storage else None
        )
        #: filesystem mounts are attached by the storage layer
        self.mounts: dict[str, object] = {}

    def compute_time(self, flops: float) -> float:
        """Seconds of one core's work for ``flops`` floating operations."""
        return flops / (self.spec.core_gflops * 1e9)

    def compute(self, flops: float):
        """Process helper: occupy one core for the duration of the work."""
        return self.cpu.using(self.compute_time(flops))

    def memcpy_time(self, nbytes: int) -> float:
        """In-memory copy cost (used by caches and collective buffering)."""
        return nbytes / self.spec.memcpy_Bps

    def reset(self) -> None:
        """Reset CPU occupancy and the local array, if any (warm reuse).

        Filesystem mounts reset themselves via the owning
        :meth:`~repro.clusters.builder.System.reset`.
        """
        self.cpu.reset()
        if self.array is not None:
            self.array.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name!r} cores={self.spec.cores} ram={self.spec.ram_bytes // GiB}GiB>"


class Cluster:
    """Nodes + networks.

    ``data_network`` carries filesystem traffic; ``comm_network``
    carries MPI messages.  When a cluster has a single physical
    network, pass the same :class:`Network` for both (a paper
    configurable factor: "number and type of network — dedicated use
    or shared with the computing").
    """

    def __init__(self, env: Environment, name: str = "cluster"):
        self.env = env
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.comm_network: Optional[Network] = None
        self.data_network: Optional[Network] = None

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def set_networks(self, comm: Network, data: Optional[Network] = None) -> None:
        """Attach fabrics; ``data=None`` means a single shared network."""
        self.comm_network = comm
        self.data_network = data if data is not None else comm

    @property
    def shared_network(self) -> bool:
        """True when MPI traffic and file traffic compete on one fabric."""
        return self.comm_network is self.data_network

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in {self.name}") from None

    def compute_nodes(self) -> list[Node]:
        """All nodes except any whose name marks it as a dedicated server."""
        return [n for k, n in self.nodes.items() if not k.startswith("io")]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cluster {self.name!r} nodes={len(self.nodes)}>"
