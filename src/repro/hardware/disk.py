"""Rotational-disk model.

A :class:`Disk` serves byte-addressed read/write requests with a
mechanical cost model:

``service = seek + rotational latency + media transfer``

* **Seek** scales with the square root of the distance between the
  current head position and the target (a standard approximation of
  voice-coil actuator behaviour); back-to-back sequential requests pay
  no seek and no rotational latency.
* **Rotational latency** is half a revolution on average.
* **Media transfer** is zoned: outer tracks are faster than inner
  ones, interpolated linearly over the capacity.
* A small **readahead cache** serves sequential re-reads at bus speed,
  which is what makes small-block sequential reads through a filesystem
  fast in practice.

All requests are serialised on the disk head (a FIFO
:class:`~repro.simengine.resources.Resource` of capacity 1).  Bulk
requests (``count > 1``) are served as one queue entry but are charged
per-operation mechanical costs, split into time quanta so concurrent
streams interleave fairly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simengine import Environment, Event, Resource, hold_quantum
from ..simengine import analytic as _analytic
from ..simengine import resources as _kernel
from ..simengine.resources import FastHold

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["DiskSpec", "Disk", "READ", "WRITE"]

READ = "read"
WRITE = "write"

MiB = 1024 * 1024


@dataclass(frozen=True)
class DiskSpec:
    """Static parameters of a disk model (defaults: 7200rpm SATA, ca. 2011)."""

    capacity_bytes: int = 150 * 1000 * MiB
    rpm: float = 7200.0
    avg_seek_s: float = 8.5e-3
    track_to_track_s: float = 0.8e-3
    outer_rate_Bps: float = 110.0 * MiB
    inner_rate_Bps: float = 55.0 * MiB
    bus_rate_Bps: float = 280.0 * MiB  # SATA-II effective
    cache_bytes: int = 16 * MiB
    readahead_bytes: int = 2 * MiB
    command_overhead_s: float = 60e-6  # per-command controller/firmware cost

    @property
    def half_rotation_s(self) -> float:
        return 0.5 * 60.0 / self.rpm

    def media_rate(self, offset: int) -> float:
        """Zoned media transfer rate (bytes/s) at byte ``offset``."""
        frac = min(max(offset / self.capacity_bytes, 0.0), 1.0)
        return self.outer_rate_Bps - (self.outer_rate_Bps - self.inner_rate_Bps) * frac


@dataclass
class DiskStats:
    """Cumulative operation counters for a disk."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_s: float = 0.0
    readahead_hits: int = 0
    seeks: int = 0


class _FastServe(FastHold):
    """State-machine serve path — the callback twin of ``Disk._serve``.

    Same calendar entries, same float-operation order on the stats and
    the cost model; no Process/generator per request.
    """

    __slots__ = ("disk", "op", "offset", "nbytes", "count", "stride")

    def __init__(self, disk: "Disk", op, offset, nbytes, count, stride, priority):
        self.disk = disk
        self.op = op
        self.offset = offset
        self.nbytes = nbytes
        self.count = count
        self.stride = nbytes if stride is None else stride
        # the head queue orders same-time waiters by starting offset
        # (command-queueing style), so grant order does not depend on
        # incidental same-time scheduling order
        super().__init__(disk.env, [disk.head], priority, order_key=offset)

    def _start(self, event: Event) -> None:
        self._acquire()

    def _granted(self) -> None:
        disk = self.disk
        count = self.count
        total = disk.service_time(self.op, self.offset, self.nbytes, count, self.stride)
        stats = disk.stats
        stats.busy_s += total
        total_bytes = self.nbytes * count
        if self.op == READ:
            stats.reads += count
            stats.bytes_read += total_bytes
        else:
            stats.writes += count
            stats.bytes_written += total_bytes
        self._begin_hold(total, disk.QUANTUM_S)

    def _done(self) -> None:
        self.result.succeed(self.nbytes * self.count)


class Disk:
    """One spindle.

    Use :meth:`submit` to get an event that fires when the request has
    been fully served by the media (or cache).
    """

    #: maximum time (s) a bulk request holds the head before letting
    #: competing requests interleave
    QUANTUM_S = 0.020

    def __init__(self, env: Environment, spec: DiskSpec | None = None, name: str = "disk"):
        self.env = env
        self.spec = spec or DiskSpec()
        self.name = name
        self.head = Resource(env, capacity=1, name=f"{name}.head")
        self.stats = DiskStats()
        self._head_pos = 0  # byte offset after the last op
        self._ra_start = -1  # readahead window [start, end)
        self._ra_end = -1
        # measurement origin for :attr:`utilization` — set by
        # mark_measurement() at run start so the busy fraction covers
        # the measured run, not setup time before it
        self._mark_t = 0.0
        self._mark_busy = 0.0

    # -- cost model ------------------------------------------------------
    #: forward gaps up to this size are crossed by letting the platter
    #: rotate past them (no head movement, no rotational re-sync)
    SHORT_SKIP_BYTES = 2 * MiB

    def _positioning_time(self, offset: int) -> float:
        """Seek + rotational latency to reach ``offset``; 0 if sequential.

        A short *forward* gap costs only the rotation time over the
        skipped bytes — strided access with small holes therefore runs
        near streaming speed, as real drives do.
        """
        if offset == self._head_pos:
            return 0.0
        spec = self.spec
        gap = offset - self._head_pos
        dist = abs(gap)
        seek = spec.track_to_track_s + (spec.avg_seek_s - spec.track_to_track_s) * (
            (dist / spec.capacity_bytes) ** 0.5
        )
        if 0 < gap <= self.SHORT_SKIP_BYTES:
            skip = gap / spec.media_rate(offset)
            if skip <= seek + spec.half_rotation_s:
                return skip
        self.stats.seeks += 1
        return seek + spec.half_rotation_s

    def _one_op_time(self, op: str, offset: int, nbytes: int) -> float:
        """Service time for a single operation starting at ``offset``."""
        spec = self.spec
        if op == READ and self._ra_start <= offset and offset + nbytes <= self._ra_end:
            # Readahead hit: positioning is free (the drive already
            # streamed past), but first-time data still comes off the
            # platter — media rate bounds a sequential stream.
            self.stats.readahead_hits += 1
            t = spec.command_overhead_s + nbytes / spec.media_rate(offset)
            self._head_pos = offset + nbytes
            return t
        t = spec.command_overhead_s + self._positioning_time(offset)
        t += nbytes / spec.media_rate(offset)
        self._head_pos = offset + nbytes
        if op == READ:
            # The drive opportunistically prefetches past a read.
            self._ra_start = offset
            self._ra_end = offset + nbytes + spec.readahead_bytes
        else:
            # A write invalidates any overlapping readahead window.
            if self._ra_start < offset + nbytes and offset < self._ra_end:
                self._ra_start = self._ra_end = -1
        return t

    def service_time(self, op: str, offset: int, nbytes: int, count: int = 1, stride: int | None = None) -> float:
        """Pure cost-model query: total head time for the request.

        Does **not** advance simulated time; mutates head position the
        same way actually serving the request would.
        """
        if op not in (READ, WRITE):
            raise ValueError(f"bad op {op!r}")
        if nbytes < 0 or count < 1:
            raise ValueError("nbytes must be >= 0 and count >= 1")
        if stride == -1:  # random pattern marker: model as a large scatter
            stride = 127 * max(nbytes, 65536)
        stride = nbytes if stride is None else stride
        if count > 1 and stride == nbytes:
            # Contiguous bulk: one positioning, one long transfer.
            t = self._one_op_time(op, offset, nbytes)
            rest = nbytes * (count - 1)
            t += rest / self.spec.media_rate(offset) + self.spec.command_overhead_s * (count - 1)
            self._head_pos = offset + nbytes * count
            if op == READ:
                self._ra_start = offset
                self._ra_end = self._head_pos + self.spec.readahead_bytes
            return t
        if (
            count > 8
            and _np is not None
            and _analytic.ANALYTIC
            and stride > nbytes
            and offset >= 0
            and offset + stride * (count - 1) + nbytes <= self.spec.capacity_bytes
        ):
            return self._scatter_time_vec(op, offset, nbytes, count, stride)
        t = 0.0
        off = offset
        for _ in range(count):
            t += self._one_op_time(op, off % self.spec.capacity_bytes, nbytes)
            off += stride
        return t

    def _scatter_time_vec(self, op, offset, nbytes, count, stride):
        """Vectorized scatter cost — bit-identical to the scalar loop.

        Only reached for a forward constant-gap scatter that never
        wraps the capacity: there the seek distance is the same for
        every operation and the readahead interactions are periodic,
        so every per-op time is a closed-form elementwise expression
        (each float op matches the scalar path's op on the same
        operands) accumulated in the original sequential order.
        """
        spec = self.spec
        # the first op sees the pre-existing head position and
        # readahead window — run it through the exact scalar path
        t = self._one_op_time(op, offset, nbytes)
        n = count - 1
        if n == 0:
            return t
        offs = offset + stride * _np.arange(1, count, dtype=_np.int64)
        frac = offs / spec.capacity_bytes
        rate = spec.outer_rate_Bps - (spec.outer_rate_Bps - spec.inner_rate_Bps) * frac
        cmd = spec.command_overhead_s
        xfer = nbytes / rate
        # the head sits at the previous op's end, so the gap (and the
        # seek time) is the same constant for every remaining op
        gap = stride - nbytes
        seek = spec.track_to_track_s + (spec.avg_seek_s - spec.track_to_track_s) * (
            (gap / spec.capacity_bytes) ** 0.5
        )
        full = seek + spec.half_rotation_s
        if 0 < gap <= self.SHORT_SKIP_BYTES:
            skip = gap / rate
            skip_ok = skip <= full
            pos = _np.where(skip_ok, skip, full)
            seek_mask = ~skip_ok
        else:
            pos = _np.full(n, full)
            seek_mask = _np.ones(n, dtype=bool)
        ends = offs + nbytes
        if op == READ:
            # a miss re-anchors the window at its own offset, buying
            # floor(readahead / stride) hits before the next miss —
            # the hit/miss pattern is a pure function of the indices
            # op0 left ra_start <= offset on every path, so only the
            # window *end* decides hits; ``ends`` is increasing, so the
            # pre-existing window serves a prefix and the periodic
            # re-anchoring takes over at the first miss
            beyond = ends > self._ra_end
            if beyond.any():
                k = _np.arange(n, dtype=_np.int64)
                k0 = int(beyond.argmax())
                period = spec.readahead_bytes // stride + 1
                miss = (k >= k0) & ((k - k0) % period == 0)
            else:
                miss = beyond
            t_ops = _np.where(miss, (cmd + pos) + xfer, cmd + xfer)
            nmiss = int(_np.count_nonzero(miss))
            self.stats.readahead_hits += n - nmiss
            self.stats.seeks += int(_np.count_nonzero(seek_mask & miss))
            if nmiss:
                last = int(offs[_np.nonzero(miss)[0][-1]])
                self._ra_start = last
                self._ra_end = last + nbytes + spec.readahead_bytes
        else:
            t_ops = (cmd + pos) + xfer
            self.stats.seeks += int(_np.count_nonzero(seek_mask))
            if self._ra_start < int(ends[-1]) and int(offs[0]) < self._ra_end:
                if bool(((self._ra_start < ends) & (offs < self._ra_end)).any()):
                    self._ra_start = self._ra_end = -1
        self._head_pos = int(offs[-1]) + nbytes
        for x in t_ops.tolist():
            t += x
        return t

    # -- DES interface -----------------------------------------------------
    def submit(
        self,
        op: str,
        offset: int,
        nbytes: int,
        count: int = 1,
        stride: int | None = None,
        priority: int = 0,
    ) -> Event:
        """Serve a (possibly bulk) request; the event fires at completion."""
        if _kernel.FAST_HOLD:
            return _FastServe(self, op, offset, nbytes, count, stride, priority).result
        return self.env.process(
            self._serve(op, offset, nbytes, count, stride, priority),
            name=f"{self.name}.{op}",
        )

    def _serve(self, op, offset, nbytes, count, stride, priority):  # simlint: ignore[generator-serve]
        stride_ = nbytes if stride is None else stride
        total_bytes = nbytes * count
        req = self.head.request(priority, order_key=offset)
        yield req
        reqs = [req]
        try:
            total = self.service_time(op, offset, nbytes, count, stride_)
            self.stats.busy_s += total
            if op == READ:
                self.stats.reads += count
                self.stats.bytes_read += total_bytes
            else:
                self.stats.writes += count
                self.stats.bytes_written += total_bytes
            # Hold the head in quanta so that equal-priority competitors
            # queued behind a huge bulk transfer are not starved forever
            # (they interleave at quantum granularity).
            yield from hold_quantum(
                self.env, [self.head], reqs, total, self.QUANTUM_S, priority, order_key=offset
            )
        finally:
            # skip the release when the generator is being closed after
            # the environment was abandoned or reset (e.g. a background
            # flush still in flight when the program finished): the
            # slot is no longer held then
            if reqs[0] in self.head.users:
                self.head.release(reqs[0])
        return total_bytes

    def mark_measurement(self) -> None:
        """Start the utilization measurement interval *now*.

        Time and busy seconds accumulated before the mark (system
        setup, characterization sweeps, a previous run on a warm
        system) no longer dilute or inflate :attr:`utilization`.
        """
        self._mark_t = self.env.now
        self._mark_busy = self.stats.busy_s

    @property
    def utilization(self) -> float:
        """Busy fraction of the head over the measured interval.

        Measured from the last :meth:`mark_measurement` (build time
        when never marked) to now, counting only busy seconds accrued
        within that interval.
        """
        elapsed = self.env.now - self._mark_t
        if elapsed <= 0:
            return 0.0
        return (self.stats.busy_s - self._mark_busy) / elapsed

    def reset(self) -> None:
        """Park the head and zero all state (warm reuse)."""
        self.head.reset()
        self.stats = DiskStats()
        self._head_pos = 0
        self._ra_start = -1
        self._ra_end = -1
        self._mark_t = 0.0
        self._mark_busy = 0.0
