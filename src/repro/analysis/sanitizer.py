"""Runtime sim-sanitizer: invariant checks over a live simulation.

simlint (the static half of :mod:`repro.analysis`) catches the
*sources* of nondeterminism and leaks; this module catches the
*symptoms* at runtime.  A :class:`SimSanitizer` attaches to a built
:class:`~repro.clusters.builder.System` and verifies, while the
simulation runs and at teardown:

* **event-time monotonicity** — no event is *scheduled* before the
  current clock (checked at insert: every calendar entry, whether from
  ``Timeout``/``Wake``/``Initialize`` construction, ``succeed``/
  ``fail`` triggering or the batch ``schedule_many`` path, funnels
  through ``Environment._push``, which the sanitizer interposes) and
  the calendar never pops one scheduled before the clock;
* **deterministic tie-breaking** — heap pop keys ``(time, priority,
  seq)`` strictly increase whenever no new event was scheduled since
  the previous pop (a callback may legitimately insert an
  earlier-sorting same-timestamp event); a non-increasing key with an
  untouched calendar means the heap order itself is corrupt, i.e.
  same-timestamp events no longer fire in schedule order;
* **utilization ∈ [0, 1]** — no disk head or network link accrues
  more busy seconds than elapsed simulated seconds (over-accounting
  would fabricate bottlenecks in the evaluation verdicts);
* **byte conservation across the I/O path** — bytes the MPI-IO layer
  reports equal bytes entering the filesystem boundary (NFS mounts +
  compute-local filesystems), corrected for two known, explicitly
  accounted re-shapings: collective file domains cover only the union
  of the requests (overlap gap) and data sieving over-fetches;
* **resource-leak detection** — once the calendar is empty (run end,
  ``System.reset``), no disk head, link channel, NFS server thread or
  inode lock may still be held or queued.

Violations are *recorded* (and surfaced through the run report, see
:mod:`repro.obs.runreport`) rather than raised mid-run — except
resource misuse (double release / release-without-acquire, reported
by :mod:`repro.simengine.resources`), which raises
:class:`SanitizerError` at the offending call.

Enable with ``REPRO_SANITIZE=1`` or ``repro evaluate --sanitize``.
Disabled (the default), the only residual cost is a ``None``-check on
``env.sanitizer`` at the accounting hooks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..simengine.core import Environment, SimulationError

__all__ = [
    "SanitizerError",
    "Violation",
    "SimSanitizer",
    "sanitize_enabled",
]

#: checks a sanitized run performs, in report order
CHECKS: tuple[str, ...] = (
    "monotonicity",
    "tie-break",
    "utilization",
    "conservation",
    "leak",
    "resource",
)

#: slack for utilization float comparisons (busy times are sums of
#: many float durations; conservation uses exact integers instead)
_REL_EPS = 1e-9
_ABS_EPS = 1e-9


def sanitize_enabled() -> bool:
    """Is sanitize mode requested via ``REPRO_SANITIZE``?"""
    return os.environ.get("REPRO_SANITIZE", "").lower() in ("1", "true", "yes", "on")


class SanitizerError(SimulationError):
    """A sanitizer invariant was violated at the offending call site."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation."""

    check: str
    message: str
    t_s: float

    def as_dict(self) -> dict[str, Any]:
        return {"check": self.check, "message": self.message, "t_s": self.t_s}

    def render(self) -> str:
        return f"[{self.check}] t={self.t_s:.6f}s: {self.message}"


def _zero_ledger() -> dict[str, int]:
    return {"write": 0, "read": 0}


class SimSanitizer:
    """Invariant checker attached to one system's environment.

    Usage::

        sanitizer = SimSanitizer(system)
        sanitizer.attach()
        ... run the workload ...
        report = sanitizer.finish()   # runs end-of-run checks
        sanitizer.detach()

    The instrumented layers (:mod:`repro.simengine.resources`,
    :mod:`repro.mpi.io`, :mod:`repro.storage`) find the active
    sanitizer through ``env.sanitizer`` (``None`` when detached) so
    they carry no dependency on this package.
    """

    def __init__(self, system: Any):
        self.system = system
        self.env: Environment = system.env
        self.violations: list[Violation] = []
        self.events_checked = 0
        self.events_scheduled = 0
        self._attached = False
        self._last_key: Optional[tuple[float, int, int]] = None
        self._last_seq: Optional[int] = None
        # byte-conservation ledgers (exact integers, per op)
        self.iolib_bytes = _zero_ledger()
        self.fs_bytes = _zero_ledger()
        self.gap_bytes = _zero_ledger()
        self.overfetch_bytes = _zero_ledger()
        # fault-mode overhead ledgers: RAID rebuild traffic and RPC
        # retransmits never pass the MPI-IO boundary, so they live
        # outside the conservation identity — tracked separately for
        # the degraded-mode report rather than folded into fs_bytes
        # (which would fabricate conservation violations under faults)
        self.rebuild_bytes = _zero_ledger()
        self.retransmit_bytes = 0
        #: id() of every filesystem object forming the MPI-IO boundary:
        #: compute-node NFS mounts and local filesystems.  The server
        #: export is *behind* the mounts (its traffic would double
        #: count) and MPI ranks are placed on compute nodes only.
        self._boundary = frozenset(
            [id(m) for m in system.nfs_mounts.values()]
            + [id(l) for l in system.local_fs.values()]
        )
        self._t0 = 0.0
        self._busy0: dict[str, float] = {}

    # -- attach / detach ---------------------------------------------------
    def attach(self) -> "SimSanitizer":
        """Install the step/reset interceptors and the hook handle.

        Chains through any instance-level ``step``/``reset``/``_push``
        already installed on the environment (e.g. a
        :class:`~repro.simengine.schedule.RaceProbe` attached at
        creation), so instrumentation layers compose instead of
        silently disabling each other.
        """
        env = self.env
        if getattr(env, "sanitizer", None) is not None:
            raise SanitizerError("a sanitizer is already attached to this environment")
        self._prev_overrides = {
            attr: env.__dict__.get(attr) for attr in ("step", "reset", "_push")
        }
        prev_push = self._prev_overrides["_push"]
        self._push_down = prev_push or (
            lambda when, priority, event: Environment._push(env, when, priority, event)
        )
        prev_step = self._prev_overrides["step"]
        self._step_down = prev_step or (lambda: Environment.step(env))
        prev_reset = self._prev_overrides["reset"]
        self._reset_down = prev_reset or (
            lambda initial_time=0.0: Environment.reset(env, initial_time)
        )
        env.sanitizer = self
        env.step = self._checked_step  # type: ignore[method-assign]
        env.reset = self._checked_reset  # type: ignore[method-assign]
        # the single scheduling funnel: interposing here observes every
        # calendar insert (schedule_many detects the instance override
        # and routes each entry through it)
        env._push = self._checked_push  # type: ignore[method-assign]
        self._attached = True
        self._rebaseline()
        return self

    def detach(self) -> None:
        """Remove every interceptor, returning the environment to the
        state it was in before :meth:`attach` (previously chained
        instance overrides are restored, not dropped)."""
        self.env.__dict__.pop("sanitizer", None)
        prev = getattr(self, "_prev_overrides", None) or {}
        for attr in ("step", "reset", "_push"):
            restored = prev.get(attr)
            if restored is not None:
                self.env.__dict__[attr] = restored
            else:
                self.env.__dict__.pop(attr, None)
        self._attached = False

    def _rebaseline(self) -> None:
        self._t0 = self.env.now
        self._last_key = None
        self._last_seq = None
        self._busy0 = {name: busy for name, busy, _res in self._busy_walk()}
        for ledger in (
            self.iolib_bytes,
            self.fs_bytes,
            self.gap_bytes,
            self.overfetch_bytes,
            self.rebuild_bytes,
        ):
            ledger["write"] = ledger["read"] = 0
        self.retransmit_bytes = 0

    # -- calendar interception ---------------------------------------------
    def _checked_push(self, when: float, priority: int, event: Any) -> None:
        env = self.env
        if when < env._now:
            self._record(
                "monotonicity",
                f"{event!r} scheduled at t={when!r}, before the clock "
                f"reached t={env._now!r}",
            )
        self.events_scheduled += 1
        self._push_down(when, priority, event)

    def _checked_step(self) -> None:
        env = self.env
        queue = env._queue
        if queue:
            head = queue[0]
            key = (head[0], head[1], head[2])
            if key[0] < env._now:
                self._record(
                    "monotonicity",
                    f"event at t={key[0]!r} popped after the clock reached "
                    f"t={env._now!r}",
                )
            elif (
                self._last_key is not None
                and env._seq == self._last_seq
                and key <= self._last_key
            ):
                # nothing was scheduled since the previous pop, so this
                # head already sat in the heap then and must sort after it
                self._record(
                    "tie-break",
                    f"pop key {key!r} does not strictly follow {self._last_key!r}"
                    " — same-timestamp events are firing out of schedule order",
                )
            self._last_key = key
            # snapshot BEFORE executing the event: its callback's own
            # pushes must disarm the gate for the next pop
            self._last_seq = env._seq
            self.events_checked += 1
        self._step_down()

    def _checked_reset(self, initial_time: float = 0.0) -> None:
        self.check_leaks(stage="reset")
        self._reset_down(initial_time)
        self._rebaseline()

    # -- hooks called by instrumented layers --------------------------------
    def resource_misuse(self, message: str) -> None:
        """Record a resource-protocol violation and raise at the call.

        Called by :meth:`repro.simengine.resources.Resource.release` on
        double release / release-without-acquire.
        """
        self._record("resource", message)
        raise SanitizerError(message)

    def account_iolib(self, op: str, nbytes: int) -> None:
        """Bytes one MPI-IO operation reported (traced) at the library."""
        self.iolib_bytes[op] += nbytes

    def account_fs(self, fs: Any, op: str, nbytes: int) -> None:
        """Bytes entering a filesystem object via the MPI-IO access
        paths (``submit_direct`` / ``absorb``); only boundary
        filesystems count (see ``_boundary``)."""
        if id(fs) in self._boundary:
            self.fs_bytes[op] += nbytes

    def note_gap(self, op: str, nbytes: int) -> None:
        """Overlap gap of one collective call: requested bytes minus the
        union the aggregator file domains actually cover."""
        self.gap_bytes[op] += nbytes

    def note_overfetch(self, op: str, nbytes: int) -> None:
        """Extra bytes a data-sieving plan fetches beyond the request."""
        self.overfetch_bytes[op] += nbytes

    def note_rebuild(self, read_bytes: int, written_bytes: int) -> None:
        """RAID rebuild traffic (reconstruction reads + spare writes).

        Accounted as overhead: it competes with foreground I/O for the
        array but originates below the filesystem boundary, so it never
        enters the conservation identity.
        """
        self.rebuild_bytes["read"] += read_bytes
        self.rebuild_bytes["write"] += written_bytes

    def note_retransmit(self, nbytes: int) -> None:
        """Wire bytes of re-sent RPC requests against a stalled server.

        Duplicate requests carry no new payload past the filesystem
        boundary — overhead, not a conservation violation.
        """
        self.retransmit_bytes += nbytes

    # -- checks -------------------------------------------------------------
    def _record(self, check: str, message: str) -> None:
        self.violations.append(Violation(check, message, self.env.now))

    def _resource_walk(self) -> Iterator[tuple[str, Any]]:
        """Every leak-checkable resource, deterministically ordered."""
        system = self.system

        def disks(array: Any, owner: str) -> Iterator[tuple[str, Any]]:
            for d in array.disks:
                yield f"{owner}:{d.name}.head", d.head

        yield from disks(system.server_node.array, "ionode")
        for node in system.compute:
            if node.array is not None:
                yield from disks(node.array, node.name)
        nets = [("comm", system.cluster.comm_network)]
        if not system.cluster.shared_network:
            nets.append(("data", system.cluster.data_network))
        for label, net in nets:
            for direction, links in (("up", net.uplinks), ("down", net.downlinks)):
                for name, link in links.items():
                    yield f"{label}:{name}:{direction}", link.channel
        yield f"{system.nfs_server.name}.threads", system.nfs_server.threads
        for fs in [system.export] + [
            system.local_fs[n] for n in sorted(system.local_fs)
        ]:
            for fileid in sorted(fs._inode_locks):
                yield f"{fs.name}.ilock{fileid}", fs._inode_locks[fileid]

    def _busy_walk(self) -> Iterator[tuple[str, float, Any]]:
        """``(name, cumulative_busy_s, resource)`` of every resource
        whose busy counter feeds utilization verdicts."""
        system = self.system

        def disks(array: Any, owner: str) -> Iterator[tuple[str, float, Any]]:
            for d in array.disks:
                yield f"{owner}:{d.name}", d.stats.busy_s, d.head

        yield from disks(system.server_node.array, "ionode")
        for node in system.compute:
            if node.array is not None:
                yield from disks(node.array, node.name)
        nets = [("comm", system.cluster.comm_network)]
        if not system.cluster.shared_network:
            nets.append(("data", system.cluster.data_network))
        for label, net in nets:
            for direction, links in (("up", net.uplinks), ("down", net.downlinks)):
                for name, link in links.items():
                    yield f"{label}:{name}:{direction}", link.busy_s, link.channel

    def check_leaks(self, stage: str = "finish") -> None:
        """Flag held or queued slots once the calendar is drained.

        Only meaningful on an empty calendar: an in-flight background
        flusher legitimately holds a disk head mid-run.
        """
        if self.env._queue:
            return
        for name, resource in self._resource_walk():
            if resource.users:
                self._record(
                    "leak",
                    f"{name}: {len(resource.users)} slot(s) still held at "
                    f"{stage} with an empty calendar",
                )
            if resource.queue:
                self._record(
                    "leak",
                    f"{name}: {len(resource.queue)} request(s) still queued "
                    f"at {stage} with an empty calendar",
                )

    def check_utilization(self) -> None:
        """No resource may be busier than the elapsed interval.

        Busy time is charged at hold *start*, so a resource whose hold
        is still in flight can legitimately exceed the interval — those
        (current holders) are skipped.
        """
        interval = self.env.now - self._t0
        limit = interval * (1.0 + _REL_EPS) + _ABS_EPS
        for name, busy, resource in self._busy_walk():
            if resource.users:
                continue
            delta = busy - self._busy0.get(name, 0.0)
            if delta > limit:
                self._record(
                    "utilization",
                    f"{name}: {delta:.9f}s busy within a {interval:.9f}s "
                    "interval (utilization > 1)",
                )

    def check_conservation(self) -> None:
        """Bytes leaving MPI-IO must arrive at the filesystem boundary.

        Exactly (integer bytes, per op)::

            fs == iolib - collective_overlap_gap + sieving_overfetch
        """
        for op in ("write", "read"):
            expected = (
                self.iolib_bytes[op] - self.gap_bytes[op] + self.overfetch_bytes[op]
            )
            if self.fs_bytes[op] != expected:
                self._record(
                    "conservation",
                    f"{op}: filesystem boundary saw {self.fs_bytes[op]} B but "
                    f"MPI-IO submitted {self.iolib_bytes[op]} B "
                    f"(- {self.gap_bytes[op]} B collective overlap "
                    f"+ {self.overfetch_bytes[op]} B sieving overfetch "
                    f"= {expected} B expected)",
                )

    # -- reporting ----------------------------------------------------------
    def finish(self) -> dict[str, Any]:
        """Run the end-of-run checks and return the report dict."""
        self.check_leaks(stage="finish")
        self.check_utilization()
        self.check_conservation()
        return self.report()

    def report(self) -> dict[str, Any]:
        """JSON-safe summary (embedded in the obs run report)."""
        return {
            "enabled": True,
            "checks": list(CHECKS),
            "events_checked": self.events_checked,
            "events_scheduled": self.events_scheduled,
            "violations": [v.as_dict() for v in self.violations],
            "counters": {
                "iolib_bytes": dict(self.iolib_bytes),
                "fs_bytes": dict(self.fs_bytes),
                "gap_bytes": dict(self.gap_bytes),
                "overfetch_bytes": dict(self.overfetch_bytes),
                "rebuild_bytes": dict(self.rebuild_bytes),
                "retransmit_bytes": self.retransmit_bytes,
            },
        }

    @property
    def clean(self) -> bool:
        return not self.violations

    def render(self) -> str:
        if self.clean:
            return (
                f"sanitizer: clean ({self.events_checked} events checked, "
                "0 violations)"
            )
        lines = [
            f"sanitizer: {len(self.violations)} violation(s) over "
            f"{self.events_checked} events:"
        ]
        lines.extend("  " + v.render() for v in self.violations)
        return "\n".join(lines)
