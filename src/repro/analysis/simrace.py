"""simrace: schedule-race detection — static rules + differential runs.

The DES calendar breaks ``(when, priority)`` ties by insertion order.
That order is an implementation accident: two events scheduled for the
same instant by *different* prior executions have no causal order, so a
correct model must produce identical results whichever fires first.  A
**schedule race** is any result that depends on the accident — the
simulation analogue of a data race, and exactly the failure mode that
silently corrupts fingerprint-keyed caches and replayed phases.

Three layers, cheapest first:

**Static rules** (:data:`RACE_RULES`) extend the simlint framework to
code reachable from ``Event.callbacks`` registrations:

``tie-order-rmw``
    a callback-reachable function read-modify-writes shared mutable
    state (a subscript target, a non-``self`` attribute, or an
    attribute chain) with a non-additive update — e.g.
    ``state["v"] = state["v"] * 2``.  Two such callbacks in one tie
    group yield order-dependent results.  Pure ``+=``/``-=`` updates
    commute and are not flagged unless the same path also gates a
    branch in the function (observed intermediate values).

``unordered-callback-iter``
    a callback-reachable function iterates a ``set``/``frozenset``
    with an effectful body: the iteration order is insertion- and
    hash-dependent, so the effects fire in unordered sequence.

``seq-dependent-branch``
    a callback-reachable function branches on a scheduler insertion
    counter (``_seq`` / ``seq`` / ``_order``): such a comparison makes
    behaviour a function of push order by construction.

Suppressions use the shared pragma syntax (``# simlint:
ignore[rule]`` / ``# simlint: skip-file``); ``repro lint`` and
``scripts/simlint.py`` pick these rules up alongside the simlint ones.

**Runtime perturbation** (:mod:`repro.simengine.schedule`) records tie
groups during a run, then re-executes under reversed and seeded-random
block orders, comparing results on three surfaces:

* *conserved* — every non-float leaf plus the container structure
  (byte counts, op counts, table shapes).  Must be byte-identical
  under any tie-break order; a difference is a race.
* *timing* — float leaves.  Contention interleavings legitimately
  shift timings a little; the maximum relative deviation must stay
  under a tolerance (default 2%, the replay steadiness bound).
* *diagnostics* — wall clock and replay/sanitizer telemetry, excluded
  from comparison entirely.

**Differential matrix** (:func:`run_race_matrix`, ``repro race``)
sweeps kernel modes x sanitizer x perturbations over one workload and
configuration.  Characterization runs unperturbed once per cell and
its per-level table hashes must agree across every cell (the existing
mode-determinism contract); the perturbation axis applies only to the
evaluation run, executed with ``phase_fastpath=False`` — the replay
accelerator's steadiness heuristic is deliberately timing-sensitive,
so perturbing under it measures the heuristic, not the model.  On a
conserved divergence the flip set is delta-debugged to a minimal
reproducing subset and the first divergent event pop is reported.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import sys
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from .simlint import (
    Finding,
    _is_set_expr,
    _iter_files,
    _Pragmas,
)

__all__ = [
    "RACE_RULES",
    "KERNEL_MODES",
    "lint_race_source",
    "lint_race_paths",
    "split_surfaces",
    "timing_sensitivity",
    "diff_conserved",
    "run_race_matrix",
    "main",
]

RACE_RULES: tuple[str, ...] = (
    "tie-order-rmw",
    "unordered-callback-iter",
    "seq-dependent-branch",
)

#: kernel execution modes the differential matrix can sweep
KERNEL_MODES: tuple[str, ...] = ("exact", "analytic", "no_fasthold", "no_fsfast")

#: attribute names that expose the scheduler's insertion counters
_SEQ_NAMES = frozenset({"_seq", "seq", "_order"})

_FnNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


# ----------------------------------------------------------------------
# layer 1: static order-sensitivity rules
# ----------------------------------------------------------------------
def _callback_roots(tree: ast.AST) -> tuple[set[str], list[ast.Lambda]]:
    """Functions registered as event callbacks.

    Roots are the arguments of ``<expr>.callbacks.append(...)`` calls:
    plain names, bound methods (matched by attribute name), lambdas,
    and — for factory calls like ``append(make_cb(x))`` — the factory
    name (its nested defs become reachable through the closure walk).
    """
    names: set[str] = set()
    lambdas: list[ast.Lambda] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == "callbacks"
            and node.args
        ):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Name):
            names.add(arg.id)
        elif isinstance(arg, ast.Attribute):
            names.add(arg.attr)
        elif isinstance(arg, ast.Lambda):
            lambdas.append(arg)
        elif isinstance(arg, ast.Call):
            factory = arg.func
            if isinstance(factory, ast.Name):
                names.add(factory.id)
            elif isinstance(factory, ast.Attribute):
                names.add(factory.attr)
    return names, lambdas


def _function_table(tree: ast.AST) -> dict[str, list[_FnNode]]:
    fns: dict[str, list[_FnNode]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fns.setdefault(node.name, []).append(node)
    return fns


def _reachable_callbacks(tree: ast.AST) -> list[_FnNode]:
    """Same-file closure of functions reachable from callback roots.

    From each root, calls to names defined in the file pull those
    definitions in, and nested defs/lambdas (closures the root builds,
    e.g. a factory's returned callback) are reachable too.
    """
    names, lambdas = _callback_roots(tree)
    fns = _function_table(tree)
    work: list[_FnNode] = [n for name in names for n in fns.get(name, [])]
    work.extend(lambdas)
    seen_ids: set[int] = set()
    reachable: list[_FnNode] = []
    while work:
        fn = work.pop()
        if id(fn) in seen_ids:
            continue
        seen_ids.add(id(fn))
        reachable.append(fn)
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                work.append(node)
            elif isinstance(node, ast.Call):
                callee = node.func
                callee_name: Optional[str] = None
                if isinstance(callee, ast.Name):
                    callee_name = callee.id
                elif isinstance(callee, ast.Attribute):
                    callee_name = callee.attr
                if callee_name is not None and callee_name in fns:
                    work.extend(fns[callee_name])
    return reachable


def _scope_nodes(fn: _FnNode) -> Iterator[ast.AST]:
    """Walk a callback function's own scope (not nested defs).

    Nested scopes are visited separately — the reachability closure
    already queues them — so each finding is attributed to the scope
    that contains it.
    """
    body: list[ast.AST]
    if isinstance(fn, ast.Lambda):
        body = [fn.body]
    else:
        body = list(fn.body)
    stack = body
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _attr_chain(node: ast.expr) -> Optional[tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name bases."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return tuple(reversed(parts))


def _state_path(node: ast.expr) -> Optional[tuple[str, ...]]:
    """A hashable path for *shared* mutable state, else ``None``.

    Shared: subscripts of a name/attribute (``state["v"]``,
    ``self.tbl[k]``), attributes of non-``self`` objects (``obj.x``),
    and chains of depth >= 2 (``self.stats.count``).  Not shared: bare
    local names and single-level ``self.x`` (single-owner state by
    convention — flagging it would drown the tree in false positives).
    """
    if isinstance(node, ast.Subscript):
        base = _state_path(node.value)
        if base is None:
            chain = _attr_chain(node.value)
            if chain is None:
                if isinstance(node.value, ast.Name):
                    chain = (node.value.id,)
                else:
                    return None
            base = chain
        index = node.slice
        if isinstance(index, ast.Constant):
            return base + ("[]", repr(index.value))
        return base + ("[]", "*")
    chain = _attr_chain(node)
    if chain is None:
        return None
    if chain[0] == "self" and len(chain) == 2:
        return None
    if len(chain) < 2:
        return None
    return chain


def _read_paths(node: ast.AST) -> set[tuple[str, ...]]:
    """Every shared-state path read anywhere inside ``node``."""
    out: set[tuple[str, ...]] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Subscript, ast.Attribute)):
            path = _state_path(sub)  # type: ignore[arg-type]
            if path is not None:
                out.add(path)
    return out


def _is_additive(value: ast.expr, path: tuple[str, ...]) -> bool:
    """Is ``value`` a pure additive update of ``path``?

    True for ``<path> + e`` / ``e + <path>`` / ``<path> - e`` where the
    other operand does not read the path; anything else that reads the
    path (multiplication, calls, conditionals) is order-sensitive.
    """
    if not isinstance(value, ast.BinOp) or not isinstance(value.op, (ast.Add, ast.Sub)):
        return False
    left_reads = path in _read_paths(value.left)
    right_reads = path in _read_paths(value.right)
    if left_reads and right_reads:
        return False
    side = value.left if left_reads else value.right
    if isinstance(value.op, ast.Sub) and right_reads:
        return False  # e - <path> does not commute with another subtract
    return _state_path(side) == path


class _RaceChecker:
    """Applies the race rules to one callback-reachable function."""

    def __init__(self, path: str, set_names: frozenset[str]):
        self.path = path
        self.set_names = set_names
        self.findings: list[Finding] = []

    def flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
        )

    def _observed_paths(self, fn: _FnNode) -> set[tuple[str, ...]]:
        """Shared paths read inside branch conditions of ``fn``."""
        out: set[tuple[str, ...]] = set()
        for node in _scope_nodes(fn):
            if isinstance(node, (ast.If, ast.While)):
                out |= _read_paths(node.test)
            elif isinstance(node, ast.IfExp):
                out |= _read_paths(node.test)
            elif isinstance(node, ast.Assert):
                out |= _read_paths(node.test)
        return out

    def _check_rmw(self, fn: _FnNode) -> None:
        observed = self._observed_paths(fn)
        for node in _scope_nodes(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                path = _state_path(node.targets[0])
                if path is None or path not in _read_paths(node.value):
                    continue
                if _is_additive(node.value, path) and path not in observed:
                    continue
                self.flag(
                    node,
                    "tie-order-rmw",
                    f"read-modify-write of shared state {'.'.join(path)}: "
                    "two same-time callbacks doing this produce results "
                    "that depend on the calendar's insertion-order "
                    "tie-break; make the update commutative or impose a "
                    "semantic order_key",
                )
            elif isinstance(node, ast.AugAssign):
                path = _state_path(node.target)
                if path is None:
                    continue
                additive = isinstance(node.op, (ast.Add, ast.Sub))
                if additive and path not in observed:
                    continue
                why = (
                    "its intermediate value also gates a branch here"
                    if additive
                    else "the update is not commutative"
                )
                self.flag(
                    node,
                    "tie-order-rmw",
                    f"read-modify-write of shared state {'.'.join(path)} "
                    f"in a callback and {why}: the result depends on the "
                    "calendar's insertion-order tie-break",
                )

    def _check_set_iter(self, fn: _FnNode) -> None:
        for node in _scope_nodes(fn):
            if not isinstance(node, ast.For):
                continue
            it = node.iter
            setish: Optional[str] = None
            if _is_set_expr(it):
                setish = "a set expression"
            elif isinstance(it, ast.Name) and it.id in self.set_names:
                setish = f"set-valued name {it.id!r}"
            elif isinstance(it, ast.Attribute) and it.attr in self.set_names:
                setish = f"set-valued attribute {it.attr!r}"
            if setish is None:
                continue
            effectful = any(
                isinstance(sub, (ast.Call, ast.Assign, ast.AugAssign))
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if effectful:
                self.flag(
                    node,
                    "unordered-callback-iter",
                    f"callback iterates {setish} with an effectful body: "
                    "set order is insertion- and hash-dependent, so the "
                    "effects fire in unordered sequence; iterate "
                    "sorted(...) or an insertion-ordered dict",
                )

    def _check_seq_branch(self, fn: _FnNode) -> None:
        for node in _scope_nodes(fn):
            if not isinstance(node, ast.Compare):
                continue
            for side in [node.left, *node.comparators]:
                name: Optional[str] = None
                if isinstance(side, ast.Attribute):
                    name = side.attr
                elif isinstance(side, ast.Name):
                    name = side.id
                if name in _SEQ_NAMES:
                    self.flag(
                        node,
                        "seq-dependent-branch",
                        f"callback compares the scheduler insertion counter "
                        f"{name!r}: behaviour becomes a function of push "
                        "order, which is an implementation accident, not a "
                        "modelled quantity",
                    )
                    break

    def check(self, fn: _FnNode) -> None:
        self._check_rmw(fn)
        self._check_set_iter(fn)
        self._check_seq_branch(fn)


def lint_race_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Run the race rules over one module's source.

    Scope is *callback reachability*, not package membership: only
    functions reachable from an ``Event.callbacks`` registration in the
    same file are checked, wherever the file lives.  Pragma
    suppressions (``# simlint: ignore[rule]``) apply as in simlint.
    """
    pragmas = _Pragmas(source)
    if pragmas.skip_file:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, exc.offset or 0, "syntax", str(exc.msg))
        ]
    # set-valued names, reused for unordered-callback-iter
    from .simlint import _collect_set_names

    checker = _RaceChecker(path, _collect_set_names(tree))
    for fn in _reachable_callbacks(tree):
        checker.check(fn)
    wanted = frozenset(rules) if rules is not None else frozenset(RACE_RULES)
    out = []
    for f in sorted(checker.findings, key=lambda f: (f.line, f.col, f.rule)):
        if f.rule != "syntax" and f.rule not in wanted:
            continue
        if pragmas.suppressed(f.rule, f.line):
            continue
        out.append(f)
    return out


def lint_race_paths(
    paths: Sequence[Any],
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Run the race rules over every ``*.py`` under ``paths``."""
    findings: list[Finding] = []
    for f in _iter_files(paths):
        findings.extend(
            lint_race_source(f.read_text(encoding="utf-8"), str(f), rules=rules)
        )
    return findings


# ----------------------------------------------------------------------
# layer 2/3 support: comparison surfaces
# ----------------------------------------------------------------------
#: result keys that are telemetry about *how* a run executed, not what
#: it computed — excluded from every comparison
DIAG_KEYS: frozenset[str] = frozenset(
    {"wall_s", "replay", "replay_phases", "sanitizer", "utilization", "events"}
)


def split_surfaces(
    obj: Any, _path: str = "$"
) -> tuple[Any, dict[str, float]]:
    """Split a canonical result into (conserved, timing) surfaces.

    *Conserved* keeps every non-float leaf and the container structure,
    with floats replaced by ``None`` placeholders (so a structural
    difference — an extra op, a missing row — still shows up there).
    *Timing* maps leaf paths to their float values.  Keys in
    :data:`DIAG_KEYS` are dropped from both.
    """
    if isinstance(obj, dict):
        cons: dict[str, Any] = {}
        tim: dict[str, float] = {}
        for k, v in obj.items():
            if k in DIAG_KEYS:
                continue
            c, t = split_surfaces(v, f"{_path}.{k}")
            cons[k] = c
            tim.update(t)
        return cons, tim
    if isinstance(obj, list):
        lcons: list[Any] = []
        ltim: dict[str, float] = {}
        for i, v in enumerate(obj):
            c, t = split_surfaces(v, f"{_path}[{i}]")
            lcons.append(c)
            ltim.update(t)
        return lcons, ltim
    if isinstance(obj, float) and not isinstance(obj, bool):
        return None, {_path: obj}
    return obj, {}


def timing_sensitivity(base: dict[str, float], other: dict[str, float]) -> float:
    """Maximum relative deviation over the shared timing leaves."""
    worst = 0.0
    for k, b in base.items():
        o = other.get(k)
        if o is None:
            continue
        dev = abs(o - b) / abs(b) if b else abs(o)
        if dev > worst:
            worst = dev
    return worst


def diff_conserved(a: Any, b: Any, _path: str = "$", _out: Optional[list[str]] = None,
                   limit: int = 8) -> list[str]:
    """First ``limit`` leaf paths where two conserved surfaces differ."""
    out = [] if _out is None else _out
    if len(out) >= limit:
        return out
    if isinstance(a, dict) and isinstance(b, dict):
        for k in sorted(set(a) | set(b), key=str):
            diff_conserved(a.get(k), b.get(k), f"{_path}.{k}", out, limit)
    elif isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
        for i, (x, y) in enumerate(zip(a, b)):
            diff_conserved(x, y, f"{_path}[{i}]", out, limit)
    elif a != b:
        out.append(f"{_path}: {a!r} != {b!r}")
    return out


# ----------------------------------------------------------------------
# layer 3: the differential mode matrix
# ----------------------------------------------------------------------
class _KernelMode:
    """Context manager flipping the kernel escape hatches for one cell."""

    def __init__(self, mode: str):
        if mode not in KERNEL_MODES:
            raise ValueError(f"unknown kernel mode {mode!r}; one of {KERNEL_MODES}")
        self.mode = mode
        self._saved: tuple[bool, bool, bool, bool] = (True, True, True, False)

    def __enter__(self) -> "_KernelMode":
        from ..simengine import analytic as _analytic
        from ..simengine import resources as _kernel

        self._saved = (
            _kernel.FAST_HOLD,
            _kernel.QUANTUM_COALESCE,
            _kernel.FS_FAST,
            _analytic.ANALYTIC,
        )
        _kernel.FAST_HOLD = self.mode != "no_fasthold"
        _kernel.FS_FAST = self.mode != "no_fsfast"
        _analytic.ANALYTIC = self.mode == "analytic"
        return self

    def __exit__(self, *exc: object) -> None:
        from ..simengine import analytic as _analytic
        from ..simengine import resources as _kernel

        (
            _kernel.FAST_HOLD,
            _kernel.QUANTUM_COALESCE,
            _kernel.FS_FAST,
            _analytic.ANALYTIC,
        ) = self._saved


def _table_hashes(methodology: Any, config_name: str) -> dict[str, str]:
    """Per-level ``sha256(csv)[:16]`` of one configuration's tables."""
    tables = methodology.tables[config_name]
    return {
        level: hashlib.sha256(tables[level].to_csv().encode()).hexdigest()[:16]
        for level in sorted(tables)
    }


def run_race_matrix(
    app: Any,
    config: Any = None,
    config_name: str = "jbod",
    modes: Sequence[str] = KERNEL_MODES,
    sanitize: Sequence[bool] = (False, True),
    seeds: Sequence[int] = (0,),
    reverse: bool = True,
    block_sizes: Optional[Sequence[int]] = None,
    char_file_bytes: Optional[int] = None,
    ior_nprocs: int = 8,
    ior_file_bytes: Optional[int] = None,
    tol: float = 0.02,
    minimize: bool = True,
    max_minimize_runs: int = 48,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Sweep kernel modes x sanitizer x tie-break perturbations.

    Per cell: characterize unperturbed (``n_jobs=1``, no cache), hash
    the tables, run the evaluation baseline under a
    :class:`~repro.simengine.schedule.TieGroupRecorder`, then re-run it
    under each perturbation plan (block reversal plus one seeded
    shuffle per entry of ``seeds``) with ``phase_fastpath=False``.  A
    conserved-surface divergence is a race finding: its flip set is
    minimized and the first divergent pop located.  Table hashes must
    agree across *all* cells.  Returns a ``repro.race-report/1`` dict.
    """
    from ..core.methodology import Methodology
    from ..fingerprint import canonicalize, workload_fingerprint
    from ..simengine.schedule import (
        Perturber,
        PopRecorder,
        TieGroupRecorder,
        capture,
        minimize_flips,
        reverse_plans,
        shuffle_plans,
    )
    from ..storage.base import GiB, KiB

    if config is None:
        from ..clusters import aohyper_config

        config = aohyper_config(config_name)
    if block_sizes is None:
        block_sizes = tuple((32 * KiB) << k for k in range(0, 10, 3))
    if ior_file_bytes is None:
        ior_file_bytes = 2 * GiB

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    sweep: dict[str, Any] = dict(
        block_sizes=tuple(block_sizes),
        ior_nprocs=ior_nprocs,
        ior_file_bytes=ior_file_bytes,
    )
    if char_file_bytes is not None:
        sweep["char_file_bytes"] = char_file_bytes

    cells: list[dict[str, Any]] = []
    findings: list[dict[str, Any]] = []
    all_hashes: list[dict[str, str]] = []

    for mode in modes:
        for san in sanitize:
            say(f"cell mode={mode} sanitize={san}: characterizing")
            with _KernelMode(mode):
                m = Methodology({config_name: config}, **sweep)
                m.characterize(n_jobs=1)
                hashes = _table_hashes(m, config_name)
                all_hashes.append(hashes)

                def run_eval(hook: Any = None) -> tuple[Any, dict[str, float]]:
                    import contextlib

                    cm = capture(hook) if hook is not None else contextlib.nullcontext()
                    with cm:
                        reports = m.evaluate(
                            app, n_jobs=1, phase_fastpath=False, sanitize=san
                        )
                    return split_surfaces(canonicalize(reports))

                recorder = TieGroupRecorder()
                base_cons, base_tim = run_eval(recorder)
                groups = recorder.groups()
                say(
                    f"cell mode={mode} sanitize={san}: "
                    f"{len(groups)} tie group(s), perturbing"
                )

                plans_by_name: dict[str, dict[Any, tuple[int, ...]]] = {}
                if reverse:
                    plans_by_name["reverse"] = reverse_plans(groups)
                for seed in seeds:
                    plans_by_name[f"shuffle:{seed}"] = shuffle_plans(groups, seed)

                perturbations: list[dict[str, Any]] = []
                for name, plans in plans_by_name.items():
                    cons, tim = run_eval(Perturber(plans))
                    identical = cons == base_cons
                    sens = timing_sensitivity(base_tim, tim)
                    entry: dict[str, Any] = {
                        "perturbation": name,
                        "conserved_identical": identical,
                        "timing_sensitivity": sens,
                        "within_tolerance": identical and sens <= tol,
                    }
                    if not identical:
                        detail = diff_conserved(base_cons, cons)
                        finding: dict[str, Any] = {
                            "kind": "schedule-race",
                            "mode": mode,
                            "sanitize": san,
                            "perturbation": name,
                            "detail": detail,
                        }
                        if minimize:
                            keys = sorted(plans)

                            def diverges(subset: list[Any]) -> bool:
                                sub = {k: plans[k] for k in subset}
                                c, _t = run_eval(Perturber(sub))
                                return c != base_cons

                            minimal, runs, reduced = minimize_flips(
                                keys, diverges, max_runs=max_minimize_runs
                            )
                            finding["flip_groups"] = [list(k) for k in minimal]
                            finding["minimize_runs"] = runs
                            finding["minimal"] = reduced
                            # localize: diff the pop streams of baseline
                            # vs the minimal flip set
                            base_pops = PopRecorder({})
                            run_eval(base_pops)
                            flip_pops = PopRecorder({k: plans[k] for k in minimal})
                            run_eval(flip_pops)
                            first = next(
                                (
                                    {"index": i, "baseline": list(b), "flipped": list(g)}
                                    for i, (b, g) in enumerate(
                                        zip(base_pops.pops, flip_pops.pops)
                                    )
                                    if b != g
                                ),
                                None,
                            )
                            finding["first_divergence"] = first
                        findings.append(finding)
                        entry["finding"] = len(findings) - 1
                    elif sens > tol:
                        findings.append(
                            {
                                "kind": "timing-sensitivity",
                                "mode": mode,
                                "sanitize": san,
                                "perturbation": name,
                                "timing_sensitivity": sens,
                                "tolerance": tol,
                            }
                        )
                        entry["finding"] = len(findings) - 1
                    perturbations.append(entry)

                cells.append(
                    {
                        "mode": mode,
                        "sanitize": san,
                        "tables": hashes,
                        "tie_groups": len(groups),
                        "perturbations": perturbations,
                    }
                )

    tables_identical = all(h == all_hashes[0] for h in all_hashes[1:])
    if not tables_identical:
        findings.append(
            {
                "kind": "mode-divergence",
                "detail": [
                    "characterization table hashes differ across cells; "
                    "the mode-determinism contract is broken"
                ],
            }
        )

    return {
        "schema": "repro.race-report/1",
        "workload": {
            "name": getattr(app, "name", type(app).__name__),
            "fingerprint": workload_fingerprint(app),
        },
        "config": config_name,
        "params": {
            "modes": list(modes),
            "sanitize": [bool(s) for s in sanitize],
            "seeds": list(seeds),
            "reverse": bool(reverse),
            "tolerance": tol,
            "block_sizes": list(sweep["block_sizes"]),
            "ior_nprocs": ior_nprocs,
            "ior_file_bytes": ior_file_bytes,
        },
        "must_preserve": {
            "identical": tables_identical,
            "tables": all_hashes[0] if all_hashes else {},
        },
        "cells": cells,
        "findings": findings,
        "ok": not findings,
    }


# ----------------------------------------------------------------------
# CLI: ``repro race`` delegates here
# ----------------------------------------------------------------------
def render_report(report: dict[str, Any]) -> str:
    """A compact human-readable rendering of a race report."""
    lines: list[str] = []
    w = report["workload"]
    lines.append(
        f"simrace: {w['name']} [workload {w['fingerprint']}] on "
        f"{report['config']}"
    )
    mp = report["must_preserve"]
    state = "identical across all cells" if mp["identical"] else "DIVERGED"
    lines.append(f"  tables: {state}")
    for level, digest in sorted(mp.get("tables", {}).items()):
        lines.append(f"    {level:<10} {digest}")
    for cell in report["cells"]:
        tag = f"mode={cell['mode']} sanitize={cell['sanitize']}"
        lines.append(f"  cell {tag}: {cell['tie_groups']} tie group(s)")
        for p in cell["perturbations"]:
            verdict = "ok" if p["within_tolerance"] else "DIVERGED"
            lines.append(
                f"    {p['perturbation']:<12} {verdict}  "
                f"(timing sensitivity {p['timing_sensitivity']:.2e})"
            )
    for f in report["findings"]:
        lines.append(f"  FINDING [{f['kind']}]: {json.dumps(f, default=str)[:400]}")
    lines.append("simrace: " + ("clean" if report["ok"] else
                                f"{len(report['findings'])} finding(s)"))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone static pass: ``python -m repro.analysis.simrace``."""
    parser = argparse.ArgumentParser(
        prog="simrace",
        description="static order-sensitivity rules (see repro.analysis.simrace)",
    )
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument("--rules", nargs="+", choices=RACE_RULES, default=None)
    parser.add_argument("--format", choices=["text", "json"], default="text", dest="fmt")
    args = parser.parse_args(argv)
    findings = lint_race_paths(args.paths, rules=args.rules)
    if args.fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"simrace: {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
