"""simlint: AST-based static checks for simulation correctness.

The methodology's verdicts are only sound if every simulated run is
deterministic and dimensionally consistent — and PRs 1-3 reuse results
aggressively (fingerprint-keyed table cache, phase extrapolation,
warm-started systems), so a single hidden nondeterminism or unit slip
silently corrupts cached tables and extrapolated phases.  simlint
checks the failure classes this codebase has actually met:

``wall-clock``
    ``time.time()`` / ``datetime.now()`` and friends inside the
    simulation packages.  Simulated time is ``env.now``; wall-clock
    readings differ run-to-run and poison determinism.

``unseeded-random``
    module-level ``random.*`` calls, ``random.Random()`` with no seed,
    or legacy ``numpy.random.*`` / ``default_rng()`` with no seed.
    All stochastic inputs must flow through the seeded
    :mod:`repro.simengine.rng` streams.

``set-iteration``
    iterating a ``set``/``frozenset`` (literal, constructor or a name
    assigned one).  Set order depends on insertion history and — for
    strings — on ``PYTHONHASHSEED``, so any iteration feeding event
    scheduling or table merges breaks the bit-identical parallel-merge
    guarantee.  Wrap in ``sorted(...)`` or use an insertion-ordered
    ``dict`` as an ordered set.

``resource-release``
    a function acquires a slot via ``.request()`` but the matching
    ``.release()`` is missing or not inside a ``try/finally`` — the
    leak class PR 2 patched ad hoc with teardown guards.

``unit-mix``
    adding/subtracting/comparing two unit-suffixed names of the same
    dimension but different units (``*_bytes`` vs ``*_mib``, ``*_s``
    vs ``*_ms``).

``fault-rng``
    any stdlib ``random`` usage — import or call, seeded or not —
    inside :mod:`repro.faults`.  Fault schedules promise byte-
    identical degraded-mode reports for a fixed seed, so all fault
    randomness must flow through the schedule-seeded
    ``env.rng`` registry streams; even a locally seeded
    ``random.Random(42)`` would decouple the jitter from the
    schedule's seed.

``generator-serve``
    a generator-based serve loop (a function yielding simulation
    events, or delegating with ``yield from``) inside
    :mod:`repro.storage` / :mod:`repro.hardware`.  The hot service
    paths are flat callback state machines (``FlatOp`` /
    ``FastHold``); per-event generator resumes cost roughly half the
    wall time the flat paths saved, so new serve code must be written
    flat.  The ``REPRO_NO_FSFAST`` / ``REPRO_NO_FASTHOLD`` escape-
    hatch implementations stay as generators by design and carry
    ``# simlint: ignore[generator-serve]``.  Pure data generators
    (yielding tuples or names, e.g. ``PageCache.coalesce``) are not
    flagged.

The first four rules apply only inside the simulation packages
(:data:`SIM_PACKAGES`, which includes the workload-grammar and
trace-ingestion layers — their outputs feed the DES and its caches);
``generator-serve`` only inside the storage and hardware layers;
``unit-mix`` applies everywhere.  Intentional
exceptions are allowlisted with ``# simlint: ignore[rule]`` (or a bare
``# simlint: ignore``) on the offending line, and whole files with
``# simlint: skip-file``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "RULES",
    "SIM_PACKAGES",
    "Finding",
    "lint_source",
    "lint_paths",
    "main",
]

RULES: tuple[str, ...] = (
    "wall-clock",
    "unseeded-random",
    "set-iteration",
    "resource-release",
    "unit-mix",
    "fault-rng",
    "generator-serve",
)

#: packages whose serve paths must stay flat callback state machines —
#: the scope of the ``generator-serve`` rule
SERVE_PACKAGES: frozenset[str] = frozenset({"storage", "hardware"})

#: packages whose code runs inside (or feeds) the DES — the scope of
#: the determinism rules.  ``workloads`` and ``tracing`` are in scope
#: since the grammar/ingest layers: compiled specs and replayed traces
#: feed the simulation, so nondeterminism there corrupts fingerprint-
#: keyed caches just as surely as in the kernel itself
SIM_PACKAGES: frozenset[str] = frozenset(
    {"simengine", "mpi", "storage", "hardware", "core", "faults",
     "workloads", "tracing"}
)

_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
#: legacy numpy global-stream functions (np.random.<fn>)
_NUMPY_LEGACY = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "uniform",
        "normal",
        "shuffle",
        "permutation",
        "choice",
        "seed",
    }
)

#: name suffix -> (dimension, unit)
_UNIT_SUFFIXES: dict[str, tuple[str, str]] = {
    "_ns": ("time", "ns"),
    "_us": ("time", "us"),
    "_ms": ("time", "ms"),
    "_s": ("time", "s"),
    "_bytes": ("size", "bytes"),
    "_kib": ("size", "kib"),
    "_mib": ("size", "mib"),
    "_gib": ("size", "gib"),
    "_kb": ("size", "kb"),
    "_mb": ("size", "mb"),
    "_gb": ("size", "gb"),
}
_SUFFIXES_BY_LENGTH = sorted(_UNIT_SUFFIXES, key=len, reverse=True)

_PRAGMA_RE = re.compile(r"#\s*simlint:\s*(ignore|skip-file)(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class _Pragmas:
    """Per-line ``# simlint: ignore[...]`` suppressions of one file."""

    def __init__(self, source: str):
        self.skip_file = False
        #: line number -> None (ignore all rules) or the named rules
        self.ignores: dict[int, Optional[frozenset[str]]] = {}
        for lineno, line in enumerate(source.splitlines(), 1):
            m = _PRAGMA_RE.search(line)
            if m is None:
                continue
            if m.group(1) == "skip-file":
                self.skip_file = True
                continue
            rules = m.group(2)
            if rules is None:
                self.ignores[lineno] = None
            else:
                names = frozenset(r.strip() for r in rules.split(",") if r.strip())
                self.ignores[lineno] = names or None

    def suppressed(self, rule: str, *lines: int) -> bool:
        for line in lines:
            if line not in self.ignores:
                continue
            rules = self.ignores[line]
            if rules is None or rule in rules:
                return True
        return False


def _is_sim_path(path: str) -> bool:
    """Does ``path`` live in one of the simulation packages?"""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return parts[i + 1] in SIM_PACKAGES
    return False


def _is_faults_path(path: str) -> bool:
    """Does ``path`` live in :mod:`repro.faults`?"""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return parts[i + 1] == "faults"
    return False


def _is_serve_path(path: str) -> bool:
    """Does ``path`` live in a flat-serve-path package (storage/hardware)?"""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return parts[i + 1] in SERVE_PACKAGES
    return False


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Attribute):
        yield target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def _is_set_expr(node: Optional[ast.expr]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    return False


def _collect_set_names(tree: ast.AST) -> frozenset[str]:
    """Names (and attribute names) assigned set-valued expressions."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            if _is_set_annotation(node.annotation) or _is_set_expr(node.value):
                names.update(_target_names(node.target))
        elif isinstance(node, ast.AugAssign) and _is_set_expr(node.value):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.arg) and _is_set_annotation(node.annotation):
            names.add(node.arg)
    return frozenset(names)


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _walk_same_scope(fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _unit_of(node: ast.expr) -> Optional[tuple[str, str]]:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    lowered = name.lower()
    for suffix in _SUFFIXES_BY_LENGTH:
        if lowered.endswith(suffix):
            return _UNIT_SUFFIXES[suffix]
    return None


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        sim_scope: bool,
        set_names: frozenset[str],
        faults_scope: bool = False,
        serve_scope: bool = False,
    ):
        self.path = path
        self.sim_scope = sim_scope
        self.faults_scope = faults_scope
        self.serve_scope = serve_scope
        self.set_names = set_names
        self.findings: list[Finding] = []
        # import aliases of interest
        self.time_mods: set[str] = set()
        self.datetime_mods: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.random_mods: set[str] = set()
        self.numpy_mods: set[str] = set()
        self.time_names: set[str] = set()
        self.random_names: set[str] = set()
        self.numpy_rng_names: set[str] = set()

    def flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
        )

    def _flag_fault_rng(self, node: ast.AST, what: str) -> None:
        self.flag(
            node,
            "fault-rng",
            f"{what} inside repro.faults: fault jitter must come from the "
            "schedule-seeded env.rng registry streams, never the stdlib "
            "random module (seeded or not)",
        )

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time" or alias.name.startswith("time."):
                self.time_mods.add(bound)
            elif alias.name == "datetime":
                self.datetime_mods.add(bound)
            elif alias.name == "random":
                self.random_mods.add(bound)
                if self.faults_scope:
                    self._flag_fault_rng(node, "import random")
            elif alias.name == "numpy" or alias.name.startswith("numpy."):
                self.numpy_mods.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random" and self.faults_scope:
            self._flag_fault_rng(node, "from random import ...")
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "time" and alias.name in _TIME_FUNCS:
                self.time_names.add(bound)
            elif module == "datetime" and alias.name == "datetime":
                self.datetime_classes.add(bound)
            elif module == "random":
                self.random_names.add(bound)
            elif module == "numpy.random":
                self.numpy_rng_names.add(bound)

    # -- wall-clock / unseeded-random --------------------------------------
    def _no_args(self, node: ast.Call) -> bool:
        return not node.args and not node.keywords

    def visit_Call(self, node: ast.Call) -> None:
        if self.sim_scope:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if self.faults_scope:
            if isinstance(func, ast.Name) and func.id in self.random_names:
                self._flag_fault_rng(node, f"{func.id}() call")
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.random_mods
            ):
                self._flag_fault_rng(node, f"{func.value.id}.{func.attr}() call")
        if isinstance(func, ast.Name):
            if func.id in self.time_names:
                self.flag(
                    node,
                    "wall-clock",
                    f"{func.id}() reads the wall clock; simulated code must "
                    "use env.now / simulated timings only",
                )
            elif func.id in self.random_names:
                self.flag(
                    node,
                    "unseeded-random",
                    f"{func.id}() draws from the shared unseeded random "
                    "stream; use the seeded repro.simengine.rng streams",
                )
            elif func.id in self.numpy_rng_names and func.id == "default_rng" and self._no_args(node):
                self.flag(
                    node,
                    "unseeded-random",
                    "default_rng() with no seed is entropy-seeded and "
                    "nondeterministic; pass an explicit seed",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in self.time_mods and func.attr in _TIME_FUNCS:
                self.flag(
                    node,
                    "wall-clock",
                    f"{base.id}.{func.attr}() reads the wall clock; simulated "
                    "code must use env.now / simulated timings only",
                )
            elif (
                base.id in self.datetime_mods or base.id in self.datetime_classes
            ) and func.attr in _DATETIME_FUNCS:
                self.flag(
                    node,
                    "wall-clock",
                    f"{base.id}.{func.attr}() reads the wall clock; simulated "
                    "code must use env.now / simulated timings only",
                )
            elif base.id in self.random_mods:
                if func.attr == "Random":
                    if self._no_args(node):
                        self.flag(
                            node,
                            "unseeded-random",
                            "random.Random() with no seed is entropy-seeded; "
                            "pass an explicit seed",
                        )
                elif func.attr not in ("SystemRandom", "getstate", "setstate"):
                    self.flag(
                        node,
                        "unseeded-random",
                        f"{base.id}.{func.attr}() uses the shared module-level "
                        "random stream; use the seeded repro.simengine.rng "
                        "streams",
                    )
            elif func.attr == "default_rng" and self._no_args(node):
                self.flag(
                    node,
                    "unseeded-random",
                    "default_rng() with no seed is entropy-seeded and "
                    "nondeterministic; pass an explicit seed",
                )
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            # np.random.<fn>() / datetime.datetime.now()
            if (
                base.value.id in self.numpy_mods
                and base.attr == "random"
                and func.attr in _NUMPY_LEGACY
            ):
                self.flag(
                    node,
                    "unseeded-random",
                    f"numpy.random.{func.attr}() uses the legacy global "
                    "stream; use a seeded Generator from "
                    "repro.simengine.rng",
                )
            elif (
                base.value.id in self.datetime_mods
                and base.attr == "datetime"
                and func.attr in _DATETIME_FUNCS
            ):
                self.flag(
                    node,
                    "wall-clock",
                    f"datetime.datetime.{func.attr}() reads the wall clock; "
                    "simulated code must use env.now only",
                )
            elif func.attr == "default_rng" and self._no_args(node):
                self.flag(
                    node,
                    "unseeded-random",
                    "default_rng() with no seed is entropy-seeded and "
                    "nondeterministic; pass an explicit seed",
                )

    # -- set-iteration -----------------------------------------------------
    def _check_iterable(self, node: ast.expr) -> None:
        if not self.sim_scope:
            return
        what: Optional[str] = None
        if isinstance(node, (ast.Set, ast.SetComp)):
            what = "a set literal"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                what = f"{node.func.id}(...)"
        elif isinstance(node, ast.Name) and node.id in self.set_names:
            what = f"set-valued name {node.id!r}"
        elif isinstance(node, ast.Attribute) and node.attr in self.set_names:
            what = f"set-valued attribute {node.attr!r}"
        if what is not None:
            self.flag(
                node,
                "set-iteration",
                f"iteration over {what}: set order is insertion- and "
                "hash-dependent; wrap in sorted(...) or use an "
                "insertion-ordered dict",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST, generators: list[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, node.generators)

    # -- resource-release --------------------------------------------------
    def _check_releases(self, fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        if not self.sim_scope:
            return
        requests: list[ast.Call] = []
        releases: list[ast.Call] = []
        finally_bodies: list[list[ast.stmt]] = []
        for node in _walk_same_scope(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "request":
                    requests.append(node)
                elif node.func.attr == "release":
                    releases.append(node)
            elif isinstance(node, ast.Try) and node.finalbody:
                finally_bodies.append(node.finalbody)
        if not requests:
            return
        for body in finally_bodies:
            stack: list[ast.AST] = list(body)
            while stack:
                node = stack.pop()
                if isinstance(node, _SCOPE_NODES):
                    continue
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                ):
                    return  # release guaranteed on all paths
                stack.extend(ast.iter_child_nodes(node))
        first = min(requests, key=lambda n: (n.lineno, n.col_offset))
        if releases:
            self.flag(
                first,
                "resource-release",
                f"{fn.name}() acquires a slot via .request() but releases it "
                "outside try/finally — the release is not guaranteed on all "
                "paths (exceptions / teardown leak the slot)",
            )
        else:
            self.flag(
                first,
                "resource-release",
                f"{fn.name}() acquires a slot via .request() and never "
                "releases it",
            )

    # -- generator-serve ---------------------------------------------------
    def _check_generator_serve(
        self, fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        if not self.serve_scope:
            return
        for node in _walk_same_scope(fn):
            # a serve loop yields simulation events (calls) or delegates
            # to another serve generator; data generators yield plain
            # tuples/names/constants and stay unflagged
            if isinstance(node, ast.YieldFrom) or (
                isinstance(node, ast.Yield)
                and isinstance(node.value, (ast.Call, ast.Await))
            ):
                self.flag(
                    fn,
                    "generator-serve",
                    f"{fn.name}() is a generator-based serve loop: hot "
                    "service paths must be flat callback state machines "
                    "(FlatOp/FastHold); keep generators only as the "
                    "REPRO_NO_FSFAST/REPRO_NO_FASTHOLD escape hatches, "
                    "marked # simlint: ignore[generator-serve]",
                )
                return

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_releases(node)
        self._check_generator_serve(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_releases(node)
        self._check_generator_serve(node)
        self.generic_visit(node)

    # -- unit-mix ----------------------------------------------------------
    def _check_unit_pair(self, node: ast.AST, left: ast.expr, right: ast.expr) -> None:
        lu = _unit_of(left)
        ru = _unit_of(right)
        if lu is None or ru is None:
            return
        if lu[0] == ru[0] and lu[1] != ru[1]:
            self.flag(
                node,
                "unit-mix",
                f"arithmetic mixes units: *_{lu[1]} vs *_{ru[1]} — convert "
                "to a common unit before combining",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_unit_pair(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                self._check_unit_pair(node, left, right)
            left = right
        self.generic_visit(node)


def lint_source(
    source: str,
    path: str = "<string>",
    sim_scope: Optional[bool] = None,
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one module's source; returns the unsuppressed findings.

    ``sim_scope`` forces the determinism rules on or off (``None``
    derives it from ``path``, see :data:`SIM_PACKAGES`).  ``rules``
    restricts the reported rules.
    """
    pragmas = _Pragmas(source)
    if pragmas.skip_file:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, exc.offset or 0, "syntax", str(exc.msg))
        ]
    if sim_scope is None:
        sim_scope = _is_sim_path(path)
    linter = _Linter(
        path,
        sim_scope,
        _collect_set_names(tree),
        faults_scope=_is_faults_path(path),
        serve_scope=_is_serve_path(path),
    )
    linter.visit(tree)
    wanted = frozenset(rules) if rules is not None else frozenset(RULES)
    out = []
    for f in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        if f.rule != "syntax" and f.rule not in wanted:
            continue
        if pragmas.suppressed(f.rule, f.line):
            continue
        out.append(f)
    return out


def _iter_files(paths: Sequence[Union[str, Path]]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*.py")) if not f.name.startswith(".")
            )
        else:
            files.append(p)
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for f in _iter_files(paths):
        findings.extend(
            lint_source(f.read_text(encoding="utf-8"), str(f), rules=rules)
        )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``repro lint`` / ``scripts/simlint.py``.

    The schedule-race rules (:data:`repro.analysis.simrace.RACE_RULES`)
    run alongside the simlint ones: one invocation, one merged finding
    list, one shared pragma syntax.
    """
    # simrace imports the framework pieces from this module, so pull
    # its rules in lazily here rather than at import time
    from .simrace import RACE_RULES, lint_race_paths

    parser = argparse.ArgumentParser(
        prog="simlint",
        description="simulation-correctness static checks (see repro.analysis.simlint)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        choices=RULES + RACE_RULES,
        default=None,
        help="restrict to these rules (default: all, including the "
             "schedule-race rules)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    args = parser.parse_args(argv)
    lint_rules = race_rules = None
    if args.rules is not None:
        lint_rules = [r for r in args.rules if r in RULES]
        race_rules = [r for r in args.rules if r in RACE_RULES]
    findings = []
    if args.rules is None or lint_rules:
        findings.extend(lint_paths(args.paths, rules=lint_rules))
    if args.rules is None or race_rules:
        findings.extend(lint_race_paths(args.paths, rules=race_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if args.fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        nfiles = len(_iter_files(args.paths))
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"simlint: {nfiles} file(s), {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
