"""Correctness tooling: static checks (simlint) + runtime sanitizer.

The methodology's verdicts are trustworthy only if the simulation is
deterministic, dimensionally consistent and leak-free.  This package
holds the two guards:

* :mod:`repro.analysis.simlint` — AST-based static rules
  (``repro lint`` / ``scripts/simlint.py``);
* :mod:`repro.analysis.sanitizer` — runtime invariant checks
  (``REPRO_SANITIZE=1`` / ``repro evaluate --sanitize``);
* :mod:`repro.analysis.simrace` — schedule-race detector: static
  order-sensitivity rules over event callbacks, a seeded tie-break
  perturbation probe, and the differential mode matrix
  (``repro race``).
"""

from .sanitizer import SanitizerError, SimSanitizer, Violation, sanitize_enabled
from .simlint import RULES, Finding, lint_paths, lint_source
from .simrace import RACE_RULES, lint_race_paths, lint_race_source, run_race_matrix

__all__ = [
    "RULES",
    "Finding",
    "lint_paths",
    "lint_source",
    "RACE_RULES",
    "lint_race_paths",
    "lint_race_source",
    "run_race_matrix",
    "SanitizerError",
    "SimSanitizer",
    "Violation",
    "sanitize_enabled",
]
