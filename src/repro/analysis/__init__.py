"""Correctness tooling: static checks (simlint) + runtime sanitizer.

The methodology's verdicts are trustworthy only if the simulation is
deterministic, dimensionally consistent and leak-free.  This package
holds the two guards:

* :mod:`repro.analysis.simlint` — AST-based static rules
  (``repro lint`` / ``scripts/simlint.py``);
* :mod:`repro.analysis.sanitizer` — runtime invariant checks
  (``REPRO_SANITIZE=1`` / ``repro evaluate --sanitize``).
"""

from .sanitizer import SanitizerError, SimSanitizer, Violation, sanitize_enabled
from .simlint import RULES, Finding, lint_paths, lint_source

__all__ = [
    "RULES",
    "Finding",
    "lint_paths",
    "lint_source",
    "SanitizerError",
    "SimSanitizer",
    "Violation",
    "sanitize_enabled",
]
