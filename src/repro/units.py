"""Shared unit helpers (leaf module, stdlib only).

Byte-size formatting and parsing used across the run-report, the
Darshan-style trace summaries and the workload grammar.  Sizes are
binary (1 KiB = 1024 B); the parser also accepts the short ``K/M/G``
and ``KB/MB/GB`` spellings with the same binary meaning, matching the
IOzone/IOR convention the paper's tables use.
"""

from __future__ import annotations

import re

__all__ = ["fmt_bytes", "parse_bytes"]

#: accepted unit spellings -> multiplier (binary, IOzone convention)
_UNIT_MULTIPLIERS: dict[str, int] = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*$")


def fmt_bytes(n: float) -> str:
    """Human-readable byte count: ``512B``, ``1.5KiB``, ``80.0MiB``."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - loop always returns


def parse_bytes(value) -> int:
    """A byte count from an int or a unit-suffixed string (``"64KiB"``).

    Integers pass through; strings take an optional binary unit suffix
    (``B``, ``K``/``KB``/``KiB``, ``M``/``MB``/``MiB``,
    ``G``/``GB``/``GiB``, case-insensitive).  Fractional values must
    still resolve to a whole number of bytes (``"1.5KiB"`` is 1536).
    """
    if isinstance(value, bool):
        raise ValueError(f"not a byte count: {value!r}")
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"byte count must be >= 0: {value!r}")
        return value
    if isinstance(value, float):
        if not value.is_integer() or value < 0:
            raise ValueError(f"byte count must be a whole number >= 0: {value!r}")
        return int(value)
    if not isinstance(value, str):
        raise ValueError(f"not a byte count: {value!r}")
    m = _SIZE_RE.match(value)
    if m is None:
        raise ValueError(f"malformed size {value!r} (want e.g. 4096, '64KiB', '1MiB')")
    number, unit = m.group(1), m.group(2).lower()
    if unit not in _UNIT_MULTIPLIERS:
        raise ValueError(f"unknown size unit {m.group(2)!r} in {value!r}")
    n = float(number) * _UNIT_MULTIPLIERS[unit]
    if not float(n).is_integer():
        raise ValueError(f"size {value!r} is not a whole number of bytes")
    return int(n)
