"""repro — Methodology for Performance Evaluation of the I/O System on
Computer Clusters (Méndez, Rexachs, Luque — CLUSTER 2011), reproduced
over a fully simulated cluster substrate.

Quick start::

    from repro import Methodology, aohyper_config, AOHYPER_CONFIGS
    from repro.workloads.apps import BTIOApplication
    from repro.workloads.btio import BTIOConfig

    m = Methodology({n: aohyper_config(n) for n in AOHYPER_CONFIGS})
    m.characterize()
    reports = m.evaluate(BTIOApplication(BTIOConfig(clazz="C", nprocs=16,
                                                    subtype="full")))

Layers (bottom-up): :mod:`repro.simengine` (DES kernel),
:mod:`repro.hardware` (disks/RAID/network/nodes), :mod:`repro.storage`
(page cache, ext4-like FS, NFS, VFS), :mod:`repro.mpi` (simulated MPI
and MPI-IO), :mod:`repro.tracing` (PAS2P-style tracer),
:mod:`repro.workloads` (IOzone/IOR/BT-IO/MADbench2),
:mod:`repro.clusters` (the paper's Aohyper and cluster A), and
:mod:`repro.core` (the methodology itself).
"""

from .clusters import (
    AOHYPER_CONFIGS,
    aohyper_config,
    build_aohyper,
    build_cluster_a,
    build_system,
    cluster_a_config,
    System,
    SystemConfig,
)
from .core import (
    Application,
    AppProfile,
    AppRun,
    characterize_app,
    characterize_system,
    EvaluationReport,
    generate_used_percentage,
    Methodology,
    PerformanceTable,
)
from .simengine import Environment

__version__ = "1.0.0"

__all__ = [
    "AOHYPER_CONFIGS",
    "aohyper_config",
    "build_aohyper",
    "build_cluster_a",
    "build_system",
    "cluster_a_config",
    "System",
    "SystemConfig",
    "Application",
    "AppProfile",
    "AppRun",
    "characterize_app",
    "characterize_system",
    "EvaluationReport",
    "generate_used_percentage",
    "Methodology",
    "PerformanceTable",
    "Environment",
    "__version__",
]
