"""Discrete-event simulation kernel.

Everything in :mod:`repro` runs on this kernel: disks, networks,
filesystems and MPI ranks are *processes* (Python generators) that
yield events to an :class:`Environment`.  The design follows the
classic process-interaction style (as popularised by SimPy) but is
self-contained, deterministic, and tuned for the access patterns this
project needs:

* a binary-heap event calendar keyed on ``(time, priority, seq)`` so
  same-time events fire in schedule order — simulations are exactly
  reproducible run-to-run;
* generator-based processes with ``yield env.timeout(dt)``,
  ``yield other_event`` and combinators :class:`AllOf` / :class:`AnyOf`;
* failure propagation: an event failed with an exception re-raises the
  exception inside every waiting process.

Simulated time is a ``float`` in **seconds**.  Wall-clock time never
enters the simulation.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Wake",
    "Process",
    "FlatOp",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. triggering an event twice)."""


PENDING = object()  #: sentinel value of an untriggered event


class Event:
    """A happening that processes can wait for.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, at which point it is scheduled on
    the calendar and, when processed, runs its callbacks (resuming any
    processes that yielded it).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = 1) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = 1) -> "Event":
        """Trigger the event with an exception.

        Every process waiting on the event will see ``exception`` raised
        at its ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._value is PENDING else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Timeouts are created triggered-and-scheduled; bypassing
        # Event.__init__ and the _schedule_at re-schedule guard saves
        # two attribute round trips on the kernel's most common event.
        self.env = env
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._scheduled = True
        env._push(env._now + delay, 1, self)


class Wake(Event):
    """An event firing at an *absolute* simulated time.

    Unlike ``Timeout(delay)`` the calendar entry is exactly ``at``,
    with no ``now + delay`` float round trip — coalesced resource
    holds use this to land on the same timestamps the quantum-sliced
    path produces (sums of per-quantum additions).
    """

    __slots__ = ()

    def __init__(self, env: "Environment", at: float, value: Any = None):
        if at < env._now:
            raise ValueError(f"wake_at({at!r}) is in the past (now={env._now!r})")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._scheduled = True
        env._push(at, 1, self)


class Initialize(Event):
    """Internal: first resume of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", _defer: bool = False):
        # Like Timeout, created triggered-and-scheduled in one step.
        # ``_defer=True`` builds the event without inserting it; the
        # caller batch-inserts via :meth:`Environment.schedule_many`.
        self.env = env
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self._scheduled = True
        if not _defer:
            env._push(env._now, 0, self)


class Hop(Event):
    """Internal: a pre-triggered bare event with one fixed callback.

    The fast serve paths (:mod:`repro.simengine.resources`,
    :mod:`repro.hardware`) use hops to reproduce, entry for entry, the
    calendar inserts that the generator-based paths make through
    ``Initialize`` / combinator triggering — one heap entry, one
    callback, no generator frame behind it.
    """

    __slots__ = ()

    def __init__(
        self,
        env: "Environment",
        callback: Callable[["Event"], None],
        priority: int = 1,
        _defer: bool = False,
    ):
        self.env = env
        self.callbacks = [callback]
        self._ok = True
        self._value = None
        self._scheduled = True
        if not _defer:
            env._push(env._now, priority, self)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The value of the event is the generator's return value; if the
    generator raises, the process event fails with that exception and
    the exception propagates to any process waiting on it (or crashes
    the simulation if nobody is waiting).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: str = "",
        _defer: bool = False,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        # inlined Event.__init__: processes are created on the serve
        # hot paths, so the extra frame is measurable
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._scheduled = False
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        if not _defer:
            Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active_process = self
        send = self.generator.send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    target = self.generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active_process = None
                if not self._failure_handled(exc):
                    raise
                return

            try:
                callbacks = target.callbacks
            except AttributeError:
                env._active_process = None
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                self.generator.throw(exc)
                raise exc
            if callbacks is not None:
                # Target still pending or scheduled: wait for it.
                callbacks.append(self._resume)
                self._target = target
                env._active_process = None
                return
            # Target already processed: resume immediately with its value.
            event = target

    def _failure_handled(self, exc: BaseException) -> bool:
        """Fail this process event; return True if somebody is waiting."""
        self._ok = False
        self._value = exc
        self.env._schedule(self, priority=1)
        return bool(self.callbacks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class FlatOp:
    """Callback-driven replica of a generator process: the filesystem
    counterpart of :class:`~repro.simengine.resources.FastHold`.

    A generator service path costs a :class:`Process` object, a frame
    and a ``send()`` round trip per event.  A ``FlatOp`` drives the
    same protocol flat: construction pushes a priority-0 :class:`Hop`
    exactly where ``Initialize`` would sit, each ``yield ev`` becomes
    one :meth:`_await` (append one callback, or continue synchronously
    when the target is already processed — mirroring
    ``Process._resume``'s immediate-continue loop), and the terminal
    :meth:`_finish` triggers :attr:`result` at priority 1 exactly where
    ``Process.succeed`` lands.  Since every calendar entry the
    generator path inserts has a counterpart inserted at the same
    moment with the same ``(time, priority)``, sequence numbers match
    and the simulation is bit-identical between the two paths.

    ``yield from`` sub-flows have no calendar footprint of their own;
    their flat counterparts are plain helper objects that call a
    continuation when done and route failures to :meth:`_fail`.

    Subclasses implement ``_start(event)`` (the process's first
    segment) and may override ``_cleanup()`` to mirror a generator's
    ``finally`` block — it runs once if a yielded event fails, before
    the failure propagates to :attr:`result`.
    """

    __slots__ = ("env", "result", "_k")

    def __init__(self, env: "Environment"):
        self.env = env
        self.result = Event(env)
        Hop(env, self._start, priority=0)

    def _start(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _await(self, ev: Event, k: Callable[[Any], None]) -> None:
        """Wait for ``ev``, then call ``k(ev.value)`` — one ``yield``."""
        callbacks = ev.callbacks
        if callbacks is not None:
            self._k = k
            callbacks.append(self._on)
        elif ev._ok:
            # target already processed: continue immediately, exactly
            # like Process._resume's inner loop (no calendar entry)
            k(ev._value)
        else:
            self._fail(ev._value)

    def _on(self, ev: Event) -> None:
        if ev._ok:
            self._k(ev._value)
        else:
            self._fail(ev._value)

    def _cleanup(self) -> None:
        """Failure-path mirror of the generator's ``finally`` block."""

    def _fail(self, exc: BaseException) -> None:
        self._cleanup()
        # a failed Event with no waiters surfaces in step(), like an
        # unhandled process failure
        self.result.fail(exc)

    def _finish(self, value: Any = None) -> None:
        self.result.succeed(value)


def _prune_combinator(self, fired: Event) -> None:
    """Detach a fired combinator from its still-pending children so it
    (and its values) are collectible instead of lingering in their
    callback lists until they eventually fire."""
    cb = self._cb
    for ev in self._events:
        if ev is not fired and ev.callbacks is not None:
            try:
                ev.callbacks.remove(cb)
            except ValueError:
                pass


class AllOf(Event):
    """Fires when *all* given events have fired; value is a list of values.

    Fails fast if any constituent fails.
    """

    __slots__ = ("_events", "_remaining", "_cb")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._remaining = 0
        # intern the bound callback once instead of materialising a new
        # bound method per child append (and per prune removal)
        cb = self._cb = self._on_child
        for ev in self._events:
            if ev.callbacks is None:
                if not ev._ok:
                    # Already failed: mirror the failure immediately.
                    self.fail(ev._value)
                    return
                continue
            self._remaining += 1
            ev.callbacks.append(cb)
        if self._remaining == 0 and self._value is PENDING:
            self.succeed([ev._value for ev in self._events])

    def _on_child(self, ev: Event) -> None:
        if self._value is not PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            self._prune(ev)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])

    _prune = _prune_combinator


class AnyOf(Event):
    """Fires when the *first* of the given events fires; value is that value."""

    __slots__ = ("_events", "_cb")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        done = [ev for ev in self._events if ev.callbacks is None]
        if done:
            first = done[0]
            if first._ok:
                self.succeed(first._value)
            else:
                self.fail(first._value)
            return
        cb = self._cb = self._on_child
        for ev in self._events:
            ev.callbacks.append(cb)

    def _on_child(self, ev: Event) -> None:
        if self._value is not PENDING:
            return
        if ev._ok:
            self.succeed(ev._value)
        else:
            self.fail(ev._value)
        self._prune(ev)

    _prune = _prune_combinator


class Environment:
    """The simulation clock and event calendar."""

    #: active :class:`repro.analysis.sanitizer.SimSanitizer`, if any.
    #: A class-level ``None`` keeps the disabled-mode check on the hot
    #: paths to a single attribute read; an attached sanitizer shadows
    #: it with an instance attribute (and overrides ``step``/``reset``
    #: the same way — ``run`` rebinds ``step`` per call, so the
    #: instance override takes effect).
    sanitizer = None

    #: active :class:`repro.simengine.rng.RngRegistry`, if any — same
    #: class-attribute pattern as ``sanitizer``.  Stochastic model
    #: elements (NFS retransmit jitter under fault injection) draw
    #: from ``env.rng`` streams when one is installed and fall back to
    #: their deterministic default (no jitter) when it is ``None``.
    rng = None

    #: registered creation hooks — each new environment is passed to
    #: every callable here right after ``__init__`` finishes.  Empty in
    #: normal operation (one falsy check on the construction path); the
    #: schedule-race probe registers itself here so that *every*
    #: environment built during a captured run (characterization builds
    #: many) is instrumented from its first calendar insert.
    _init_hooks: list = []

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        if Environment._init_hooks:
            for hook in Environment._init_hooks:
                hook(self)

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        """A fresh pending event; trigger it with ``.succeed()``/``.fail()``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def wake_at(self, at: float, value: Any = None) -> Wake:
        """An event firing at the absolute simulated time ``at``."""
        return Wake(self, at, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name)

    def process_many(self, generators: Iterable[Generator], name: str = "") -> list[Process]:
        """Start a burst of processes; calendar entries insert as one batch.

        Equivalent to ``[env.process(g, name) for g in generators]`` —
        the ``Initialize`` events receive the same consecutive sequence
        numbers, so pop order (and therefore the simulation) is
        bit-identical — but a large burst heapifies once instead of
        sifting per insert (see :meth:`schedule_many`).
        """
        procs = [Process(self, g, name, _defer=True) for g in generators]
        now = self._now
        self.schedule_many(
            [(now, 0, Initialize(self, p, _defer=True)) for p in procs]
        )
        return procs

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _push(self, when: float, priority: int, event: Event) -> None:
        """Insert one calendar entry — the single scheduling funnel.

        Every entry (``Timeout``/``Wake``/``Initialize`` construction,
        ``succeed``/``fail`` triggering, the fast serve paths) lands
        here, so an attached sanitizer can interpose on the instance to
        observe every scheduled event.
        """
        self._seq += 1
        heappush(self._queue, (when, priority, self._seq, event))

    def schedule_many(self, entries: list[tuple[float, int, Event]]) -> None:
        """Batch-insert ``(when, priority, event)`` calendar entries.

        Sequence numbers are assigned in list order — exactly what a
        loop of single inserts would produce, so the heap holds the
        same key set and pops in the same order.  Bursts that are large
        relative to the calendar heapify once (O(n + k)) instead of
        sifting per entry (O(k log n)).  Events must already be
        triggered and marked scheduled (``Timeout``-style construction).
        """
        if "_push" in self.__dict__:
            # instrumented (sanitizer): every entry through the funnel
            for when, priority, event in entries:
                self._push(when, priority, event)
            return
        queue = self._queue
        seq = self._seq
        k = len(entries)
        n = k + len(queue)
        if k > 8 and 2 * n < k * (n.bit_length() - 1):
            for when, priority, event in entries:
                seq += 1
                queue.append((when, priority, seq, event))
            heapify(queue)
        else:
            for when, priority, event in entries:
                seq += 1
                heappush(queue, (when, priority, seq, event))
        self._seq = seq

    def _schedule(self, event: Event, priority: int = 1) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._push(self._now, priority, event)

    def _schedule_at(self, event: Event, when: float, priority: int = 1) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._push(when, priority, event)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the calendar."""
        when, _prio, _seq, event = heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited for: surface the error.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to calendar exhaustion), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it fires; its value is returned).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("cannot run until a time in the past")

        queue = self._queue
        if "step" in self.__dict__:
            # an instance-level override (attached sanitizer) replaces
            # the inlined loop below with the instrumented step
            step = self.step
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if stop_time is not None and queue[0][0] > stop_time:
                    break
                step()
        else:
            # inlined step(): the per-event method call, property reads
            # and heappop lookup add up over O(10^5) events per run
            pop = heappop
            while queue:
                if stop_event is not None:
                    if stop_event.callbacks is None:
                        break
                elif stop_time is not None and queue[0][0] > stop_time:
                    break
                when, _prio, _seq, event = pop(queue)
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not callbacks and not isinstance(event, Process):
                    # A failed event nobody waited for: surface the error.
                    raise event._value

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the calendar before the event fired"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def reset(self, initial_time: float = 0.0) -> None:
        """Return the environment to a fresh state for warm reuse.

        Drops every pending calendar entry and rewinds the clock.  Any
        still-alive processes are simply abandoned (their generators are
        collected); callers are responsible for resetting the mutable
        state of components built on this environment.
        """
        self._now = float(initial_time)
        self._queue.clear()
        self._seq = 0
        self._active_process = None
