"""Discrete-event simulation kernel used by every substrate in repro."""

from .core import AllOf, AnyOf, Environment, Event, Process, SimulationError, Timeout
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "SimulationError",
    "Timeout",
    "Container",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "RngRegistry",
]
