"""Discrete-event simulation kernel used by every substrate in repro."""

from .core import AllOf, AnyOf, Environment, Event, FlatOp, Process, SimulationError, Timeout, Wake
from .resources import Container, PriorityResource, Request, Resource, Store, hold_quantum
from .rng import RngRegistry
from .schedule import Perturber, TieGroupRecorder, capture, minimize_flips

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FlatOp",
    "Process",
    "SimulationError",
    "Timeout",
    "Wake",
    "Container",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "RngRegistry",
    "hold_quantum",
    "Perturber",
    "TieGroupRecorder",
    "capture",
    "minimize_flips",
]
