"""Shared-resource primitives for the DES kernel.

These model the contention points of an I/O system: a disk head, a
network link, an NFS server thread pool.  All are FIFO (or priority
FIFO) and deterministic.

* :class:`Resource` — ``capacity`` slots; processes ``yield res.request()``
  and must release (or use :meth:`Resource.using` inside a process).
* :class:`PriorityResource` — like Resource but requests carry a
  priority (lower value served first).
* :class:`Container` — a lumped continuous quantity (e.g. bytes of
  cache space) with ``put``/``get``.
* :class:`Store` — a FIFO queue of Python objects between processes.
"""

from __future__ import annotations

import os
from typing import Any, Generator, Optional

from . import analytic as _analytic
from .core import Environment, Event, Hop, SimulationError, Timeout, Wake

__all__ = [
    "Request",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "hold_quantum",
    "FastHold",
]

#: escape hatch: set REPRO_NO_FASTPATH=1 to force the classic
#: one-event-per-quantum resource holds (useful when bisecting)
QUANTUM_COALESCE = os.environ.get("REPRO_NO_FASTPATH", "") in ("", "0")

#: escape hatch: set REPRO_NO_FASTHOLD=1 to serve disk/network requests
#: through the classic generator processes instead of the callback
#: state machines (:class:`FastHold`); orthogonal to REPRO_NO_FASTPATH
FAST_HOLD = os.environ.get("REPRO_NO_FASTHOLD", "") in ("", "0")

#: escape hatch: set REPRO_NO_FSFAST=1 to serve filesystem and MPI-IO
#: requests through the classic generator processes instead of the flat
#: :class:`~repro.simengine.core.FlatOp` state machines; orthogonal to
#: the other two hatches
FS_FAST = os.environ.get("REPRO_NO_FSFAST", "") in ("", "0")


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released exactly once via
    :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "_order", "_released", "fh", "t_arrival", "order_key")

    def __init__(self, resource: "Resource", priority: int = 0, order_key=None):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._order += 1
        self._order = resource._order
        self._released = False
        # back-pointer set by FastHold re-acquires; lets the analytic
        # slice rings recognise steady rotation members in the queue
        self.fh = None
        self.t_arrival = resource.env._now
        # semantic tie-break among waiters that arrived at the *same*
        # sim-time: requests carrying a key are ordered by it instead of
        # by incidental insertion order (e.g. the disk head queues by
        # starting offset, like command queueing in a real drive), so
        # grant order — and therefore every downstream timestamp — is
        # invariant under permutations of same-time scheduling order
        self.order_key = order_key


def _tie_rank(req: "Request"):
    """Order among waiters that arrived at the same sim-time.

    Keyed requests sort by their ``order_key`` (then arrival seq);
    keyless requests keep plain arrival order after any keyed ones.
    With no keys in play this reduces exactly to FIFO, so the hot path
    is unchanged — the rank only matters inside a same-time cohort.
    """
    if req.order_key is None:
        return (1, 0, req._order)
    return (0, req.order_key, req._order)


class Resource:
    """A counted resource with FIFO queueing.

    Waiters are FIFO by arrival sim-time; *within* a set of waiters
    that arrived at the same sim-time, requests carrying an
    ``order_key`` are granted in key order rather than incidental
    insertion order (see :meth:`request`).
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._order = 0
        self._arrival_watchers: list[Event] = []
        # synchronous callbacks run at the top of request(), before any
        # state is read — analytic slice rings use these to dissolve
        # exactly when a foreign request is about to observe the
        # resource (empty except while a ring is live)
        self._request_hooks: list = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0, order_key=None) -> Request:
        """Claim a slot; the returned event fires when granted.

        ``order_key`` (optional, orderable) breaks ties among waiters
        that arrive at the same sim-time; see :class:`Request`.
        """
        if self._request_hooks:
            for cb in self._request_hooks[:]:
                cb()
        req = Request(self, priority, order_key)
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(req)
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)
        if self._arrival_watchers:
            watchers, self._arrival_watchers = self._arrival_watchers, []
            for ev in watchers:
                ev.succeed(self)

    # -- arrival notification (coalesced holds) -------------------------
    def watch_arrival(self) -> Event:
        """A pending event fired the next time a request *queues* on
        this resource (i.e. contention appears).  Holders sleeping
        through an uncontended stretch watch this instead of waking
        every quantum."""
        ev = Event(self.env)
        self._arrival_watchers.append(ev)
        return ev

    def unwatch_arrival(self, ev: Event) -> None:
        """Deregister a watcher obtained from :meth:`watch_arrival`."""
        try:
            self._arrival_watchers.remove(ev)
        except ValueError:
            pass

    def reset(self) -> None:
        """Forget all holders, waiters and watchers (warm reuse)."""
        self.users.clear()
        self.queue.clear()
        self._order = 0
        self._arrival_watchers.clear()
        self._request_hooks.clear()

    def release(self, req: Request) -> None:
        """Give the slot back and wake the next waiter.

        Misuse — releasing twice, or releasing a queued request that
        was never granted — silently corrupts the slot count, so it is
        always an error; under sanitize mode the active sanitizer
        additionally records it as a violation.
        """
        try:
            self.users.remove(req)
        except ValueError:
            if req._released:
                msg = f"double release of a request on {self.name or type(self).__name__!r}"
            elif req in self.queue:
                msg = (
                    f"releasing a queued request on "
                    f"{self.name or type(self).__name__!r} that was never granted"
                )
            else:
                msg = "releasing a request that is not held"
            san = self.env.sanitizer
            if san is not None:
                san.resource_misuse(msg)
            raise SimulationError(msg) from None
        req._released = True
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self._pop_next()
            self.users.append(nxt)
            nxt.succeed(nxt)

    def _pop_next(self) -> Request:
        queue = self.queue
        if len(queue) > 1 and queue[1].t_arrival == queue[0].t_arrival:
            t0 = queue[0].t_arrival
            best = 0
            best_rank = _tie_rank(queue[0])
            for i in range(1, len(queue)):
                req = queue[i]
                if req.t_arrival != t0:
                    break
                rank = _tie_rank(req)
                if rank < best_rank:
                    best, best_rank = i, rank
            return queue.pop(best)
        return queue.pop(0)

    def using(self, hold: float, priority: int = 0) -> Generator:
        """Generator helper: acquire, hold for ``hold`` seconds, release.

        Usage inside a process::

            yield from resource.using(0.01)
        """
        req = self.request(priority)
        yield req
        try:
            yield self.env.timeout(hold)
        finally:
            self.release(req)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.name!r} {len(self.users)}/{self.capacity}"
            f" queued={len(self.queue)}>"
        )


# plain FIFO resources are the only ring-eligible kind; the analytic
# module checks exact type identity without importing this module
_analytic._RESOURCE_CLS = Resource
_analytic._REQUEST_CLS = Request


class PriorityResource(Resource):
    """Resource whose queue is ordered by (priority, arrival order)."""

    def _pop_next(self) -> Request:
        queue = self.queue
        best = min(
            range(len(queue)),
            key=lambda i: (queue[i].priority, queue[i].t_arrival) + _tie_rank(queue[i]),
        )
        return queue.pop(best)


def hold_quantum(
    env: Environment,
    resources: list[Resource],
    reqs: list[Request],
    total: float,
    quantum: float,
    priority: int = 0,
    order_key=None,
) -> Generator:
    """Hold granted slots for ``total`` seconds, yielding to competitors
    at ``quantum`` boundaries.

    Semantically this is the classic fairness loop — sleep one quantum,
    then release/re-acquire whenever somebody is queued — but
    uncontended stretches are covered by a *single* calendar entry
    instead of one event per quantum: the holder sleeps on
    ``AnyOf(wake-at-completion, arrival-watcher)`` and, if contention
    appears mid-sleep, rejoins the quantum grid at the first boundary
    after the arrival.  Boundary times replay the per-quantum float
    additions, so resulting timestamps are identical to the sliced
    path.

    ``reqs`` is mutated in place as slots are released/re-acquired, so
    a caller's ``finally`` block always releases the current requests.
    Multiple resources (e.g. a sender's uplink plus a receiver's
    downlink) release in reverse list order and re-acquire in list
    order.  Use as ``yield from hold_quantum(...)`` inside a process.
    """
    remaining = total
    while remaining > 0:
        if remaining <= quantum:
            yield env.timeout(remaining)
            return
        if any(r.queue for r in resources) or not QUANTUM_COALESCE:
            yield env.timeout(quantum)
            remaining -= quantum
        else:
            # Replay the per-quantum addition chain to the exact time
            # the sliced loop would finish, then sleep there in one go.
            start = env.now
            end = start
            rem = remaining
            while rem > 0:
                step = rem if rem < quantum else quantum
                end += step
                rem -= step
            watchers = [r.watch_arrival() for r in resources]
            wake = env.wake_at(end)
            yield env.any_of([wake] + watchers)
            for r, w in zip(resources, watchers):
                r.unwatch_arrival(w)
            if wake.callbacks is None:  # processed: hold ran to completion
                return
            # Contention arrived mid-sleep: rejoin the quantum grid at
            # the first boundary after the arrival.
            t_arr = env.now
            b = start
            rem = remaining
            while rem > 0 and b <= t_arr:
                step = rem if rem < quantum else quantum
                b += step
                rem -= step
            remaining = rem
            yield env.wake_at(b)
        if remaining > 0 and any(r.queue for r in resources):
            for i in range(len(resources) - 1, -1, -1):
                resources[i].release(reqs[i])
            for i, r in enumerate(resources):
                # the re-acquired request replaces reqs[i] in place, so
                # the *caller's* try/finally releases it — guaranteed
                # release lives one frame up
                req = r.request(priority, order_key)  # simlint: ignore[resource-release]
                yield req
                reqs[i] = req


class FastHold:
    """Callback-driven replica of ``request → hold_quantum → release``.

    The generator serve paths (``Disk._serve``, ``Link._send``,
    ``Network._route``) spend most of their cost on kernel plumbing: a
    :class:`~repro.simengine.core.Process` object, a generator frame,
    and a ``send()`` round trip per event.  This class drives the same
    protocol as a flat state machine — each ``yield`` of the generator
    corresponds to one bound-method callback here.

    **Bit-identity invariant**: every calendar entry the generator path
    inserts has a counterpart inserted *at the same moment* with the
    same ``(time, priority)`` — construction pushes a priority-0
    :class:`~repro.simengine.core.Hop` exactly where ``Initialize``
    would sit; the request grant, quantum boundaries, coalesced-sleep
    combinator resume and completion each consume one sequence number
    exactly where the slow path consumes one.  Since sequence numbers
    are assigned in the same order, the heap holds identical keys and
    the simulation is bit-identical between the two paths (the kernel
    determinism suite byte-compares the resulting tables).

    Subclasses implement:

    * ``_start(event)`` — runs where the process's first segment would
      (priority-0 hop); usually ends in :meth:`_acquire`;
    * ``_granted()`` — runs at the grant of the last resource; must
      compute the hold time, apply the accounting the generator path
      applies there, and call :meth:`_begin_hold`;
    * ``_done()`` — runs after all resources are released at
      completion; typically triggers the result event.
    """

    __slots__ = (
        "env",
        "resources",
        "reqs",
        "priority",
        "quantum",
        "remaining",
        "result",
        "_hold_start",
        "_wake",
        "_watchers",
        "_acq_i",
        "order_key",
    )

    def __init__(self, env: Environment, resources: list[Resource], priority: int, order_key=None):
        self.env = env
        self.resources = resources
        self.priority = priority
        self.order_key = order_key
        self.reqs: list[Request] = []
        self.result = Event(env)
        self._wake = None
        self._hold_start = -1.0
        # where the generator path creates Initialize(env, process)
        Hop(env, self._start, priority=0)

    # -- subclass hooks --------------------------------------------------
    def _start(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _granted(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _done(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- acquisition -----------------------------------------------------
    def _acquire(self) -> None:
        """Acquire ``resources`` in list order, one grant at a time —
        the fixed-order chain of ``yield req`` in the generator paths."""
        self._acq_i = 0
        self.reqs = []
        self._acquire_next()

    def _acquire_next(self) -> None:
        i = self._acq_i
        resources = self.resources
        if i == len(resources):
            self._granted()
            return
        req = resources[i].request(self.priority, self.order_key)  # simlint: ignore[resource-release]
        self.reqs.append(req)
        req.callbacks.append(self._on_grant)

    def _on_grant(self, req: Event) -> None:
        self._acq_i += 1
        self._acquire_next()

    # -- the hold loop (mirrors hold_quantum statement for statement) ----
    def _begin_hold(self, total: float, quantum: float) -> None:
        self.remaining = total
        self.quantum = quantum
        self._hold_step()

    def _hold_step(self) -> None:
        env = self.env
        remaining = self.remaining
        if remaining <= 0:
            self._release_and_done()
            return
        quantum = self.quantum
        if remaining <= quantum:
            Timeout(env, remaining).callbacks.append(self._final_sleep_done)
            return
        resources = self.resources
        contended = False
        for r in resources:
            if r.queue:
                contended = True
                break
        if contended or not QUANTUM_COALESCE:
            if contended and _analytic.ANALYTIC and _analytic.try_adopt(self, remaining):
                return
            self.remaining = remaining - quantum
            # record the in-flight slice so a late ring adoption (see
            # analytic.try_adopt_late) can identify and defuse it; the
            # coalesced branch below reuses the same slots
            self._hold_start = env._now
            wake = self._wake = Timeout(env, quantum)
            wake.callbacks.append(self._after_sleep)
            return
        # Replay the per-quantum addition chain to the exact time the
        # sliced loop would finish, then sleep there in one go.
        start = env._now
        end = start
        rem = remaining
        while rem > 0:
            step = rem if rem < quantum else quantum
            end += step
            rem -= step
        self._hold_start = start
        watchers = self._watchers = [r.watch_arrival() for r in resources]
        wake = self._wake = Wake(env, end)
        cb = self._coalesce_fired
        wake.callbacks.append(cb)
        for w in watchers:
            w.callbacks.append(cb)

    def _coalesce_fired(self, ev: Event) -> None:
        # mirror of AnyOf._on_child: schedule the resume (one priority-1
        # entry, where AnyOf.succeed would insert itself), then prune
        # the shared callback from the other chained events
        Hop(self.env, self._after_coalesce)
        cb = self._coalesce_fired
        wake = self._wake
        if wake is not ev and wake.callbacks is not None:
            try:
                wake.callbacks.remove(cb)
            except ValueError:
                pass
        for w in self._watchers:
            if w is not ev and w.callbacks is not None:
                try:
                    w.callbacks.remove(cb)
                except ValueError:
                    pass

    def _after_coalesce(self, hop: Event) -> None:
        env = self.env
        wake = self._wake
        for r, w in zip(self.resources, self._watchers):
            r.unwatch_arrival(w)
        self._watchers = None
        self._wake = None
        if wake.callbacks is None:  # processed: hold ran to completion
            self._release_and_done()
            return
        # Contention arrived mid-sleep: rejoin the quantum grid at the
        # first boundary after the arrival.
        t_arr = env._now
        quantum = self.quantum
        b = self._hold_start
        rem = self.remaining
        while rem > 0 and b <= t_arr:
            step = rem if rem < quantum else quantum
            b += step
            rem -= step
        self.remaining = rem
        Wake(env, b).callbacks.append(self._after_sleep)

    def _after_sleep(self, ev: Event) -> None:
        # hold_quantum loop bottom: yield slots to queued competitors
        if self.remaining > 0:
            resources = self.resources
            for r in resources:
                if r.queue:
                    reqs = self.reqs
                    for i in range(len(resources) - 1, -1, -1):
                        resources[i].release(reqs[i])
                    self._acq_i = 0
                    self._reacquire_next()
                    return
        self._hold_step()

    def _reacquire_next(self) -> None:
        i = self._acq_i
        resources = self.resources
        if i == len(resources):
            self._hold_step()
            return
        req = resources[i].request(self.priority, self.order_key)  # simlint: ignore[resource-release]
        req.fh = self
        self.reqs[i] = req
        req.callbacks.append(self._on_regrant)
        if not req.triggered and _analytic.ANALYTIC:
            # a stalled re-acquire is the last deferred hop of a
            # rotation boundary — the first instant a two-level steady
            # window is fully observable (the new holder's _hold_step
            # ran one grant-callback too early to see this queue entry)
            _analytic.try_adopt_late(resources[i])

    def _on_regrant(self, req: Event) -> None:
        self._acq_i += 1
        self._reacquire_next()

    def _final_sleep_done(self, ev: Event) -> None:
        self._release_and_done()

    def _release_and_done(self) -> None:
        # the callers' ``finally``: release in reverse list order,
        # guarded against a slot already gone (teardown mid-hold)
        resources = self.resources
        reqs = self.reqs
        for i in range(len(resources) - 1, -1, -1):
            if reqs[i] in resources[i].users:
                resources[i].release(reqs[i])
        self._done()


class Container:
    """A continuous quantity with blocking ``get`` and capacity-bounded ``put``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (pending event) while it would overflow."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A FIFO object queue with blocking ``get`` and optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed(item)
        while self._getters and self.items:
            ev = self._getters.pop(0)
            ev.succeed(self.items.pop(0))
        # putters may have been unblocked by the getters draining items
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed(item)
            while self._getters and self.items:
                g = self._getters.pop(0)
                g.succeed(self.items.pop(0))

    def __len__(self) -> int:
        return len(self.items)
