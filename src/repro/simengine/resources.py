"""Shared-resource primitives for the DES kernel.

These model the contention points of an I/O system: a disk head, a
network link, an NFS server thread pool.  All are FIFO (or priority
FIFO) and deterministic.

* :class:`Resource` — ``capacity`` slots; processes ``yield res.request()``
  and must release (or use :meth:`Resource.using` inside a process).
* :class:`PriorityResource` — like Resource but requests carry a
  priority (lower value served first).
* :class:`Container` — a lumped continuous quantity (e.g. bytes of
  cache space) with ``put``/``get``.
* :class:`Store` — a FIFO queue of Python objects between processes.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Request", "Resource", "PriorityResource", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released exactly once via
    :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._order += 1
        self._order = resource._order


class Resource:
    """A counted resource with FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._order = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(req)
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)

    def release(self, req: Request) -> None:
        """Give the slot back and wake the next waiter."""
        try:
            self.users.remove(req)
        except ValueError:
            raise SimulationError("releasing a request that is not held") from None
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self._pop_next()
            self.users.append(nxt)
            nxt.succeed(nxt)

    def _pop_next(self) -> Request:
        return self.queue.pop(0)

    def using(self, hold: float, priority: int = 0) -> Generator:
        """Generator helper: acquire, hold for ``hold`` seconds, release.

        Usage inside a process::

            yield from resource.using(0.01)
        """
        req = self.request(priority)
        yield req
        try:
            yield self.env.timeout(hold)
        finally:
            self.release(req)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.name!r} {len(self.users)}/{self.capacity}"
            f" queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """Resource whose queue is ordered by (priority, arrival order)."""

    def _pop_next(self) -> Request:
        best = min(range(len(self.queue)), key=lambda i: (self.queue[i].priority, self.queue[i]._order))
        return self.queue.pop(best)


class Container:
    """A continuous quantity with blocking ``get`` and capacity-bounded ``put``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (pending event) while it would overflow."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A FIFO object queue with blocking ``get`` and optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed(item)
        while self._getters and self.items:
            ev = self._getters.pop(0)
            ev.succeed(self.items.pop(0))
        # putters may have been unblocked by the getters draining items
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed(item)
            while self._getters and self.items:
                g = self._getters.pop(0)
                g.succeed(self.items.pop(0))

    def __len__(self) -> int:
        return len(self.items)
