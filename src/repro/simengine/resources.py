"""Shared-resource primitives for the DES kernel.

These model the contention points of an I/O system: a disk head, a
network link, an NFS server thread pool.  All are FIFO (or priority
FIFO) and deterministic.

* :class:`Resource` — ``capacity`` slots; processes ``yield res.request()``
  and must release (or use :meth:`Resource.using` inside a process).
* :class:`PriorityResource` — like Resource but requests carry a
  priority (lower value served first).
* :class:`Container` — a lumped continuous quantity (e.g. bytes of
  cache space) with ``put``/``get``.
* :class:`Store` — a FIFO queue of Python objects between processes.
"""

from __future__ import annotations

import os
from typing import Any, Generator, Optional

from .core import Environment, Event, SimulationError

__all__ = [
    "Request",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "hold_quantum",
]

#: escape hatch: set REPRO_NO_FASTPATH=1 to force the classic
#: one-event-per-quantum resource holds (useful when bisecting)
QUANTUM_COALESCE = os.environ.get("REPRO_NO_FASTPATH", "") in ("", "0")


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released exactly once via
    :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "_order", "_released")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._order += 1
        self._order = resource._order
        self._released = False


class Resource:
    """A counted resource with FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._order = 0
        self._arrival_watchers: list[Event] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(req)
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)
        if self._arrival_watchers:
            watchers, self._arrival_watchers = self._arrival_watchers, []
            for ev in watchers:
                ev.succeed(self)

    # -- arrival notification (coalesced holds) -------------------------
    def watch_arrival(self) -> Event:
        """A pending event fired the next time a request *queues* on
        this resource (i.e. contention appears).  Holders sleeping
        through an uncontended stretch watch this instead of waking
        every quantum."""
        ev = Event(self.env)
        self._arrival_watchers.append(ev)
        return ev

    def unwatch_arrival(self, ev: Event) -> None:
        """Deregister a watcher obtained from :meth:`watch_arrival`."""
        try:
            self._arrival_watchers.remove(ev)
        except ValueError:
            pass

    def reset(self) -> None:
        """Forget all holders, waiters and watchers (warm reuse)."""
        self.users.clear()
        self.queue.clear()
        self._order = 0
        self._arrival_watchers.clear()

    def release(self, req: Request) -> None:
        """Give the slot back and wake the next waiter.

        Misuse — releasing twice, or releasing a queued request that
        was never granted — silently corrupts the slot count, so it is
        always an error; under sanitize mode the active sanitizer
        additionally records it as a violation.
        """
        try:
            self.users.remove(req)
        except ValueError:
            if req._released:
                msg = f"double release of a request on {self.name or type(self).__name__!r}"
            elif req in self.queue:
                msg = (
                    f"releasing a queued request on "
                    f"{self.name or type(self).__name__!r} that was never granted"
                )
            else:
                msg = "releasing a request that is not held"
            san = self.env.sanitizer
            if san is not None:
                san.resource_misuse(msg)
            raise SimulationError(msg) from None
        req._released = True
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self._pop_next()
            self.users.append(nxt)
            nxt.succeed(nxt)

    def _pop_next(self) -> Request:
        return self.queue.pop(0)

    def using(self, hold: float, priority: int = 0) -> Generator:
        """Generator helper: acquire, hold for ``hold`` seconds, release.

        Usage inside a process::

            yield from resource.using(0.01)
        """
        req = self.request(priority)
        yield req
        try:
            yield self.env.timeout(hold)
        finally:
            self.release(req)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.name!r} {len(self.users)}/{self.capacity}"
            f" queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """Resource whose queue is ordered by (priority, arrival order)."""

    def _pop_next(self) -> Request:
        best = min(range(len(self.queue)), key=lambda i: (self.queue[i].priority, self.queue[i]._order))
        return self.queue.pop(best)


def hold_quantum(
    env: Environment,
    resources: list[Resource],
    reqs: list[Request],
    total: float,
    quantum: float,
    priority: int = 0,
) -> Generator:
    """Hold granted slots for ``total`` seconds, yielding to competitors
    at ``quantum`` boundaries.

    Semantically this is the classic fairness loop — sleep one quantum,
    then release/re-acquire whenever somebody is queued — but
    uncontended stretches are covered by a *single* calendar entry
    instead of one event per quantum: the holder sleeps on
    ``AnyOf(wake-at-completion, arrival-watcher)`` and, if contention
    appears mid-sleep, rejoins the quantum grid at the first boundary
    after the arrival.  Boundary times replay the per-quantum float
    additions, so resulting timestamps are identical to the sliced
    path.

    ``reqs`` is mutated in place as slots are released/re-acquired, so
    a caller's ``finally`` block always releases the current requests.
    Multiple resources (e.g. a sender's uplink plus a receiver's
    downlink) release in reverse list order and re-acquire in list
    order.  Use as ``yield from hold_quantum(...)`` inside a process.
    """
    remaining = total
    while remaining > 0:
        if remaining <= quantum:
            yield env.timeout(remaining)
            return
        if any(r.queue for r in resources) or not QUANTUM_COALESCE:
            yield env.timeout(quantum)
            remaining -= quantum
        else:
            # Replay the per-quantum addition chain to the exact time
            # the sliced loop would finish, then sleep there in one go.
            start = env.now
            end = start
            rem = remaining
            while rem > 0:
                step = rem if rem < quantum else quantum
                end += step
                rem -= step
            watchers = [r.watch_arrival() for r in resources]
            wake = env.wake_at(end)
            yield env.any_of([wake] + watchers)
            for r, w in zip(resources, watchers):
                r.unwatch_arrival(w)
            if wake.callbacks is None:  # processed: hold ran to completion
                return
            # Contention arrived mid-sleep: rejoin the quantum grid at
            # the first boundary after the arrival.
            t_arr = env.now
            b = start
            rem = remaining
            while rem > 0 and b <= t_arr:
                step = rem if rem < quantum else quantum
                b += step
                rem -= step
            remaining = rem
            yield env.wake_at(b)
        if remaining > 0 and any(r.queue for r in resources):
            for i in range(len(resources) - 1, -1, -1):
                resources[i].release(reqs[i])
            for i, r in enumerate(resources):
                # the re-acquired request replaces reqs[i] in place, so
                # the *caller's* try/finally releases it — guaranteed
                # release lives one frame up
                req = r.request(priority)  # simlint: ignore[resource-release]
                yield req
                reqs[i] = req


class Container:
    """A continuous quantity with blocking ``get`` and capacity-bounded ``put``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (pending event) while it would overflow."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A FIFO object queue with blocking ``get`` and optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed(item)
        while self._getters and self.items:
            ev = self._getters.pop(0)
            ev.succeed(self.items.pop(0))
        # putters may have been unblocked by the getters draining items
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed(item)
            while self._getters and self.items:
                g = self._getters.pop(0)
                g.succeed(self.items.pop(0))

    def __len__(self) -> int:
        return len(self.items)
