"""Kernel microbenchmarks: raw event throughput of the DES core.

Synthetic scenarios exercising the calendar and resource machinery in
isolation — no cluster model, no filesystems — so a regression in the
kernel hot path (heap handling, event dispatch, the FastHold rotation,
analytic ring adoption) shows up directly as events/second instead of
being diluted by model code.  ``repro perf`` runs these and emits the
results as ``BENCH_kernel.json`` for ``scripts/perf_guard.py`` to gate.

Scenario mix:

* ``timeout_chain`` — one callback re-arming a ``Timeout`` back to
  back: pure calendar push/pop/dispatch cost.
* ``request_release`` — tight acquire/release cycles on a contended
  FIFO :class:`Resource`: grant/queue bookkeeping.
* ``contended_rotation`` — several ``FastHold`` holders time-slicing
  one capacity-1 resource: the quantum round-robin that dominates
  contended cluster runs (and the adoption surface of the analytic
  slice rings when ``REPRO_ANALYTIC=1``).
* ``uncontended_hold`` — many holders each alone on a private
  resource: the coalesced-wake path (one entry per hold instead of
  one per quantum).
* ``coupled_rotation`` — holders split over two capacity-1 uplinks
  all contending for one shared pivot: the two-level rotation the
  coupled analytic rings collapse (``REPRO_ANALYTIC=1``).
* ``fs_serve`` — a stream of cached reads/writes through a real
  :class:`~repro.storage.localfs.LocalFS`: the flat filesystem
  state machines (the one scenario that touches model code, because
  the fs fast path is what it gates).

Each scenario reports wall seconds, simulated events (calendar entries
consumed, from the environment's sequence counter) and events/second.
"""

from __future__ import annotations

import time
from typing import Any

from .core import Environment, Event, Timeout
from .resources import FastHold, Resource

__all__ = ["kernel_microbench"]


class _BenchHold(FastHold):
    """Minimal concrete FastHold: hold ``total`` seconds in quanta."""

    __slots__ = ("total", "_q")

    def __init__(self, env, resources, total, quantum, priority=0):
        self.total = total
        self._q = quantum
        super().__init__(env, resources, priority)

    def _start(self, event: Event) -> None:
        self._acquire()

    def _granted(self) -> None:
        self._begin_hold(self.total, self._q)

    def _done(self) -> None:
        self.result.succeed(None)


def _timeout_chain(n: int) -> Environment:
    env = Environment()
    state = {"left": n}

    def rearm(ev: Event) -> None:
        if state["left"] > 0:
            # single self-rearming chain: no concurrent writer exists
            state["left"] -= 1  # simlint: ignore[tie-order-rmw]
            Timeout(env, 0.001).callbacks.append(rearm)

    Timeout(env, 0.001).callbacks.append(rearm)
    return env

def _request_release(cycles: int, waiters: int) -> Environment:
    env = Environment()
    res = Resource(env, capacity=1)
    state = {"left": cycles}

    def granted(req: Event) -> None:
        if state["left"] > 0:
            # benchmark driver: all waiters are interchangeable, so the
            # grant order cannot change what is measured
            state["left"] -= 1  # simlint: ignore[tie-order-rmw]
            # callback-driven churn: every granted request is released on
            # the next grant of the chain, ending with the cycle budget
            nxt = res.request()  # simlint: ignore[resource-release]
            if nxt.callbacks is not None:
                nxt.callbacks.append(granted)
            res.release(req)

    for _ in range(waiters):
        req = res.request()  # simlint: ignore[resource-release]
        req.callbacks.append(granted)
    return env


def _contended_rotation(holders: int, rounds: int) -> Environment:
    env = Environment()
    res = Resource(env, capacity=1)
    for _ in range(holders):
        # each hold spans ``rounds`` quanta of 20 ms
        _BenchHold(env, [res], rounds * 0.020 + 0.013, 0.020)
    return env


def _uncontended_hold(holders: int, rounds: int) -> Environment:
    env = Environment()
    for _ in range(holders):
        res = Resource(env, capacity=1)
        _BenchHold(env, [res], rounds * 0.020 + 0.013, 0.020)
    return env


def _coupled_rotation(holders: int, rounds: int, uplinks: int = 2) -> Environment:
    env = Environment()
    pivot = Resource(env, capacity=1)
    ups = [Resource(env, capacity=1) for _ in range(uplinks)]
    for i in range(holders):
        # stagger the starts so the window forms mid-rotation, like a
        # real client fan-in, instead of all holders arriving at t=0
        def go(ev, up=ups[i % uplinks], k=i):
            _BenchHold(env, [up, pivot], rounds * 0.020 + 0.013 * (k + 1), 0.020)

        if i == 0:
            go(None)
        else:
            Timeout(env, 0.001 * i).callbacks.append(go)
    return env


def _fs_serve(ops: int) -> Environment:
    # imported here, not at module top: the kernel package must stay
    # importable without the model layers, and every other scenario is
    # pure-kernel — only the fs fast-path gate needs a real filesystem
    from ..hardware import Node, NodeSpec, RAIDArray, RAIDConfig, RAIDLevel
    from ..hardware.disk import DiskSpec
    from ..storage.base import IORequest, KiB, MiB
    from ..storage.cache import CacheSpec
    from ..storage.localfs import LocalFS

    env = Environment()
    node = Node(env, "bench", NodeSpec(ram_bytes=64 * MiB))
    arr = RAIDArray(
        env,
        RAIDConfig(
            level=RAIDLevel.JBOD, ndisks=1, disk=DiskSpec(capacity_bytes=4096 * MiB)
        ),
    )
    fs = LocalFS(env, node, arr, cache_spec=CacheSpec(capacity_bytes=32 * MiB))
    state = {"inode": None, "i": 0}

    def step(_ev=None):
        i = state["i"]
        if i >= ops:
            return
        state["i"] = i + 1
        op = "write" if i % 2 == 0 else "read"
        offset = (i % 16) * MiB
        ev = fs.submit(state["inode"], IORequest(op, offset, 256 * KiB, count=4))
        ev.callbacks.append(step)

    def created(ev):
        state["inode"] = ev.value
        step()

    fs.create("/bench").callbacks.append(created)
    return env


#: scenario name -> zero-arg environment builder (sizes tuned so the
#: whole suite stays around a second on a laptop-class core)
_SCENARIOS = {
    "timeout_chain": lambda: _timeout_chain(150_000),
    "request_release": lambda: _request_release(60_000, 4),
    "contended_rotation": lambda: _contended_rotation(8, 2_500),
    "uncontended_hold": lambda: _uncontended_hold(64, 400),
    "coupled_rotation": lambda: _coupled_rotation(8, 1_200),
    "fs_serve": lambda: _fs_serve(4_000),
}


def kernel_microbench(repeats: int = 3) -> dict[str, Any]:
    """Run every scenario ``repeats`` times; keep the best wall time.

    Returns a JSON-safe dict: per-scenario ``{wall_s, events,
    events_per_s}`` plus aggregate ``events_per_s`` over the mix.
    """
    out: dict[str, Any] = {"scenarios": {}, "repeats": repeats}
    total_events = 0
    total_wall = 0.0
    for name, build in _SCENARIOS.items():
        best = None
        events = 0
        for _ in range(repeats):
            env = build()
            # measuring host wall time is the whole point of the
            # microbenchmark — it never runs inside a simulation
            t0 = time.perf_counter()  # simlint: ignore[wall-clock]
            env.run()
            wall = time.perf_counter() - t0  # simlint: ignore[wall-clock]
            if best is None or wall < best:
                best = wall
                events = env._seq
        rate = events / best if best > 0 else float("inf")
        out["scenarios"][name] = {
            "wall_s": round(best, 4),
            "events": events,
            "events_per_s": round(rate),
        }
        total_events += events
        total_wall += best
    out["events"] = total_events
    out["wall_s"] = round(total_wall, 4)
    out["events_per_s"] = round(total_events / total_wall) if total_wall > 0 else None
    return out
