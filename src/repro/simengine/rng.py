"""Deterministic random-number streams for simulations.

Every stochastic element of a simulation (disk seek jitter, workload
randomisation, ...) draws from a named substream derived from a single
root seed, so that adding a new consumer never perturbs the draws seen
by existing ones and runs are exactly reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, name-keyed ``numpy`` generators.

    >>> rng = RngRegistry(seed=42)
    >>> a = rng.stream("disk.0")
    >>> b = rng.stream("disk.1")
    >>> a is rng.stream("disk.0")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable 32-bit hash of the name, independent of PYTHONHASHSEED.
            sub = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, sub]))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(seed=zlib.crc32(name.encode("utf-8")) ^ self.seed)
