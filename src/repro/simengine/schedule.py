"""Schedule perturbation probes: find order-sensitive tie-breaks.

The calendar orders events by ``(when, priority, seq)``; ``seq`` is the
insertion counter, so events scheduled for the same instant at the same
priority fire in *push order*.  That order is an implementation
accident, not a modelled quantity — correct simulation results must not
depend on it.  This module makes the accident adjustable so the race
detector (:mod:`repro.analysis.simrace`) can prove, run by run, that
results are invariant under every admissible tie-break order:

* :class:`TieGroupRecorder` — interposes ``Environment._push`` and
  ``step`` on every environment created while attached, recording for
  each ``(env, when, priority)`` key which *pop execution* pushed each
  entry.  Keys fed from two or more distinct executions are **tie
  groups**: their blocks are genuinely concurrent (no program order
  relates them) and may legally fire in any block order.
* :class:`Perturber` — replays a run with chosen block orders by
  rewriting the heap tie-break from ``seq`` to ``(rank, seq)``.
  Pushes from one execution keep their relative (program) order;
  only inter-block order changes, which is exactly the freedom a
  conforming scheduler has.
* :class:`PopRecorder` — captures the pop stream of a run so two runs
  can be diffed down to the first divergent event.
* :func:`capture` — installs any of the above on every
  :class:`~repro.simengine.core.Environment` built inside the ``with``
  block, via ``Environment._init_hooks``.

Plans are deterministic: reversal needs no randomness and shuffles draw
from a named :class:`~repro.simengine.rng.RngRegistry` stream, so a
divergence found under ``seed=7`` is reproducible forever.
"""

from __future__ import annotations

import contextlib
import heapq
from typing import Any, Callable, Iterable, Iterator, Optional

from .core import Environment
from .rng import RngRegistry

__all__ = [
    "TieGroupRecorder",
    "Perturber",
    "PopRecorder",
    "capture",
    "block_plan",
    "reverse_plans",
    "shuffle_plans",
    "minimize_flips",
]

#: a tie-group key: (environment index, event time, priority)
Key = tuple[int, float, int]


class TieGroupRecorder:
    """Records, per ``(env, when, priority)`` key, the pushing execution
    id of every calendar insert.

    An *execution* is one event pop plus the callback cascade it runs;
    all pushes it performs are program-ordered and form one *block*.
    A key whose pushes came from two or more executions is a tie group:
    the kernel broke the tie by insertion order, but no causal order
    exists between the blocks.
    """

    def __init__(self) -> None:
        #: key -> execution id of each push, in push order
        self.execs: dict[Key, list[int]] = {}
        self._env_idx = -1

    def attach(self, env: Environment) -> None:
        self._env_idx += 1
        idx = self._env_idx
        execs = self.execs
        # executions count from 1; id 0 is "before the first pop"
        # (process start-up scheduling done outside any event callback)
        state = {"exec": 0}

        def push(when: float, priority: int, event: Any, _env: Environment = env) -> None:
            key = (idx, when, priority)
            lst = execs.get(key)
            if lst is None:
                execs[key] = [state["exec"]]
            else:
                lst.append(state["exec"])
            _env._seq += 1
            heapq.heappush(_env._queue, (when, priority, _env._seq, event))

        def step(_env: Environment = env) -> None:
            state["exec"] += 1
            Environment.step(_env)

        env._push = push  # type: ignore[method-assign]
        env.step = step  # type: ignore[method-assign]

    def groups(self) -> dict[Key, list[int]]:
        """The tie groups: keys pushed from >= 2 distinct executions."""
        out: dict[Key, list[int]] = {}
        for key, eids in self.execs.items():
            if len(eids) >= 2 and len(set(eids)) >= 2:
                out[key] = eids
        return out


def block_plan(eids: list[int], block_perm: Iterable[int]) -> tuple[int, ...]:
    """An occurrence->rank plan from a permutation of block indices.

    ``eids`` is a key's push-ordered execution-id list; blocks are the
    distinct ids in first-seen order.  The returned tuple maps the i-th
    push to its rank under the new order: blocks laid out in
    ``block_perm`` order, pushes inside a block keeping their relative
    (program) order.
    """
    order: list[int] = []
    seen: dict[int, int] = {}
    for e in eids:
        if e not in seen:
            seen[e] = len(order)
            order.append(e)
    by_block: dict[int, list[int]] = {b: [] for b in range(len(order))}
    for i, e in enumerate(eids):
        by_block[seen[e]].append(i)
    rank = [0] * len(eids)
    pos = 0
    for b in block_perm:
        for i in by_block[b]:
            rank[i] = pos
            pos += 1
    return tuple(rank)


def reverse_plans(groups: dict[Key, list[int]]) -> dict[Key, tuple[int, ...]]:
    """Plans firing every tie group's blocks in reverse push order —
    the single most adversarial deterministic perturbation."""
    plans = {}
    for key, eids in groups.items():
        nb = len(set(eids))
        plans[key] = block_plan(eids, range(nb - 1, -1, -1))
    return plans


def shuffle_plans(groups: dict[Key, list[int]], seed: int) -> dict[Key, tuple[int, ...]]:
    """Plans permuting every group's blocks by a seeded draw.

    Draws come from one :class:`RngRegistry` stream keyed by the seed,
    iterating groups in sorted key order, so a plan is a pure function
    of ``(groups, seed)`` and any divergence it exposes replays."""
    rng = RngRegistry(seed=seed).stream("simrace.perturb")
    plans = {}
    for key in sorted(groups):
        eids = groups[key]
        nb = len(set(eids))
        perm = rng.permutation(nb)
        plans[key] = block_plan(eids, (int(b) for b in perm))
    return plans


class Perturber:
    """Replays a run under chosen tie-break plans.

    For each ``(env, when, priority)`` key with a plan, the i-th push
    gets heap tie-break ``(plan[i], seq)`` instead of ``seq``; pushes
    beyond the recorded length, and keys with no plan, keep their
    arrival rank (identity).  Every entry pushed while attached gets a
    tuple tie-break so heap comparisons stay type-consistent.
    """

    def __init__(self, plans: dict[Key, tuple[int, ...]]):
        self.plans = plans
        self._counts: dict[Key, int] = {}
        self._env_idx = -1

    def attach(self, env: Environment) -> None:
        self._env_idx += 1
        idx = self._env_idx
        counts = self._counts
        plans = self.plans

        def push(when: float, priority: int, event: Any, _env: Environment = env) -> None:
            key = (idx, when, priority)
            occ = counts.get(key, 0)
            counts[key] = occ + 1
            plan = plans.get(key)
            rank = plan[occ] if plan is not None and occ < len(plan) else occ
            _env._seq += 1
            heapq.heappush(_env._queue, (when, priority, (rank, _env._seq), event))

        env._push = push  # type: ignore[method-assign]


class PopRecorder(Perturber):
    """A :class:`Perturber` that also records the pop stream.

    Each pop appends ``(env_idx, when, priority, event type name)`` to
    :attr:`pops`; diffing two streams localizes the first event whose
    firing position moved — the earliest observable effect of a flip.
    """

    def __init__(self, plans: Optional[dict[Key, tuple[int, ...]]] = None):
        super().__init__(plans or {})
        self.pops: list[tuple[int, float, int, str]] = []

    def attach(self, env: Environment) -> None:
        super().attach(env)
        idx = self._env_idx
        pops = self.pops

        def step(_env: Environment = env) -> None:
            if _env._queue:
                head = _env._queue[0]
                pops.append((idx, head[0], head[1], type(head[3]).__name__))
            Environment.step(_env)

        env.step = step  # type: ignore[method-assign]


@contextlib.contextmanager
def capture(hook: Any) -> Iterator[Any]:
    """Attach ``hook`` to every Environment created in this block."""
    attach = hook.attach
    Environment._init_hooks.append(attach)
    try:
        yield hook
    finally:
        Environment._init_hooks.remove(attach)


def minimize_flips(
    groups: list[Key],
    diverges: Callable[[list[Key]], bool],
    max_runs: int = 64,
) -> tuple[list[Key], int, bool]:
    """Reduce a diverging flip set to a small reproducing subset.

    ``diverges(subset)`` re-runs the scenario with only ``subset``
    reversed and reports whether the result still differs from the
    baseline.  Greedy ddmin-style reduction: try each half, then fall
    back to dropping quarters.  Returns ``(subset, runs_used,
    irreducible)`` where ``irreducible`` means no further single-chunk
    removal preserved the divergence (for a true two-party race the
    subset reaches a single group; interacting-contention conspiracies
    plateau larger and are reported as such).
    """
    cur = list(groups)
    runs = 0
    while len(cur) > 1 and runs < max_runs:
        half = len(cur) // 2
        a, b = cur[:half], cur[half:]
        runs += 1
        if diverges(a):
            cur = a
            continue
        if runs >= max_runs:
            break
        runs += 1
        if diverges(b):
            cur = b
            continue
        reduced = False
        quarter = max(1, len(cur) // 4)
        for i in range(0, len(cur), quarter):
            if runs >= max_runs:
                break
            cand = cur[:i] + cur[i + quarter:]
            if not cand:
                continue
            runs += 1
            if diverges(cand):
                cur = cand
                reduced = True
                break
        if not reduced:
            return cur, runs, True
    return cur, runs, len(cur) == 1
