"""Opt-in analytic fast-forward for steady calendar windows.

Enabled with ``REPRO_ANALYTIC=1`` (or ``repro ... --analytic``); off by
default.  Two accelerations live here:

**Slice rings** (:class:`SliceRing`) — the dominant event producer in a
contended run is the quantum round-robin: every holder of a busy
resource sleeps one quantum, releases, re-requests, and the next FIFO
waiter grants, at roughly three calendar entries per quantum.  The
rotation among a *stable* set of :class:`~repro.simengine.resources.FastHold`
holders is fully deterministic: boundary times are the float chain
``t += quantum`` in FIFO rotation order and each member's remaining
hold shrinks by exactly the same repeated subtraction the sliced loop
performs.  A ring therefore virtualizes the rotation — the calendar
carries a *single* :class:`~repro.simengine.core.Wake` at the first
completion time, computed by replaying the per-turn float operations in
plain Python — and dissolves back to exact event-by-event slicing the
moment anything external touches an involved resource.  Timestamps
produced this way are bit-identical to the sliced path because they
replay the identical float chains; the kernel determinism suite
byte-compares the resulting tables.

The rotation revolves around a single *pivot* — the one contended
resource — which may sit at any position of a member's resource list
(an NFS reply contends on the server uplink, the first resource of its
route; a data transfer contends on the receiver downlink, the last).
Resources *before* the pivot are re-granted instantly at every virtual
boundary and stay effectively held throughout the rotation; resources
*after* it are released while the member waits and re-acquired only
when the pivot grants, so they must be idle at adoption.

Steady-window criterion (all must hold, checked at adoption):

* the pivot is a plain FIFO :class:`Resource` of capacity 1 with no
  foreign arrival watchers, and it is the only contended resource of
  any member;
* the holder is a ``FastHold`` with more than one quantum of hold
  left;
* every queued request is a *re-acquire* of a ``FastHold`` rotation
  member (first-time acquirers have unevaluated service times and side
  effects at grant, so they make the window non-steady);
* each member's resources before its pivot are held with empty queues,
  and those after it are completely idle.

Dissolution is driven by synchronous request hooks: while a ring is
live every involved resource carries a hook that runs at the top of
``Resource.request()``, *before* the request observes any state.  The
hook rebuilds the exact rotation state for the arrival time — current
holder (with its in-flight slice re-scheduled), waiter order, remaining
holds, held/idle side resources — so the arriving request sees
precisely what the event-by-event rotation would have shown it.  Rings
never form across ``PriorityResource`` queues or generator
(``hold_quantum``) holders.

**Coupled rings** (:class:`CoupledRing`) — the single-pivot criterion
rejects the many-to-one network shape: transfers into one node hold
``[sender_uplink, receiver_downlink]``, and with several streams per
sender *both* levels are contended, so no member has a single contended
resource.  The rotation is still deterministic, it just runs on two
coupled FIFO levels: *active* members (holding their uplink) rotate on
the shared pivot; a member rotating out hands its uplink to that
uplink's FIFO head, which immediately joins the pivot queue, while the
leaver re-queues on its own uplink.  The composite replay walks exactly
that dance — one ``t += quantum`` per pivot turn, FIFO pops on the
uplink queues — and the same dissolve-and-materialize hooks guarantee
any foreign request observes the exact event-by-event state.  Adoption
requires every waiting request to be a ``FastHold`` re-acquire of a
member pivoting on the same resource, at most one contended pre-pivot
resource per member, and all of pivot/uplinks to be plain capacity-1
FIFO resources.

**Vectorized scatter service times** — ``Disk.service_time`` evaluates
strided/random scatters one operation at a time.  With the flag on and
the pattern free of readahead/wraparound interactions the per-op times
are computed elementwise with numpy (IEEE-identical to the scalar
expressions) and accumulated in the original sequential order; see
``hardware/disk.py``.
"""

from __future__ import annotations

import os

from .core import Event, Wake

__all__ = ["ANALYTIC", "CoupledRing", "SliceRing", "try_adopt", "try_adopt_late"]

#: master switch — ``REPRO_ANALYTIC=1`` or ``--analytic``; modules read
#: this attribute at run time so tests and the CLI can flip it.
ANALYTIC = os.environ.get("REPRO_ANALYTIC", "") in ("1", "true", "yes")

#: injected by ``resources`` at import (avoids a circular import);
#: rings only ever form on exactly this class — subclasses may order
#: their queue differently
_RESOURCE_CLS = None
_REQUEST_CLS = None


def try_adopt(holder, remaining: float) -> bool:
    """Form a ring around ``holder`` if the current contention is a
    steady window; returns False to fall back to exact event-by-event
    slicing.  A single-pivot :class:`SliceRing` is tried first, then
    the two-level :class:`CoupledRing`.
    """
    if _try_single(holder, remaining):
        return True
    return _try_coupled(holder, remaining)


def _post_pivot_clear(rj, holder, ph) -> bool:
    """True if a member's post-pivot resource blocks nobody.

    Post-pivot resources are re-acquired zero-delay right after the
    pivot grant, so they must not be able to stall a member mid
    rotation.  Idle qualifies, and so does a *shadow* resource held by
    the current pivot holder at one of its own post-pivot positions
    (e.g. the receiver downlink every window stream of an NFS reply
    holds together with the shared server uplink): the holder releases
    it in the same instant it yields the pivot, so the successor's
    acquire still grants instantly.
    """
    if rj.queue:
        return False
    hreqs = holder.reqs
    for rq in rj.users:
        for k in range(ph + 1, len(hreqs)):
            if hreqs[k] is rq:
                break
        else:
            return False
    return True


def _try_single(holder, remaining: float) -> bool:
    resources = holder.resources
    pivot = None
    for r in resources:
        if r.queue:
            if pivot is not None:
                return False  # two contended resources — no single rotation
            pivot = r
    if (
        pivot is None
        or type(pivot) is not _RESOURCE_CLS
        or pivot.capacity != 1
        or pivot._arrival_watchers
    ):
        return False
    ph = 0
    for j, r in enumerate(resources):
        if r is pivot:
            ph = j
            break
    users = pivot.users
    if (
        len(users) != 1
        or len(holder.reqs) != len(resources)
        or users[0] is not holder.reqs[ph]
    ):
        return False
    members = [holder]
    rems = [remaining]
    pivots = [ph]
    for req in pivot.queue:
        fh = req.fh
        if fh is None or fh is holder or not fh.remaining > 0 or not fh.quantum > 0:
            return False
        # a re-acquire stores the request at its acquisition index, so
        # the queued request's slot in fh.reqs is the member's pivot
        # position
        mres = fh.resources
        pm = -1
        for j, rq in enumerate(fh.reqs):
            if rq is req:
                pm = j
                break
        if pm < 0 or len(fh.reqs) != len(mres) or mres[pm] is not pivot:
            return False
        for j in range(pm):
            rj = mres[j]
            if rj.queue or fh.reqs[j] not in rj.users:
                return False  # pre-pivot resources must be held, uncontended
        for j in range(pm + 1, len(mres)):
            # post-pivot resources: idle, or a shadow held only by the
            # current pivot holder
            if not _post_pivot_clear(mres[j], holder, ph):
                return False
        members.append(fh)
        rems.append(fh.remaining)
        pivots.append(pm)
    if len(members) < 2:
        return False
    # A holder rotated out in this same timestep may still be mid
    # re-acquisition: it holds its pre-pivot resources again but its
    # pivot request is one deferred grant-callback away.  Adopting now
    # would form a ring without it, only for that request to land on
    # the very next event and dissolve the ring — pure calendar churn.
    # Its signature is a tagged (re-acquire) request on a participant's
    # prefix resource whose owner is not itself a participant: bail and
    # let the post-completion grant (or a later boundary) adopt.
    for m, pm in zip(members, pivots):
        for j in range(pm):
            for rq in m.resources[j].users:
                fh2 = rq.fh
                if fh2 is not None and not any(fh2 is p for p in members):
                    return False
    SliceRing(pivot, members, rems, pivots)
    return True


class SliceRing:
    """One virtualized quantum rotation on one resource.

    Live from adoption until the first member completion (the scheduled
    Wake) or the first request touching any involved resource (the
    synchronous hooks), whichever comes first; both paths rebuild the
    exact resource/holder state the event-by-event rotation would be in
    at that moment.
    """

    __slots__ = ("env", "res", "members", "rems", "pivots", "t0", "wake", "hooked", "dead")

    def __init__(self, res, members, rems, pivots):
        env = res.env
        self.env = env
        self.res = res
        self.members = members
        self.rems = rems
        self.pivots = pivots
        self.t0 = env._now
        self.dead = False
        # replay the rotation to the first completion; one calendar
        # entry covers every virtual quantum boundary before it
        _i, _r, _o, _t, t_c, _f = self._replay(None)
        wake = self.wake = Wake(env, t_c)
        wake.callbacks.append(self._on_wake)
        # any request on any involved resource breaks the steady window
        # — hook them all so the dissolve happens before the arriving
        # request observes the frozen state
        hook = self._dissolve
        hooked = self.hooked = []
        for m in members:
            for rj in m.resources:
                if not any(h is rj for h in hooked):
                    hooked.append(rj)
                    rj._request_hooks.append(hook)

    # -- exact float replay of the rotation ------------------------------
    def _replay(self, t_stop):
        """Replay the rotation from the adoption state on copies.

        With ``t_stop is None``: run to the first completion.  With a
        time: process every quantum boundary at or before ``t_stop``
        (a boundary exactly at an arrival is the older calendar entry,
        so it replays first).  Returns ``(i, rems, outs, start, end,
        final)`` where ``i`` indexes the in-flight/completing member,
        ``rems`` holds the advanced remaining times in original member
        order, ``outs`` each member's *last rotate-out boundary* (None
        if it never rotated out — that instant is when the real
        rotation created the member's current pivot re-request, so it
        is the arrival time materialization must stamp), ``start``/
        ``end`` bound the in-flight slice and ``final`` whether that
        slice completes the member's hold.  The adoption state itself
        is never mutated — it stays valid for a later replay.

        Mirrors ``FastHold._hold_step`` statement for statement:
        ``t + quantum`` per non-final turn, ``remaining - quantum`` per
        member turn, ``t + remaining`` for a final slice.
        """
        members = self.members
        rems = list(self.rems)
        outs = [None] * len(members)
        t = self.t0
        i = 0
        n = len(members)
        while True:
            r = rems[i]
            q = members[i].quantum
            if r <= 0:
                end, final = t, True
            elif r <= q:
                end, final = t + r, True
            else:
                end, final = t + q, False
            if final or (t_stop is not None and end > t_stop):
                break
            rems[i] = r - q
            t = end
            outs[i] = t
            i = (i + 1) % n
        return i, rems, outs, t, end, final

    def _advance(self, t_stop):
        """Replay and rotate the member/remaining/pivot lists so the
        in-flight member leads."""
        i, rems, outs, t, end, final = self._replay(t_stop)
        members = self.members
        pivots = self.pivots
        return (
            members[i:] + members[:i],
            rems[i:] + rems[:i],
            pivots[i:] + pivots[:i],
            outs[i:] + outs[:i],
            t,
            end,
            final,
        )

    # -- materialization --------------------------------------------------
    def _rebuild(self, members, rems, pivots, outs):
        """Point the resources and members at the replayed rotation state.

        ``members[0]`` becomes the holder — its pivot request moves to
        ``users`` and its post-pivot resources are granted (a real
        rotation grants them instantly right after the pivot).  The
        rest queue in rotation order ahead of any foreign arrivals,
        with their post-pivot holdings released, and every member's
        ``remaining`` is the replayed value.  The queue was never
        popped while the ring was live, so its first
        ``len(members) - 1`` entries are exactly the member requests
        and anything after them arrived later.

        Queued requests must carry the metadata the event-by-event
        rotation would have given them: a member that rotated out at
        virtual boundary ``outs[j]`` re-requested *at that instant*
        with its ``order_key``, so its queue entry gets that arrival
        time (and a replacement request, where the stored object was
        already consumed, that key).  ``Resource._pop_next`` resolves
        same-arrival-time cohorts by key, so a stale or dissolve-time
        arrival stamp would let a keyed foreign request arriving at the
        dissolve instant overtake members the exact path serves first.
        """
        res = self.res
        foreign = res.queue[len(members) - 1 :]
        h = members[0]
        res.users[:] = [h.reqs[pivots[0]]]
        for j in range(pivots[0] + 1, len(h.resources)):
            rj = h.resources[j]
            if h.reqs[j] not in rj.users:
                rq = _REQUEST_CLS(rj, h.priority, h.order_key)
                rj.users.append(rq)
                h.reqs[j] = rq
        rebuilt = []
        for m, pm, out in zip(members[1:], pivots[1:], outs[1:]):
            req = m.reqs[pm]
            if req.triggered:
                # this member held the pivot at some virtual boundary —
                # a real rotation would have released and re-requested,
                # so give it the fresh request that rotation would have
                # created (placed directly; the ring's own hooks must
                # not observe it as an arrival)
                req = _REQUEST_CLS(res, m.priority, m.order_key)
                req.fh = m
                req.callbacks.append(m._on_regrant)
                m.reqs[pm] = req
                m._acq_i = pm
            if out is not None:
                req.t_arrival = out
            rebuilt.append(req)
            for j in range(pm + 1, len(m.resources)):
                # a member that rotated out releases what it held past
                # the pivot
                rj = m.resources[j]
                rq = m.reqs[j]
                if rq in rj.users:
                    rj.users.remove(rq)
        res.queue[:] = rebuilt + foreign
        for m, r in zip(members, rems):
            m.remaining = r

    def _unhook(self) -> None:
        hook = self._dissolve
        for rj in self.hooked:
            try:
                rj._request_hooks.remove(hook)
            except ValueError:
                pass

    def _on_wake(self, ev: Event) -> None:
        if self.dead:
            return
        self.dead = True
        self._unhook()
        members, rems, pivots, outs, _t, _end, _final = self._advance(None)
        self._rebuild(members, rems, pivots, outs)
        # the completer's release grants the next member for real — the
        # rotation resumes event-by-event (and typically re-adopts)
        members[0]._release_and_done()

    def _dissolve(self) -> None:
        """Synchronous request hook: restore exact state *now*."""
        if self.dead:
            return
        self.dead = True
        self._unhook()
        wake = self.wake
        if wake.callbacks is not None:
            try:
                wake.callbacks.remove(self._on_wake)
            except ValueError:
                pass
        members, rems, pivots, outs, t_start, end, final = self._advance(self.env._now)
        self._rebuild(members, rems, pivots, outs)
        holder = members[0]
        if final:
            # in a final slice the sliced loop leaves ``remaining``
            # untouched and sleeps Timeout(remaining) — resume there
            Wake(self.env, end).callbacks.append(holder._final_sleep_done)
        else:
            # mid-quantum: the sliced loop decremented before sleeping
            holder.remaining = rems[0] - holder.quantum
            w = Wake(self.env, end)
            w.callbacks.append(holder._after_sleep)
            # leave the holder exactly as _hold_step's sliced branch
            # would: a ring that dissolved the instant it formed (a
            # same-pivot requester was one grant-callback away) must
            # stay visible to try_adopt_late for re-adoption
            holder._hold_start = t_start
            holder._wake = w


def try_adopt_late(res) -> bool:
    """Adoption attempt at the moment a stalled re-acquire enqueues.

    In a two-level rotation the boundary cascade runs through deferred
    grant callbacks: the new pivot holder's ``_hold_step`` (where
    :func:`try_adopt` runs) fires one event *before* the freshly
    granted uplink holder re-requests the pivot, so the boundary-time
    attempt always sees an empty pivot queue.  The stalled enqueue
    itself is the final hop of the cascade — here the steady window is
    fully materialized.  If the shape matches, the in-flight slice
    Timeout of the pivot holder (recorded by ``_hold_step``) is defused
    and the ring's Wake replaces it.
    """
    users = res.users
    if type(res) is not _RESOURCE_CLS or len(users) != 1:
        return False
    holder = users[0].fh
    if holder is None:
        return False
    # the holder must be inside a sliced (non-final, non-coalesced)
    # quantum that started this very instant — otherwise replaying from
    # ``now`` would not reproduce the sliced float chain
    wake = holder._wake
    if (
        holder._hold_start != res.env._now
        or wake is None
        or wake.callbacks is None
        or holder._after_sleep not in wake.callbacks
    ):
        return False
    ph = -1
    for j, rq in enumerate(holder.reqs):
        if rq is users[0]:
            ph = j
            break
    if ph < 0 or len(holder.reqs) != len(holder.resources) or holder.resources[ph] is not res:
        return False
    # _hold_step already decremented for the slice in flight; the
    # replay works in at-slice-start terms
    if not _adopt_coupled(holder, holder.remaining + holder.quantum, res, ph):
        return False
    wake.callbacks.remove(holder._after_sleep)
    return True


def _try_coupled(holder, remaining: float) -> bool:
    """Form a :class:`CoupledRing` around ``holder`` if the contention
    is a steady two-level uplink x pivot rotation; returns False to
    fall back to exact slicing.
    """
    resources = holder.resources
    reqs = holder.reqs
    if len(reqs) != len(resources):
        return False
    # candidate pivots: contended resources the holder currently holds
    for ph, pivot in enumerate(resources):
        if pivot.queue and _adopt_coupled(holder, remaining, pivot, ph):
            return True
    return False


def _adopt_coupled(holder, remaining, pivot, ph) -> bool:
    if (
        type(pivot) is not _RESOURCE_CLS
        or pivot.capacity != 1
        or pivot._arrival_watchers
    ):
        return False
    users = pivot.users
    if len(users) != 1 or users[0] is not holder.reqs[ph]:
        return False
    actives = [holder]
    pidx = {holder: ph}
    rems = {holder: remaining}
    jidx = {}
    upres = {}
    uplinks = {}
    for req in pivot.queue:
        fh = req.fh
        if (
            fh is None
            or fh is holder
            or fh in pidx
            or not fh.remaining > 0
            or not fh.quantum > 0
        ):
            return False
        mres = fh.resources
        pm = -1
        for j, rq in enumerate(fh.reqs):
            if rq is req:
                pm = j
                break
        if pm < 0 or len(fh.reqs) != len(mres) or mres[pm] is not pivot:
            return False
        actives.append(fh)
        pidx[fh] = pm
        rems[fh] = fh.remaining
    if len(actives) < 2:
        return False
    # active-member structure: pre-pivot held with at most one
    # contended resource (the member's uplink), post-pivot idle
    # (holder: held by the holder itself, uncontended)
    for m in actives:
        pm = pidx[m]
        mres = m.resources
        um = None
        for j in range(pm):
            rj = mres[j]
            if m.reqs[j] not in rj.users:
                return False
            if rj.queue:
                if (
                    um is not None
                    or type(rj) is not _RESOURCE_CLS
                    or rj.capacity != 1
                    or rj._arrival_watchers
                    or len(rj.users) != 1
                    or rj in uplinks
                ):
                    return False
                um = j
                uplinks[rj] = []
        if m is holder:
            for j in range(pm + 1, len(mres)):
                rj = mres[j]
                if rj.queue or m.reqs[j] not in rj.users:
                    return False
        else:
            for j in range(pm + 1, len(mres)):
                if not _post_pivot_clear(mres[j], holder, ph):
                    return False
        if um is not None:
            upres[m] = mres[um]
            jidx[m] = um
        else:
            upres[m] = None
    if not uplinks:
        return False  # no second level: the single ring's domain
    # waiting members: each uplink waiter is a re-acquire pivoting on
    # the same pivot, holding an uncontended prefix, everything between
    # its uplink and the pivot (and after the pivot) idle
    for up, waiters in uplinks.items():
        for req in up.queue:
            fh = req.fh
            if (
                fh is None
                or fh in pidx
                or not fh.remaining > 0
                or not fh.quantum > 0
            ):
                return False
            mres = fh.resources
            jw = -1
            for j, rq in enumerate(fh.reqs):
                if rq is req:
                    jw = j
                    break
            if jw < 0 or len(fh.reqs) != len(mres) or mres[jw] is not up:
                return False
            pj = -1
            for k in range(jw + 1, len(mres)):
                if mres[k] is pivot:
                    pj = k
                    break
            if pj < 0:
                return False
            for k in range(jw):
                rk = mres[k]
                if rk.queue or fh.reqs[k] not in rk.users:
                    return False
            for k in range(jw + 1, len(mres)):
                if k == pj:
                    continue
                rk = mres[k]
                if rk.users or rk.queue:
                    return False
            pidx[fh] = pj
            jidx[fh] = jw
            upres[fh] = up
            rems[fh] = fh.remaining
            waiters.append(fh)
    # a holder rotated out in this same timestep may be mid
    # re-acquisition (see the single-ring guard): any held re-acquire
    # on an involved resource owned by a non-member means the window is
    # about to change — bail
    members = pidx
    seen = []
    for m in members:
        for rj in m.resources:
            if any(s is rj for s in seen):
                continue
            seen.append(rj)
            for rq in rj.users:
                fh2 = rq.fh
                if fh2 is not None and fh2 not in members:
                    return False
    CoupledRing(pivot, actives, uplinks, pidx, jidx, upres, rems)
    return True


class CoupledRing:
    """One virtualized two-level rotation: uplink FIFOs x one pivot.

    Same lifecycle as :class:`SliceRing` — live from adoption until the
    first member completion (the Wake) or the first foreign request on
    any involved resource (the synchronous hooks); both paths replay
    the composite rotation in floats and materialize the exact state
    the event-by-event dance would be in.
    """

    __slots__ = (
        "env",
        "res",
        "actives",
        "uplinks",
        "pidx",
        "jidx",
        "upres",
        "rems",
        "t0",
        "wake",
        "hooked",
        "dead",
    )

    def __init__(self, res, actives, uplinks, pidx, jidx, upres, rems):
        env = res.env
        self.env = env
        self.res = res
        self.actives = actives
        self.uplinks = uplinks
        self.pidx = pidx
        self.jidx = jidx
        self.upres = upres
        self.rems = rems
        self.t0 = env._now
        self.dead = False
        _dq, _uq, _rems, _born, _t, t_c, _f = self._replay(None)
        wake = self.wake = Wake(env, t_c)
        wake.callbacks.append(self._on_wake)
        hook = self._dissolve
        hooked = self.hooked = []
        for m in pidx:
            for rj in m.resources:
                if not any(h is rj for h in hooked):
                    hooked.append(rj)
                    rj._request_hooks.append(hook)

    # -- exact float replay of the composite rotation ---------------------
    def _replay(self, t_stop):
        """Replay the two-level rotation from the adoption state.

        Boundary step (mirrors the event-by-event release/re-acquire
        cascade): the pivot holder burns one quantum; rotating out it
        hands the pivot to the pivot-FIFO head and its uplink to that
        uplink's FIFO head, which joins the pivot queue in its place,
        while the leaver re-queues on its own uplink (or directly on
        the pivot when its uplink has no waiters).  Returns
        ``(dq, uq, rems, born, start, end, final)`` where ``dq`` is the
        pivot rotation order (holder first), ``uq`` maps each uplink to
        its waiter order, ``born`` maps each member that changed queues
        to the boundary time of its *last* transition (the instant the
        real rotation created its current pivot or uplink request),
        ``start``/``end`` bound the in-flight slice and ``final``
        whether that slice completes the holder.  The adoption state is
        never mutated.
        """
        dq = list(self.actives)
        uq = {up: list(ws) for up, ws in self.uplinks.items()}
        rems = dict(self.rems)
        born = {}
        upres = self.upres
        t = self.t0
        while True:
            h = dq[0]
            r = rems[h]
            q = h.quantum
            if r <= 0:
                end, final = t, True
            elif r <= q:
                end, final = t + r, True
            else:
                end, final = t + q, False
            if final or (t_stop is not None and end > t_stop):
                break
            rems[h] = r - q
            t = end
            dq.pop(0)
            up = upres[h]
            if up is not None and uq[up]:
                s = uq[up].pop(0)
                dq.append(s)
                born[s] = t
                uq[up].append(h)
            else:
                dq.append(h)
            born[h] = t
        return dq, uq, rems, born, t, end, final

    # -- materialization --------------------------------------------------
    def _rebuild(self, dq, uq, rems, born):
        """Point every involved resource and member at the replayed
        state: ``dq[0]`` holds the pivot (and its post-pivot/between
        resources), the rest of ``dq`` queues on the pivot in rotation
        order, each uplink is held by its one active member with the
        ``uq`` waiters queued behind, and waiting members hold nothing
        past their uplink position.  Requests whose stored object was
        already consumed at some virtual boundary get the fresh request
        the real rotation would have created (placed directly; the
        ring's own hooks must not observe it as an arrival), and every
        request whose member changed queues during the replay is
        stamped with its ``born`` boundary as arrival time — the
        key-aware same-arrival cohort scan in ``Resource._pop_next``
        reads that metadata, so it must match the exact path's."""
        res = self.res
        pidx = self.pidx
        jidx = self.jidx
        foreign = res.queue[len(self.actives) - 1 :]
        h = dq[0]
        ph = pidx[h]
        res.users[:] = [h.reqs[ph]]
        rebuilt = []
        for n, m in enumerate(dq):
            pm = pidx[m]
            jm = jidx.get(m, -1)
            if n:
                req = m.reqs[pm]
                if req.triggered:
                    req = _REQUEST_CLS(res, m.priority, m.order_key)
                    req.fh = m
                    req.callbacks.append(m._on_regrant)
                    m.reqs[pm] = req
                bt = born.get(m)
                if bt is not None:
                    req.t_arrival = bt
                m._acq_i = pm
                rebuilt.append(req)
                stop = len(m.resources)
            else:
                stop = pm  # the holder's post-pivot re-held below
            # active members hold everything before the pivot; a member
            # adopted as a waiter re-acquired its between resources at
            # some virtual boundary
            for k in range(jm + 1, pm):
                rk = m.resources[k]
                if m.reqs[k] not in rk.users:
                    rq = _REQUEST_CLS(rk, m.priority, m.order_key)
                    rk.users.append(rq)
                    m.reqs[k] = rq
            # ...and holds nothing after it while queued there
            for k in range(pm + 1, stop):
                rk = m.resources[k]
                rq = m.reqs[k]
                if rq in rk.users:
                    rk.users.remove(rq)
        for k in range(ph + 1, len(h.resources)):
            rk = h.resources[k]
            if h.reqs[k] not in rk.users:
                rq = _REQUEST_CLS(rk, h.priority, h.order_key)
                rk.users.append(rq)
                h.reqs[k] = rq
        res.queue[:] = rebuilt + foreign
        upres = self.upres
        for up, waiters in uq.items():
            hu = None
            for m in dq:
                if upres.get(m) is up:
                    hu = m
                    break
            up.users[:] = [hu.reqs[jidx[hu]]]
            wforeign = up.queue[len(self.uplinks[up]) :]
            wreqs = []
            for w in waiters:
                jw = jidx[w]
                req = w.reqs[jw]
                if req.triggered:
                    req = _REQUEST_CLS(up, w.priority, w.order_key)
                    req.fh = w
                    req.callbacks.append(w._on_regrant)
                    w.reqs[jw] = req
                bt = born.get(w)
                if bt is not None:
                    req.t_arrival = bt
                w._acq_i = jw
                wreqs.append(req)
                for k in range(jw + 1, len(w.resources)):
                    rk = w.resources[k]
                    rq = w.reqs[k]
                    if rq in rk.users:
                        rk.users.remove(rq)
            up.queue[:] = wreqs + wforeign
        for m, r in rems.items():
            m.remaining = r

    def _unhook(self) -> None:
        hook = self._dissolve
        for rj in self.hooked:
            try:
                rj._request_hooks.remove(hook)
            except ValueError:
                pass

    def _on_wake(self, ev: Event) -> None:
        if self.dead:
            return
        self.dead = True
        self._unhook()
        dq, uq, rems, born, _t, _end, _final = self._replay(None)
        self._rebuild(dq, uq, rems, born)
        # the completer's release grants the pivot and uplink for real
        # — the rotation resumes event-by-event (and typically
        # re-adopts)
        dq[0]._release_and_done()

    def _dissolve(self) -> None:
        """Synchronous request hook: restore exact state *now*."""
        if self.dead:
            return
        self.dead = True
        self._unhook()
        wake = self.wake
        if wake.callbacks is not None:
            try:
                wake.callbacks.remove(self._on_wake)
            except ValueError:
                pass
        dq, uq, rems, born, t_start, end, final = self._replay(self.env._now)
        self._rebuild(dq, uq, rems, born)
        holder = dq[0]
        if final:
            # in a final slice the sliced loop leaves ``remaining``
            # untouched and sleeps Timeout(remaining) — resume there
            Wake(self.env, end).callbacks.append(holder._final_sleep_done)
        else:
            # mid-quantum: the sliced loop decremented before sleeping
            holder.remaining = rems[holder] - holder.quantum
            w = Wake(self.env, end)
            w.callbacks.append(holder._after_sleep)
            holder._hold_start = t_start
            holder._wake = w
