"""Opt-in analytic fast-forward for steady calendar windows.

Enabled with ``REPRO_ANALYTIC=1`` (or ``repro ... --analytic``); off by
default.  Two accelerations live here:

**Slice rings** (:class:`SliceRing`) — the dominant event producer in a
contended run is the quantum round-robin: every holder of a busy
resource sleeps one quantum, releases, re-requests, and the next FIFO
waiter grants, at roughly three calendar entries per quantum.  The
rotation among a *stable* set of :class:`~repro.simengine.resources.FastHold`
holders is fully deterministic: boundary times are the float chain
``t += quantum`` in FIFO rotation order and each member's remaining
hold shrinks by exactly the same repeated subtraction the sliced loop
performs.  A ring therefore virtualizes the rotation — the calendar
carries a *single* :class:`~repro.simengine.core.Wake` at the first
completion time, computed by replaying the per-turn float operations in
plain Python — and dissolves back to exact event-by-event slicing the
moment anything external touches an involved resource.  Timestamps
produced this way are bit-identical to the sliced path because they
replay the identical float chains; the kernel determinism suite
byte-compares the resulting tables.

The rotation revolves around a single *pivot* — the one contended
resource — which may sit at any position of a member's resource list
(an NFS reply contends on the server uplink, the first resource of its
route; a data transfer contends on the receiver downlink, the last).
Resources *before* the pivot are re-granted instantly at every virtual
boundary and stay effectively held throughout the rotation; resources
*after* it are released while the member waits and re-acquired only
when the pivot grants, so they must be idle at adoption.

Steady-window criterion (all must hold, checked at adoption):

* the pivot is a plain FIFO :class:`Resource` of capacity 1 with no
  foreign arrival watchers, and it is the only contended resource of
  any member;
* the holder is a ``FastHold`` with more than one quantum of hold
  left;
* every queued request is a *re-acquire* of a ``FastHold`` rotation
  member (first-time acquirers have unevaluated service times and side
  effects at grant, so they make the window non-steady);
* each member's resources before its pivot are held with empty queues,
  and those after it are completely idle.

Dissolution is driven by synchronous request hooks: while a ring is
live every involved resource carries a hook that runs at the top of
``Resource.request()``, *before* the request observes any state.  The
hook rebuilds the exact rotation state for the arrival time — current
holder (with its in-flight slice re-scheduled), waiter order, remaining
holds, held/idle side resources — so the arriving request sees
precisely what the event-by-event rotation would have shown it.  Rings
never form across ``PriorityResource`` queues or generator
(``hold_quantum``) holders.

**Vectorized scatter service times** — ``Disk.service_time`` evaluates
strided/random scatters one operation at a time.  With the flag on and
the pattern free of readahead/wraparound interactions the per-op times
are computed elementwise with numpy (IEEE-identical to the scalar
expressions) and accumulated in the original sequential order; see
``hardware/disk.py``.
"""

from __future__ import annotations

import os

from .core import Event, Wake

__all__ = ["ANALYTIC", "SliceRing", "try_adopt"]

#: master switch — ``REPRO_ANALYTIC=1`` or ``--analytic``; modules read
#: this attribute at run time so tests and the CLI can flip it.
ANALYTIC = os.environ.get("REPRO_ANALYTIC", "") in ("1", "true", "yes")

#: injected by ``resources`` at import (avoids a circular import);
#: rings only ever form on exactly this class — subclasses may order
#: their queue differently
_RESOURCE_CLS = None
_REQUEST_CLS = None


def try_adopt(holder, remaining: float) -> bool:
    """Form a :class:`SliceRing` around ``holder`` if the current
    contention is a steady window; returns False to fall back to exact
    event-by-event slicing.
    """
    resources = holder.resources
    pivot = None
    for r in resources:
        if r.queue:
            if pivot is not None:
                return False  # two contended resources — no single rotation
            pivot = r
    if (
        pivot is None
        or type(pivot) is not _RESOURCE_CLS
        or pivot.capacity != 1
        or pivot._arrival_watchers
    ):
        return False
    ph = 0
    for j, r in enumerate(resources):
        if r is pivot:
            ph = j
            break
    users = pivot.users
    if (
        len(users) != 1
        or len(holder.reqs) != len(resources)
        or users[0] is not holder.reqs[ph]
    ):
        return False
    members = [holder]
    rems = [remaining]
    pivots = [ph]
    for req in pivot.queue:
        fh = req.fh
        if fh is None or fh is holder or not fh.remaining > 0 or not fh.quantum > 0:
            return False
        # a re-acquire stores the request at its acquisition index, so
        # the queued request's slot in fh.reqs is the member's pivot
        # position
        mres = fh.resources
        pm = -1
        for j, rq in enumerate(fh.reqs):
            if rq is req:
                pm = j
                break
        if pm < 0 or len(fh.reqs) != len(mres) or mres[pm] is not pivot:
            return False
        for j in range(pm):
            rj = mres[j]
            if rj.queue or fh.reqs[j] not in rj.users:
                return False  # pre-pivot resources must be held, uncontended
        for j in range(pm + 1, len(mres)):
            rj = mres[j]
            if rj.users or rj.queue:
                return False  # post-pivot resources must be idle
        members.append(fh)
        rems.append(fh.remaining)
        pivots.append(pm)
    if len(members) < 2:
        return False
    # A holder rotated out in this same timestep may still be mid
    # re-acquisition: it holds its pre-pivot resources again but its
    # pivot request is one deferred grant-callback away.  Adopting now
    # would form a ring without it, only for that request to land on
    # the very next event and dissolve the ring — pure calendar churn.
    # Its signature is a tagged (re-acquire) request on a participant's
    # prefix resource whose owner is not itself a participant: bail and
    # let the post-completion grant (or a later boundary) adopt.
    for m, pm in zip(members, pivots):
        for j in range(pm):
            for rq in m.resources[j].users:
                fh2 = rq.fh
                if fh2 is not None and not any(fh2 is p for p in members):
                    return False
    SliceRing(pivot, members, rems, pivots)
    return True


class SliceRing:
    """One virtualized quantum rotation on one resource.

    Live from adoption until the first member completion (the scheduled
    Wake) or the first request touching any involved resource (the
    synchronous hooks), whichever comes first; both paths rebuild the
    exact resource/holder state the event-by-event rotation would be in
    at that moment.
    """

    __slots__ = ("env", "res", "members", "rems", "pivots", "t0", "wake", "hooked", "dead")

    def __init__(self, res, members, rems, pivots):
        env = res.env
        self.env = env
        self.res = res
        self.members = members
        self.rems = rems
        self.pivots = pivots
        self.t0 = env._now
        self.dead = False
        # replay the rotation to the first completion; one calendar
        # entry covers every virtual quantum boundary before it
        _i, _r, t_c, _f = self._replay(None)
        wake = self.wake = Wake(env, t_c)
        wake.callbacks.append(self._on_wake)
        # any request on any involved resource breaks the steady window
        # — hook them all so the dissolve happens before the arriving
        # request observes the frozen state
        hook = self._dissolve
        hooked = self.hooked = []
        for m in members:
            for rj in m.resources:
                if not any(h is rj for h in hooked):
                    hooked.append(rj)
                    rj._request_hooks.append(hook)

    # -- exact float replay of the rotation ------------------------------
    def _replay(self, t_stop):
        """Replay the rotation from the adoption state on copies.

        With ``t_stop is None``: run to the first completion.  With a
        time: process every quantum boundary at or before ``t_stop``
        (a boundary exactly at an arrival is the older calendar entry,
        so it replays first).  Returns ``(i, rems, end, final)`` where
        ``i`` indexes the in-flight/completing member, ``rems`` holds
        the advanced remaining times in original member order, ``end``
        is the slice end and ``final`` whether that slice completes the
        member's hold.  The adoption state itself is never mutated — it
        stays valid for a later replay.

        Mirrors ``FastHold._hold_step`` statement for statement:
        ``t + quantum`` per non-final turn, ``remaining - quantum`` per
        member turn, ``t + remaining`` for a final slice.
        """
        members = self.members
        rems = list(self.rems)
        t = self.t0
        i = 0
        n = len(members)
        while True:
            r = rems[i]
            q = members[i].quantum
            if r <= 0:
                end, final = t, True
            elif r <= q:
                end, final = t + r, True
            else:
                end, final = t + q, False
            if final or (t_stop is not None and end > t_stop):
                break
            rems[i] = r - q
            t = end
            i = (i + 1) % n
        return i, rems, end, final

    def _advance(self, t_stop):
        """Replay and rotate the member/remaining/pivot lists so the
        in-flight member leads."""
        i, rems, end, final = self._replay(t_stop)
        members = self.members
        pivots = self.pivots
        return (
            members[i:] + members[:i],
            rems[i:] + rems[:i],
            pivots[i:] + pivots[:i],
            end,
            final,
        )

    # -- materialization --------------------------------------------------
    def _rebuild(self, members, rems, pivots):
        """Point the resources and members at the replayed rotation state.

        ``members[0]`` becomes the holder — its pivot request moves to
        ``users`` and its post-pivot resources are granted (a real
        rotation grants them instantly right after the pivot).  The
        rest queue in rotation order ahead of any foreign arrivals,
        with their post-pivot holdings released, and every member's
        ``remaining`` is the replayed value.  The queue was never
        popped while the ring was live, so its first
        ``len(members) - 1`` entries are exactly the member requests
        and anything after them arrived later.
        """
        res = self.res
        foreign = res.queue[len(members) - 1 :]
        h = members[0]
        res.users[:] = [h.reqs[pivots[0]]]
        for j in range(pivots[0] + 1, len(h.resources)):
            rj = h.resources[j]
            if h.reqs[j] not in rj.users:
                rq = _REQUEST_CLS(rj, h.priority)
                rj.users.append(rq)
                h.reqs[j] = rq
        rebuilt = []
        for m, pm in zip(members[1:], pivots[1:]):
            req = m.reqs[pm]
            if req.triggered:
                # this member held the pivot at some virtual boundary —
                # a real rotation would have released and re-requested,
                # so give it the fresh request that rotation would have
                # created (placed directly; the ring's own hooks must
                # not observe it as an arrival)
                req = _REQUEST_CLS(res, m.priority)
                req.fh = m
                req.callbacks.append(m._on_regrant)
                m.reqs[pm] = req
                m._acq_i = pm
            rebuilt.append(req)
            for j in range(pm + 1, len(m.resources)):
                # a member that rotated out releases what it held past
                # the pivot
                rj = m.resources[j]
                rq = m.reqs[j]
                if rq in rj.users:
                    rj.users.remove(rq)
        res.queue[:] = rebuilt + foreign
        for m, r in zip(members, rems):
            m.remaining = r

    def _unhook(self) -> None:
        hook = self._dissolve
        for rj in self.hooked:
            try:
                rj._request_hooks.remove(hook)
            except ValueError:
                pass

    def _on_wake(self, ev: Event) -> None:
        if self.dead:
            return
        self.dead = True
        self._unhook()
        members, rems, pivots, _end, _final = self._advance(None)
        self._rebuild(members, rems, pivots)
        # the completer's release grants the next member for real — the
        # rotation resumes event-by-event (and typically re-adopts)
        members[0]._release_and_done()

    def _dissolve(self) -> None:
        """Synchronous request hook: restore exact state *now*."""
        if self.dead:
            return
        self.dead = True
        self._unhook()
        wake = self.wake
        if wake.callbacks is not None:
            try:
                wake.callbacks.remove(self._on_wake)
            except ValueError:
                pass
        members, rems, pivots, end, final = self._advance(self.env._now)
        self._rebuild(members, rems, pivots)
        holder = members[0]
        if final:
            # in a final slice the sliced loop leaves ``remaining``
            # untouched and sleeps Timeout(remaining) — resume there
            Wake(self.env, end).callbacks.append(holder._final_sleep_done)
        else:
            # mid-quantum: the sliced loop decremented before sleeping
            holder.remaining = rems[0] - holder.quantum
            Wake(self.env, end).callbacks.append(holder._after_sleep)
