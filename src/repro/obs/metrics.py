"""Per-level run metrics: counters, histograms, snapshot/diff.

Every component of the simulated I/O path already keeps cumulative
counters (``DiskStats``, ``Link`` byte counts, ``FSStats``,
``CacheStats``, ``NFSStats``); what was missing is a single surface
that (a) names them uniformly by I/O-path level, (b) diffs them over
a measured run so warm-started systems report per-run deltas rather
than lifetime totals, and (c) adds the MPI-IO library level, which
had no counters at all.

:class:`MetricsRegistry` walks a built
:class:`~repro.clusters.builder.System` — it holds no state of its
own beyond snapshots, so attaching one is free until
:meth:`~MetricsRegistry.begin_run` captures the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as _dc_fields
from typing import Optional

__all__ = ["LEVELS", "Histogram", "IOLibStats", "CounterSnapshot", "MetricsRegistry"]

#: the I/O-path levels metrics are grouped by (paper Fig. 2 top-down)
LEVELS = ("iolib", "nfs", "localfs", "cache", "disk", "network")


class Histogram:
    """Power-of-two bucketed histogram (request sizes, latencies).

    Bucket ``k`` counts values in ``[2**k, 2**(k+1))``; zero and
    negative values land in bucket 0.  Cheap enough to update per
    MPI-IO call.
    """

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: dict[int, int] = {}

    def add(self, value: float, n: int = 1) -> None:
        k = max(int(value).bit_length() - 1, 0) if value >= 1 else 0
        self.counts[k] = self.counts.get(k, 0) + n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> dict:
        """``{"2^k": count}`` with ascending buckets (stable keys)."""
        return {f"2^{k}": self.counts[k] for k in sorted(self.counts)}

    def merge(self, other: "Histogram") -> None:
        for k, n in other.counts.items():
            self.counts[k] = self.counts.get(k, 0) + n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.as_dict()}>"


@dataclass
class IOLibStats:
    """MPI-IO library-level counters of one application run.

    One instance per :class:`~repro.mpi.sim.MPIWorld`, updated by the
    MPI-IO layer on every traced operation — so the iolib level is
    per-run by construction, no diffing needed.
    """

    reads: int = 0
    writes: int = 0
    independent_ops: int = 0
    collective_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    io_time_s: float = 0.0
    read_sizes: Histogram = field(default_factory=Histogram)
    write_sizes: Histogram = field(default_factory=Histogram)
    read_latency_us: Histogram = field(default_factory=Histogram)
    write_latency_us: Histogram = field(default_factory=Histogram)

    def record(
        self, op: str, nbytes: int, count: int, collective: bool, duration_s: float
    ) -> None:
        total = nbytes * count
        if op == "read":
            self.reads += 1
            self.bytes_read += total
            self.read_sizes.add(nbytes, count)
            self.read_latency_us.add(duration_s * 1e6)
        else:
            self.writes += 1
            self.bytes_written += total
            self.write_sizes.add(nbytes, count)
            self.write_latency_us.add(duration_s * 1e6)
        if collective:
            self.collective_ops += 1
        else:
            self.independent_ops += 1
        self.io_time_s += duration_s

    def counters(self) -> dict:
        """The scalar counters (histograms via :meth:`histograms`)."""
        out = {}
        for f in _dc_fields(self):
            v = getattr(self, f.name)
            if isinstance(v, (int, float)):
                out[f.name] = v
        return out

    def histograms(self) -> dict:
        return {
            "read_sizes": self.read_sizes.as_dict(),
            "write_sizes": self.write_sizes.as_dict(),
            "read_latency_us": self.read_latency_us.as_dict(),
            "write_latency_us": self.write_latency_us.as_dict(),
        }


@dataclass(frozen=True)
class CounterSnapshot:
    """All component counters at one simulated instant.

    Keys are ``(level, scope, counter)`` — e.g. ``("disk",
    "ionode:disk0", "bytes_written")``.  Two snapshots diff in one
    dict pass; that cheapness is what makes per-run deltas on warm
    systems affordable.
    """

    t_s: float
    values: dict = field(default_factory=dict)

    def diff(self, baseline: "CounterSnapshot") -> dict:
        base = baseline.values
        out = {}
        for key, v in self.values.items():
            d = v - base.get(key, 0)
            if d:
                out[key] = d
        return out


def _scalar_fields(obj) -> dict:
    return {
        f.name: getattr(obj, f.name)
        for f in _dc_fields(obj)
        if isinstance(getattr(obj, f.name), (int, float))
    }


class MetricsRegistry:
    """Per-level counter collection over one :class:`System` run.

    Usage::

        registry = MetricsRegistry(system)
        registry.begin_run()          # baseline + sampler + marks
        app.run(system)
        registry.end_run()
        registry.deltas()             # {level: {counter: per-run value}}
        registry.utilization_report() # busy fractions + sampled windows
    """

    def __init__(self, system):
        self.system = system
        self.baseline: Optional[CounterSnapshot] = None
        self.final: Optional[CounterSnapshot] = None
        self.sampler = None
        self._busy_baseline = None

    # -- component walk ------------------------------------------------
    def _components(self):
        """Yield ``(level, scope, stats_dict)`` for every component."""
        system = self.system

        def disks(array, owner):
            for d in array.disks:
                yield "disk", f"{owner}:{d.name}", _scalar_fields(d.stats)

        yield from disks(system.server_node.array, "ionode")
        for node in system.compute:
            if node.array is not None:
                yield from disks(node.array, node.name)

        nets = {id(system.cluster.comm_network): ("comm", system.cluster.comm_network)}
        nets[id(system.cluster.data_network)] = (
            "data" if not system.cluster.shared_network else "comm",
            system.cluster.data_network,
        )
        for label, net in nets.values():
            for direction, links in (("up", net.uplinks), ("down", net.downlinks)):
                for name, link in links.items():
                    yield "network", f"{label}:{name}:{direction}", {
                        "busy_s": link.busy_s,
                        "bytes_carried": link.bytes_carried,
                        "messages": link.messages,
                    }

        filesystems = [system.export, *system.local_fs.values()]
        for fs in filesystems:
            yield "localfs", fs.name, _scalar_fields(fs.stats)
            yield "cache", fs.cache.name, _scalar_fields(fs.cache.stats)
        yield "nfs", system.nfs_server.name, _scalar_fields(system.nfs_server.stats)
        for mount in system.nfs_mounts.values():
            yield "nfs", mount.name, _scalar_fields(mount.stats)
            yield "cache", mount.cache.name, _scalar_fields(mount.cache.stats)

    def _iter_disks_and_links(self):
        system = self.system
        yield from system.server_node.array.disks
        for node in system.compute:
            if node.array is not None:
                yield from node.array.disks
        nets = {id(system.cluster.comm_network): system.cluster.comm_network}
        nets[id(system.cluster.data_network)] = system.cluster.data_network
        for net in nets.values():
            yield from net.uplinks.values()
            yield from net.downlinks.values()

    # -- lifecycle -----------------------------------------------------
    def snapshot(self) -> CounterSnapshot:
        """Capture every component counter (cheap: one flat dict)."""
        values = {}
        for level, scope, stats in self._components():
            for name, v in stats.items():
                values[(level, scope, name)] = v
        return CounterSnapshot(t_s=self.system.env.now, values=values)

    def begin_run(self, window_s: Optional[float] = None, sample: bool = True) -> None:
        """Baseline the counters, mark the measured interval on every
        disk and link, and start the windowed utilization sampler."""
        from ..core.utilization import capture_utilization

        self.baseline = self.snapshot()
        self.final = None
        self._busy_baseline = capture_utilization(self.system)
        for resource in self._iter_disks_and_links():
            resource.mark_measurement()
        if sample:
            from .sampler import UtilizationSampler

            self.sampler = UtilizationSampler(self.system, window_s=window_s)
            self.sampler.start()

    def end_run(self) -> None:
        """Freeze the run: final snapshot + flush the sampler's tail."""
        if self.sampler is not None:
            self.sampler.stop()
        self.final = self.snapshot()

    # -- results -------------------------------------------------------
    def deltas(self) -> dict:
        """Per-level counter totals accrued during the measured run.

        ``{level: {counter: value}}`` with same-named counters summed
        across a level's components.  The iolib level comes straight
        from the world's per-run :class:`IOLibStats`.
        """
        if self.baseline is None:
            raise RuntimeError("begin_run() was never called")
        final = self.final if self.final is not None else self.snapshot()
        out: dict[str, dict] = {level: {} for level in LEVELS}
        for (level, _scope, name), d in final.diff(self.baseline).items():
            bucket = out[level]
            bucket[name] = bucket.get(name, 0) + d
        iostats = getattr(self.system, "last_iostats", None)
        if iostats is not None:
            out["iolib"] = iostats.counters()
        return out

    def histograms(self) -> dict:
        """Per-level histograms (currently the iolib request-size and
        latency distributions)."""
        iostats = getattr(self.system, "last_iostats", None)
        return {"iolib": iostats.histograms() if iostats is not None else {}}

    def utilization_report(self):
        """Busy fractions over the measured interval, with the
        sampler's windows attached (when one ran)."""
        from ..core.utilization import snapshot_utilization

        report = snapshot_utilization(self.system, baseline=self._busy_baseline)
        if self.sampler is not None:
            report.windows = list(self.sampler.windows)
        return report
