"""Windowed utilization sampling inside the running simulation.

A cumulative busy fraction answers *whether* a resource limited the
run; a time-series answers *when* — an application alternating
compute and I/O phases (BT-IO full) shows near-idle windows between
disk-saturated ones, which one end-of-run number averages away.

:class:`UtilizationSampler` is an ordinary DES process: every
``window_s`` of simulated time it diffs the busy counters against the
previous sample and stores a
:class:`~repro.core.utilization.UtilizationWindow`.  It only *reads*
simulation state, so an instrumented run's timings are identical to
an uninstrumented one.  When the window count hits ``max_windows``
adjacent windows merge and the width doubles, bounding memory and
sampling cost for arbitrarily long runs.
"""

from __future__ import annotations

from typing import Optional

from ..core.utilization import UtilizationWindow, _iter_busy_holders

__all__ = ["UtilizationSampler"]

#: default sampling window in simulated seconds
DEFAULT_WINDOW_S = 0.05


class UtilizationSampler:
    """Samples per-window busy deltas of every disk and link."""

    def __init__(
        self,
        system,
        window_s: Optional[float] = None,
        max_windows: int = 256,
    ):
        if window_s is not None and window_s <= 0:
            raise ValueError("window_s must be positive")
        if max_windows < 2:
            raise ValueError("max_windows must be at least 2")
        self.system = system
        self.window_s = window_s or DEFAULT_WINDOW_S
        self.max_windows = max_windows
        self.windows: list[UtilizationWindow] = []
        self._holders = ()
        self._last_t = 0.0
        self._last_vals: list[float] = []
        self._active = False

    def start(self) -> None:
        """Begin sampling from the current simulated time.

        The disk/link set is resolved once here — the topology is fixed
        after the system is built, so each window only re-reads the busy
        counters instead of re-enumerating (and re-naming) every
        resource.
        """
        self._holders = tuple(_iter_busy_holders(self.system))
        self._last_t = self.system.env.now
        self._last_vals = [h.busy_s for _, _, h in self._holders]
        self._active = True
        self.system.env.process(self._run(), name="obs.sampler")

    def stop(self) -> None:
        """Stop sampling and flush the partial tail window."""
        if not self._active:
            return
        self._active = False
        self._flush()

    def _run(self):
        env = self.system.env
        while self._active:
            yield env.timeout(self.window_s)
            if not self._active:
                # woken after stop() (e.g. the program event fired
                # first and the caller flushed the tail): nothing to do
                return
            self._flush()
            if len(self.windows) >= self.max_windows:
                self._merge_pairs()

    def _flush(self) -> None:
        now = self.system.env.now
        if now <= self._last_t:
            # zero-width window: no simulated time passed, so the busy
            # counters cannot have moved either
            return
        busy = {}
        kinds = {}
        vals = []
        last_vals = self._last_vals
        for i, (name, kind, holder) in enumerate(self._holders):
            total = holder.busy_s
            vals.append(total)
            delta = total - last_vals[i]
            if delta > 0.0:
                busy[name] = delta
                kinds[name] = kind
        self.windows.append(UtilizationWindow(self._last_t, now, busy, kinds))
        self._last_t = now
        self._last_vals = vals

    def _merge_pairs(self) -> None:
        """Halve the series by merging adjacent windows; double the
        width for windows still to come."""
        merged = []
        for i in range(0, len(self.windows), 2):
            pair = self.windows[i : i + 2]
            if len(pair) == 1:
                merged.append(pair[0])
                continue
            a, b = pair
            busy = dict(a.busy)
            for name, d in b.busy.items():
                busy[name] = busy.get(name, 0.0) + d
            kinds = {**a.kinds, **b.kinds}
            merged.append(UtilizationWindow(a.t0_s, b.t1_s, busy, kinds))
        self.windows = merged
        self.window_s *= 2.0
