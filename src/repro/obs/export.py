"""Run-trace exporters: JSONL event streams and Chrome trace format.

The MPI-IO layer already captures an
:class:`~repro.tracing.events.IOEvent` per call; these writers turn
that stream into files other tools read:

* **JSONL** — one JSON object per line, schema-stable key order, a
  ``meta`` header record first.  Round-trips through
  :func:`read_events_jsonl`.
* **Chrome trace format** — the catapult JSON loaded by
  ``chrome://tracing`` / Perfetto: one process per configuration, one
  thread per rank, a complete ("X") event per I/O call, phase-replay
  observability in ``otherData``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from ..tracing.events import IOEvent

__all__ = [
    "EVENT_KEYS",
    "TRACE_SCHEMA",
    "event_record",
    "write_events_jsonl",
    "read_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "read_chrome_trace",
]

TRACE_SCHEMA = "repro.trace/1"

#: field order of every exported I/O record — append-only; consumers
#: key on these names
EVENT_KEYS = (
    "rank",
    "op",
    "offset",
    "nbytes",
    "count",
    "stride",
    "t_start",
    "t_end",
    "path",
    "collective",
)


def event_record(event: IOEvent, config: Optional[str] = None) -> dict:
    """One JSONL record for an event (insertion order = EVENT_KEYS)."""
    rec = {"type": "io"}
    if config is not None:
        rec["config"] = config
    for key in EVENT_KEYS:
        rec[key] = getattr(event, key)
    return rec


def write_events_jsonl(path, runs: dict, meta: Optional[dict] = None) -> int:
    """Write ``{config: {"events": [IOEvent, ...], ...}}`` as JSONL.

    The first line is a ``meta`` record carrying the schema tag; every
    following line is one I/O event.  Returns the event count.
    """
    lines = [json.dumps({"type": "meta", "schema": TRACE_SCHEMA, **(meta or {})})]
    n = 0
    for config, run in runs.items():
        for event in run.get("events") or []:
            lines.append(json.dumps(event_record(event, config=config)))
            n += 1
    Path(path).write_text("\n".join(lines) + "\n")
    return n


def read_events_jsonl(path) -> tuple[dict, dict]:
    """Round-trip reader: ``(meta, {config: [IOEvent, ...]})``."""
    meta: dict = {}
    runs: dict[str, list[IOEvent]] = {}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        kind = rec.pop("type", "io")
        if kind == "meta":
            meta = rec
            continue
        config = rec.pop("config", "")
        runs.setdefault(config, []).append(
            IOEvent(**{key: rec[key] for key in EVENT_KEYS})
        )
    return meta, runs


def chrome_trace(runs: dict, app: Optional[str] = None) -> dict:
    """Build the Chrome-trace-format document for a set of runs.

    ``runs`` maps configuration name to ``{"events": [IOEvent, ...],
    "replay": <observability dict or None>}``.  Timestamps are
    microseconds of simulated time; one pid per configuration, one
    tid per rank.
    """
    trace_events = []
    other = {"schema": TRACE_SCHEMA}
    if app is not None:
        other["app"] = app
    for pid, (config, run) in enumerate(runs.items()):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": config},
            }
        )
        seen_ranks = set()
        for event in run.get("events") or []:
            if event.rank not in seen_ranks:
                seen_ranks.add(event.rank)
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": event.rank,
                        "args": {"name": f"rank {event.rank}"},
                    }
                )
            trace_events.append(
                {
                    "name": f"{event.op} {event.path}",
                    "cat": "io.collective" if event.collective else "io",
                    "ph": "X",
                    "ts": event.t_start * 1e6,
                    "dur": event.duration * 1e6,
                    "pid": pid,
                    "tid": event.rank,
                    "args": {
                        "offset": event.offset,
                        "nbytes": event.nbytes,
                        "count": event.count,
                        "stride": event.stride,
                    },
                }
            )
        replay = run.get("replay")
        if replay is not None:
            other.setdefault("replay", {})[config] = replay
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path, runs: dict, app: Optional[str] = None) -> dict:
    doc = chrome_trace(runs, app=app)
    Path(path).write_text(json.dumps(doc, indent=1) + "\n")
    return doc


def read_chrome_trace(path) -> dict:
    return json.loads(Path(path).read_text())
