"""The ``repro report`` document: one JSON/CSV-exportable dict per run.

Assembles what the instrumented evaluation produced — per-level
counters, windowed utilization, phase-replay observability, and the
bottleneck verdicts of the used-percentage analysis — into a single
schema-stable document.

The ``verdicts`` section carries only the used-percentage bottleneck
levels (paper §III-C2); it is the part guaranteed byte-identical
between phase-fastpath and full-replay runs.  Physical counters
legitimately differ under the fastpath: extrapolated phase
occurrences charge time without touching disks or links, so busy
counters only cover the simulated occurrences.
"""

from __future__ import annotations

import json
from typing import Optional

from ..units import fmt_bytes

__all__ = [
    "REPORT_SCHEMA",
    "summarize_run",
    "build_run_report",
    "report_to_csv",
    "render_run_report",
]

REPORT_SCHEMA = "repro.run-report/1"


def summarize_run(r) -> dict:
    """The deterministic run scalars of one EvaluationReport.

    Simulated-time quantities only — no ``wall_s``, no host state — so
    the dict is a pure function of (configuration, workload, faults)
    and safe to byte-compare across runs and machines.  The sweep
    result store is built on exactly this property.
    """
    return {
        "execution_time_s": r.execution_time_s,
        "io_time_s": r.io_time_s,
        "io_fraction": r.io_fraction,
        "bytes_read": r.bytes_read,
        "bytes_written": r.bytes_written,
        "throughput_Bps": r.throughput_Bps,
    }


def _utilization_dict(u) -> dict:
    """JSON form of a core.utilization.UtilizationReport."""
    return {
        "interval_s": u.interval_s,
        "resources": [
            {
                "name": r.name,
                "kind": r.kind,
                "busy_s": r.busy_s,
                "utilization": r.utilization,
            }
            for r in u.resources
        ],
        "windows": [
            {
                "t0_s": w.t0_s,
                "t1_s": w.t1_s,
                "bottleneck": w.bottleneck(),
                "top": [[name, util] for name, util in w.hottest(n=3)],
            }
            for w in u.windows
        ],
    }


def build_run_report(app_name: str, reports: dict, meta: Optional[dict] = None) -> dict:
    """Build the report document from ``Methodology.evaluate`` output.

    ``reports`` maps configuration name to an (ideally instrumented)
    :class:`~repro.core.evaluation.EvaluationReport`; uninstrumented
    reports still contribute their run metrics and verdicts.
    """
    configs = {}
    verdicts = {}
    for name, r in reports.items():
        verdict = {"write": r.write_bottleneck(), "read": r.read_bottleneck()}
        verdicts[name] = verdict
        entry = {
            "run": {**summarize_run(r), "wall_s": r.wall_s},
            "verdicts": verdict,
        }
        if r.metrics is not None:
            entry["counters"] = r.metrics["counters"]
            entry["histograms"] = r.metrics["histograms"]
        if r.utilization is not None:
            entry["utilization"] = _utilization_dict(r.utilization)
        if r.replay_phases is not None:
            replay = dict(r.replay_phases)
            if r.replay is not None and r.wall_s is not None:
                replay["estimated_saved_wall_s"] = round(
                    r.replay.estimated_saved_wall_s(r.wall_s), 4
                )
            entry["replay"] = replay
        if r.sanitizer is not None:
            entry["sanitizer"] = r.sanitizer
        if r.faults is not None:
            entry["faults"] = r.faults
        configs[name] = entry
    doc = {
        "schema": REPORT_SCHEMA,
        "app": app_name,
        "configs": configs,
        "verdicts": verdicts,
    }
    if meta:
        doc["meta"] = meta
    return doc


def _flatten(prefix: str, value, rows: list) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, rows)
    elif isinstance(value, (list, tuple)):
        for i, v in enumerate(value):
            _flatten(f"{prefix}[{i}]", v, rows)
    else:
        rows.append((prefix, value))


def report_to_csv(report: dict) -> str:
    """Flatten the report into ``config,key,value`` CSV rows."""
    lines = ["config,key,value"]
    for config, entry in report.get("configs", {}).items():
        rows: list = []
        _flatten("", entry, rows)
        for key, value in rows:
            v = "" if value is None else json.dumps(value) if isinstance(value, str) else value
            lines.append(f"{config},{key},{v}")
    return "\n".join(lines) + "\n"


#: shared with the darshan-style summary renderer (repro.units)
_fmt_bytes = fmt_bytes


def render_run_report(reports: dict) -> str:
    """Human-readable summary printed by ``repro report``.

    Takes the raw ``Methodology.evaluate`` output (EvaluationReport
    objects), so it can reuse the utilization renderers.
    """
    lines = []
    for name, r in reports.items():
        lines.append(f"=== {name} ===")
        lines.append(
            f"run: exec {r.execution_time_s:.2f}s  io {r.io_time_s:.2f}s "
            f"({r.io_fraction * 100:.0f}%)  wrote {_fmt_bytes(r.bytes_written)} "
            f"read {_fmt_bytes(r.bytes_read)}"
        )
        lines.append(
            f"verdicts: write-bottleneck={r.write_bottleneck()} "
            f"read-bottleneck={r.read_bottleneck()}"
        )
        if r.metrics is not None:
            lines.append("per-level counters:")
            for level, counters in r.metrics["counters"].items():
                if not counters:
                    continue
                body = "  ".join(
                    f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in sorted(counters.items())
                )
                lines.append(f"  {level:<9}{body}")
        if r.utilization is not None:
            lines.append(r.utilization.render(top=5))
            if r.utilization.windows:
                lines.append(r.utilization.render_windows())
        if r.replay_phases is not None:
            rp = r.replay_phases
            saved = (
                r.replay.estimated_saved_wall_s(r.wall_s)
                if r.replay is not None and r.wall_s is not None
                else 0.0
            )
            lines.append(
                f"phase replay: {rp['phases']} phases, "
                f"{rp['simulated']} simulated + {rp['extrapolated']} extrapolated "
                f"occurrences ({rp['extrapolated_fraction'] * 100:.0f}% extrapolated), "
                f"{rp['fallback_phases']} fallback; "
                f"fully-replayed phases {rp['phases_fully_simulated']}, "
                f"extrapolated phases {rp['phases_extrapolated']}; "
                f"tol {rp['rel_tol']}; est. saved {saved:.2f}s wall"
            )
        if r.sanitizer is not None:
            nv = len(r.sanitizer.get("violations", []))
            lines.append(
                f"sanitizer: {'clean' if nv == 0 else f'{nv} VIOLATION(S)'} "
                f"({r.sanitizer.get('events_checked', 0)} events checked)"
            )
            for v in r.sanitizer.get("violations", []):
                lines.append(f"  [{v['check']}] t={v['t_s']:.6f}s: {v['message']}")
        lines.append("")
    return "\n".join(lines)
