"""Observability: per-level run metrics, windowed utilization, traces.

The paper's evaluation phase locates "the utilization and possible
points of inefficiency in the I/O path" (§III-C); this package turns
the simulator's raw counters into that evidence:

* :class:`~repro.obs.metrics.MetricsRegistry` — per-level counter and
  histogram collection with snapshot/diff semantics (per-run deltas
  on warm-started systems, not lifetime totals);
* :class:`~repro.obs.sampler.UtilizationSampler` — windowed busy-time
  sampling during the simulation, feeding the per-window bottleneck
  attribution of :class:`~repro.core.utilization.UtilizationReport`;
* :mod:`~repro.obs.export` — JSONL and Chrome-trace-format exporters
  for the MPI-IO event stream;
* :mod:`~repro.obs.runreport` — the ``repro report`` document:
  counters + utilization + phase-replay observability as JSON/CSV.
"""

from .metrics import LEVELS, CounterSnapshot, Histogram, IOLibStats, MetricsRegistry
from .sampler import UtilizationSampler

__all__ = [
    "LEVELS",
    "CounterSnapshot",
    "Histogram",
    "IOLibStats",
    "MetricsRegistry",
    "UtilizationSampler",
]
