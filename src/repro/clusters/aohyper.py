"""The paper's cluster *Aohyper* (§III-A1).

8 nodes of AMD Athlon 64 X2 dual-core 3800+, 2 GB RAM, 150 GB local
disk, ext4 local filesystem, NFS global filesystem.  The NFS server
carries a RAID 1 (2 disks, 230 GB) and a RAID 5 (5 disks,
stripe = 256 KB, 917 GB), both with write-back cache; two Gigabit
Ethernet networks, one for communication and one for data.

Three I/O configurations are evaluated (paper Fig. 4): JBOD (single
disk, no redundancy), RAID 1 (disk + mirror) and RAID 5 (five
disks).  The configuration applies to the device level under test —
both the compute nodes' software-RAID local storage and the NFS
server's array.
"""

from __future__ import annotations

from ..simengine import Environment
from ..hardware import DiskSpec, NodeSpec, RAIDConfig, RAIDLevel
from ..storage.base import GiB, KiB, MiB
from .builder import System, SystemConfig, build_system

__all__ = [
    "AOHYPER_CONFIGS",
    "AOHYPER_EXTRA_CONFIGS",
    "aohyper_config",
    "build_aohyper",
]

#: 150 GB SATA disk of the period
_DISK = DiskSpec(capacity_bytes=150 * 1000 * MiB)

#: AMD Athlon 64 X2 3800+: 2 cores, 2 GB RAM
_NODE = NodeSpec(cores=2, core_gflops=4.0, ram_bytes=2 * GiB)

AOHYPER_CONFIGS = ("jbod", "raid1", "raid5")

#: additional organisations beyond the paper's three, opt-in by name
#: (not part of the default sweep, so cached tables and committed perf
#: baselines over AOHYPER_CONFIGS stay comparable).  ``raid10`` exists
#: for degraded-mode comparisons: equal-capacity mirrored stripes whose
#: rebuild loads one spindle where RAID 5's loads the whole array.
AOHYPER_EXTRA_CONFIGS = ("raid10",)


def _device(config_name: str) -> RAIDConfig:
    if config_name == "jbod":
        return RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=_DISK)
    if config_name == "raid1":
        return RAIDConfig(level=RAIDLevel.RAID1, ndisks=2, disk=_DISK)
    if config_name == "raid5":
        return RAIDConfig(
            level=RAIDLevel.RAID5, ndisks=5, stripe_bytes=256 * KiB, disk=_DISK
        )
    if config_name == "raid10":
        return RAIDConfig(
            level=RAIDLevel.RAID10, ndisks=4, stripe_bytes=256 * KiB, disk=_DISK
        )
    known = AOHYPER_CONFIGS + AOHYPER_EXTRA_CONFIGS
    raise ValueError(f"unknown Aohyper configuration {config_name!r} (want one of {known})")


def aohyper_config(device: str = "raid5") -> SystemConfig:
    """The :class:`SystemConfig` for one of Aohyper's I/O configurations."""
    dev = _device(device)
    return SystemConfig(
        name=f"aohyper-{device}",
        n_compute=8,
        compute_spec=_NODE,
        server_spec=_NODE,
        local_device=dev,
        server_device=dev,
        separate_data_network=True,
    )


def build_aohyper(env: Environment, device: str = "raid5") -> System:
    """Build cluster Aohyper under the given device configuration."""
    return build_system(env, aohyper_config(device))
