"""Cluster models: the paper's Aohyper and cluster A, plus a builder API."""

from .aohyper import (
    AOHYPER_CONFIGS,
    AOHYPER_EXTRA_CONFIGS,
    aohyper_config,
    build_aohyper,
)
from .builder import System, SystemConfig, build_system
from .cluster_a import build_cluster_a, cluster_a_config

__all__ = [
    "AOHYPER_CONFIGS",
    "AOHYPER_EXTRA_CONFIGS",
    "aohyper_config",
    "build_aohyper",
    "System",
    "SystemConfig",
    "build_system",
    "build_cluster_a",
    "cluster_a_config",
]
