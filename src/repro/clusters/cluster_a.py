"""The paper's *cluster A* (§IV).

32 compute nodes of 2× dual-core Intel Xeon 3.00 GHz (4 cores),
12 GB RAM, 160 GB SATA disk, dual Gigabit Ethernet.  The front-end
node is the NFS server: dual-core Xeon 2.66 GHz, 8 GB RAM and a
1.8 TB RAID 5, dual Gigabit Ethernet.

Unlike Aohyper, cluster A has a single I/O configuration: shared
files through NFS on the RAID 5 front-end, node-local JBOD disks for
local/independent accesses.
"""

from __future__ import annotations

from ..simengine import Environment
from ..hardware import DiskSpec, NodeSpec, RAIDConfig, RAIDLevel
from ..storage.base import GiB, KiB, MiB
from .builder import System, SystemConfig, build_system

__all__ = ["cluster_a_config", "build_cluster_a"]

#: 160 GB local SATA disks
_LOCAL_DISK = DiskSpec(capacity_bytes=160 * 1000 * MiB)
#: server spindles behind the 1.8 TB RAID 5 (5 x 450 GB)
_SERVER_DISK = DiskSpec(capacity_bytes=450 * 1000 * MiB)

_COMPUTE = NodeSpec(cores=4, core_gflops=6.0, ram_bytes=12 * GiB)
_SERVER = NodeSpec(cores=2, core_gflops=5.3, ram_bytes=8 * GiB)


def cluster_a_config() -> SystemConfig:
    return SystemConfig(
        name="cluster-a",
        n_compute=32,
        compute_spec=_COMPUTE,
        server_spec=_SERVER,
        local_device=RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=_LOCAL_DISK),
        server_device=RAIDConfig(
            level=RAIDLevel.RAID5, ndisks=5, stripe_bytes=256 * KiB, disk=_SERVER_DISK
        ),
        separate_data_network=True,
    )


def build_cluster_a(env: Environment) -> System:
    """Build cluster A."""
    return build_system(env, cluster_a_config())
