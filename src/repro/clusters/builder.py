"""Assemble full simulated systems: nodes + networks + storage + mounts.

A :class:`System` is everything the methodology operates on — the
paper's "I/O configuration": compute nodes with local filesystems, an
I/O node exporting a RAID-backed filesystem over NFS, and one or two
Gigabit Ethernet fabrics.  Every node gets a VFS with ``/local``
(its own disks) and ``/nfs`` (the shared export) so workloads choose
the access type (paper Table I: Local / Global) purely by path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simengine import Environment
from ..hardware import (
    Cluster,
    LinkSpec,
    Network,
    Node,
    NodeSpec,
    RAIDArray,
    RAIDConfig,
    GIGABIT,
)
from ..storage import LocalFS, LocalFSSpec, NFSMount, NFSServer, NFSSpec, VFS

__all__ = ["SystemConfig", "System", "build_system"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything configurable about a cluster's I/O architecture.

    These fields are exactly the paper's "configurable factors"
    (§III-B1): filesystems, networks, buffer/cache, device
    organisation, I/O node placement.
    """

    name: str = "cluster"
    n_compute: int = 8
    compute_spec: NodeSpec = NodeSpec()
    server_spec: NodeSpec = NodeSpec()
    #: device organisation of each compute node's local storage
    local_device: RAIDConfig = RAIDConfig()
    #: device organisation behind the NFS export
    server_device: RAIDConfig = RAIDConfig()
    link: LinkSpec = GIGABIT
    #: dedicated data network (False = file traffic shares the MPI fabric)
    separate_data_network: bool = True
    nfs: NFSSpec = NFSSpec()
    localfs: LocalFSSpec = LocalFSSpec()
    #: disable a node-level page cache by shrinking it (factor: cache state)
    client_cache_enabled: bool = True
    server_cache_enabled: bool = True

    def fingerprint(self) -> str:
        """Stable content hash of every configurable factor.

        Used to key the on-disk characterization cache
        (:mod:`repro.core.tablecache`): two configs with identical
        factors share cached tables, and any field change produces a
        new key.
        """
        from ..fingerprint import fingerprint

        return fingerprint(self)


class System:
    """A built, runnable I/O configuration."""

    def __init__(self, env: Environment, config: SystemConfig):
        self.env = env
        self.config = config
        self.cluster = Cluster(env, config.name)
        names = [f"n{i}" for i in range(config.n_compute)]
        server_name = "ionode"

        comm = Network(env, names + [server_name], config.link, name=f"{config.name}.comm")
        if config.separate_data_network:
            data = Network(env, names + [server_name], config.link, name=f"{config.name}.data")
        else:
            data = comm
        self.cluster.set_networks(comm, data)

        # --- I/O node -------------------------------------------------
        self.server_node = Node(env, server_name, config.server_spec, storage=config.server_device)
        self.cluster.add_node(self.server_node)
        from ..storage.cache import CacheSpec

        server_cache = None
        if not config.server_cache_enabled:
            server_cache = CacheSpec(capacity_bytes=64 * 1024 * 1024)
        self.export = LocalFS(
            env,
            self.server_node,
            self.server_node.array,
            spec=config.localfs,
            cache_spec=server_cache,
            name=f"{config.name}.export",
        )
        self.nfs_server = NFSServer(env, self.server_node, self.export, data, config.nfs)

        # --- compute nodes -------------------------------------------
        self.compute: list[Node] = []
        self.local_fs: dict[str, LocalFS] = {}
        self.nfs_mounts: dict[str, NFSMount] = {}
        for nm in names:
            node = Node(env, nm, config.compute_spec, storage=config.local_device)
            self.cluster.add_node(node)
            self.compute.append(node)
            lfs = LocalFS(env, node, node.array, spec=config.localfs, name=f"{nm}.localfs")
            client_cache = None
            if not config.client_cache_enabled:
                client_cache = CacheSpec(capacity_bytes=16 * 1024 * 1024)
            mount = NFSMount(env, node, self.nfs_server, cache_spec=client_cache)
            vfs = VFS(env, name=f"{nm}.vfs")
            vfs.mount("/local", lfs)
            vfs.mount("/nfs", mount)
            node.vfs = vfs
            self.local_fs[nm] = lfs
            self.nfs_mounts[nm] = mount
        # the I/O node sees its export as a local path too
        server_vfs = VFS(env, name=f"{server_name}.vfs")
        server_vfs.mount("/nfs", self.export)
        server_vfs.mount("/local", self.export)
        self.server_node.vfs = server_vfs

        #: replay settings applied to worlds built over this system
        #: (None = per-world :meth:`ReplaySettings.from_env` default)
        self.replay_settings = None
        #: accelerator of the most recent world (its stats outlive the run)
        self.last_replay = None
        #: MPI-IO layer counters of the most recent world
        self.last_iostats = None
        #: busy-counter baseline for interval utilization queries —
        #: re-captured on every :meth:`reset`, so a warm-started
        #: system reports per-run utilization, not lifetime totals
        self.counters_baseline = None
        self.rebaseline()

    def rebaseline(self) -> None:
        """Capture the current busy counters as the utilization
        baseline (see :func:`repro.core.utilization.capture_utilization`)."""
        from ..core.utilization import capture_utilization

        self.counters_baseline = capture_utilization(self)

    # -- convenience -----------------------------------------------------
    def world(self, nprocs: int, placement: str = "block", tracer=None, io_hints=None):
        """An :class:`~repro.mpi.sim.MPIWorld` over this system."""
        from ..mpi.sim import MPIWorld

        w = MPIWorld(
            self.env, self.cluster, nprocs, placement=placement, tracer=tracer,
            io_hints=io_hints, replay_settings=self.replay_settings,
        )
        self.last_replay = w.replay
        self.last_iostats = w.iostats
        return w

    def reset(self) -> None:
        """Return every mutable component to its just-built state.

        Warm-start support: evaluating N workloads on one configuration
        reuses a single built topology instead of reconstructing nodes,
        networks, disks and filesystems per run.  After ``reset()`` the
        system is indistinguishable from a fresh :func:`build_system`
        of the same config (same simulated timings, same determinism),
        just without the construction cost.
        """
        self.env.reset()
        # drop any fault-injection RNG registry installed on the
        # environment (instance attribute shadowing the class default)
        self.env.__dict__.pop("rng", None)
        self.export.reset()
        self.nfs_server.reset()
        self.server_node.reset()
        for node in self.compute:
            node.reset()
        for lfs in self.local_fs.values():
            lfs.reset()
        for mount in self.nfs_mounts.values():
            mount.reset()
        self.cluster.comm_network.reset()
        if not self.cluster.shared_network:
            self.cluster.data_network.reset()
        self.last_replay = None
        self.last_iostats = None
        self.rebaseline()

    def node(self, name: str) -> Node:
        return self.cluster.node(name)

    def __repr__(self) -> str:  # pragma: no cover
        c = self.config
        return (
            f"<System {c.name!r} {c.n_compute} nodes, server={c.server_device.level.value}"
            f" x{c.server_device.ndisks}, local={c.local_device.level.value}>"
        )


def build_system(env: Environment, config: SystemConfig) -> System:
    """Build a system from its configuration (the main factory)."""
    return System(env, config)


#: per-process pool of built systems, keyed by config fingerprint
_WARM_SYSTEMS: dict[str, System] = {}


def warm_system(config: SystemConfig) -> System:
    """A reset, ready-to-run system for ``config``, reusing a
    previously built topology for the same configuration when one
    exists in this process.

    The pooled system owns its :class:`Environment`; callers must not
    share it across concurrent runs (the evaluation workers are
    separate processes, so each keeps its own pool).
    """
    key = config.fingerprint()
    system = _WARM_SYSTEMS.get(key)
    if system is None:
        system = _WARM_SYSTEMS[key] = build_system(Environment(), config)
    else:
        system.reset()
    return system
