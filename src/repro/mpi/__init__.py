"""Simulated MPI: world/ranks, collectives, MPI-IO with collective buffering."""

from .io import IOHints, MPIFile, open_collective, open_self
from .sim import MPIWorld, RankContext, Rendezvous

__all__ = [
    "IOHints",
    "MPIFile",
    "open_collective",
    "open_self",
    "MPIWorld",
    "RankContext",
    "Rendezvous",
]
