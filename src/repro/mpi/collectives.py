"""Cost models for MPI collective operations.

Each algorithm is a generator run by the *last* rank to arrive at the
call site (see :class:`~repro.mpi.sim.Rendezvous`); it advances
simulated time by driving real transfers over the cluster's
communication network, so collectives contend with everything else on
the fabric (including NFS traffic when the cluster shares one
network).

Algorithms follow the classic MPICH choices:

* ``barrier`` — dissemination, ⌈log₂p⌉ rounds of empty messages;
* ``bcast`` — binomial tree;
* ``reduce``/``allreduce`` — binomial tree + (for allreduce) bcast,
  with the arithmetic charged at the reducing nodes;
* ``gather``/``allgather`` — direct to root / ring;
* ``alltoall`` — pairwise exchange rounds.
"""

from __future__ import annotations

from math import ceil, log2

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "alltoall",
]

_ENVELOPE = 64
#: flops per byte for reduction arithmetic (double-precision sum)
_REDUCE_FLOP_PER_BYTE = 0.125


def _net(world):
    return world.cluster.comm_network


def _rounds(p: int) -> int:
    return max(1, ceil(log2(max(p, 2))))


def barrier(world, _args):
    """Dissemination barrier: log p rounds of envelope-sized messages."""
    env = world.env
    p = world.nprocs
    net = _net(world)
    for k in range(_rounds(p)):
        evs = []
        for r in range(p):
            partner = (r + (1 << k)) % p
            src = world.node_of(r).name
            dst = world.node_of(partner).name
            evs.append(net.transfer(src, dst, _ENVELOPE))
        yield env.all_of(evs)
    return None


def bcast(world, data_by_rank):
    """Binomial-tree broadcast; returns the root's payload."""
    env = world.env
    p = world.nprocs
    net = _net(world)
    entries = [d for d in data_by_rank.values() if d is not None]
    root, nbytes, payload = entries[0] if entries else (0, 0, None)
    for e in entries:
        if e[2] is not None:  # the root's entry carries the payload
            root, nbytes, payload = e
            break
    # ranks are renumbered so the root is 0; round k doubles the holders
    have = 1
    while have < p:
        senders = min(have, p - have)
        evs = []
        for s in range(senders):
            src = world.node_of((root + s) % p).name
            dst = world.node_of((root + have + s) % p).name
            evs.append(net.transfer(src, dst, nbytes + _ENVELOPE))
        yield env.all_of(evs)
        have += senders
    return payload


def reduce(world, data_by_rank):
    """Binomial-tree reduction toward the root."""
    env = world.env
    p = world.nprocs
    net = _net(world)
    root, nbytes = next(iter(data_by_rank.values()))
    remaining = p
    while remaining > 1:
        pairs = remaining // 2
        evs = []
        for s in range(pairs):
            src = world.node_of((root + remaining - 1 - s) % p).name
            dst = world.node_of((root + s) % p).name
            evs.append(net.transfer(src, dst, nbytes + _ENVELOPE))
        yield env.all_of(evs)
        # arithmetic at the receivers
        any_node = world.node_of(root)
        yield env.timeout(any_node.compute_time(nbytes * _REDUCE_FLOP_PER_BYTE))
        remaining -= pairs
    return None


def allreduce(world, args_by_rank):
    """Reduce + broadcast (the bandwidth-equivalent of recursive doubling)."""
    nbytes = next(iter(args_by_rank.values()))
    yield world.env.process(reduce(world, {0: (0, nbytes)}))
    yield world.env.process(bcast(world, {0: (0, nbytes, None)}))
    return None


def gather(world, data_by_rank):
    """Everyone sends its block straight to the root (root link serialises)."""
    env = world.env
    p = world.nprocs
    net = _net(world)
    root, nbytes = next(iter(data_by_rank.values()))
    evs = []
    for r in range(p):
        if r == root:
            continue
        evs.append(
            net.transfer(world.node_of(r).name, world.node_of(root).name, nbytes + _ENVELOPE)
        )
    if evs:
        yield env.all_of(evs)
    return None


def allgather(world, args_by_rank):
    """Ring allgather: p-1 rounds, each rank forwarding one block."""
    env = world.env
    p = world.nprocs
    net = _net(world)
    nbytes = next(iter(args_by_rank.values()))
    for _ in range(p - 1):
        evs = [
            net.transfer(world.node_of(r).name, world.node_of((r + 1) % p).name, nbytes + _ENVELOPE)
            for r in range(p)
        ]
        yield env.all_of(evs)
    return None


def alltoall(world, args_by_rank):
    """Pairwise-exchange all-to-all: p-1 rounds of disjoint pairs."""
    env = world.env
    p = world.nprocs
    net = _net(world)
    nbytes = next(iter(args_by_rank.values()))
    for k in range(1, p):
        evs = []
        for r in range(p):
            partner = r ^ k if (r ^ k) < p else None
            if partner is None:
                continue
            evs.append(
                net.transfer(world.node_of(r).name, world.node_of(partner).name, nbytes + _ENVELOPE)
            )
        if evs:
            yield env.all_of(evs)
    return None
