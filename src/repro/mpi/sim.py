"""Simulated MPI: world, ranks, point-to-point and rendezvous machinery.

A *program* is a generator function ``prog(mpi)`` executed once per
rank as a DES process; ``mpi`` is that rank's :class:`RankContext`,
exposing a deliberately mpi4py-flavoured API (``send``/``recv``/
``barrier``/``bcast``/... and :meth:`RankContext.file_open` for
MPI-IO).  Messages move over the cluster's *communication* network;
file data moves over its *data* network (or the same one, when the
cluster is configured with a single shared fabric — one of the
paper's configurable factors).

Collective calls synchronise through a per-communicator
:class:`Rendezvous`: SPMD programs reach collective call sites in the
same order, so each site gets a sequence number; the last rank to
arrive executes the cost model and releases everyone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..simengine import Environment, Event, Store
from ..hardware.node import Cluster, Node

__all__ = ["MPIWorld", "RankContext", "Rendezvous"]

#: bytes of an eager-protocol envelope
_ENVELOPE = 64


@dataclass
class _Point:
    """One collective call site: arrival barrier + completion."""

    all_arrived: Event
    done: Event
    data: dict[int, Any] = field(default_factory=dict)
    arrivals: int = 0


class Rendezvous:
    """Sequence-numbered meeting points for collective operations."""

    def __init__(self, env: Environment, nprocs: int):
        self.env = env
        self.nprocs = nprocs
        self._points: dict[tuple[str, int], _Point] = {}
        self._counters: dict[tuple[str, int], int] = {}

    def arrive(self, kind: str, rank: int, data: Any = None) -> tuple[_Point, bool]:
        """Join the next ``kind`` call site for this rank.

        Returns ``(point, is_last)``; the last arriver must run the
        operation and trigger ``point.done``.
        """
        seq = self._counters.get((kind, rank), 0)
        self._counters[(kind, rank)] = seq + 1
        key = (kind, seq)
        point = self._points.get(key)
        if point is None:
            point = _Point(all_arrived=self.env.event(), done=self.env.event())
            self._points[key] = point
        point.data[rank] = data
        point.arrivals += 1
        last = point.arrivals == self.nprocs
        if last:
            point.all_arrived.succeed(point.data)
            del self._points[key]
        return point, last

    def count(self, kind: str, rank: int) -> int:
        """How many ``kind`` call sites ``rank`` has reached so far."""
        return self._counters.get((kind, rank), 0)


class RankContext:
    """The MPI API handed to a rank's program generator."""

    def __init__(self, world: "MPIWorld", rank: int, node: Node):
        self.world = world
        self.rank = rank
        self.node = node
        self.env = world.env
        self._mailboxes: dict[tuple[int, int], Store] = {}
        #: barriers issued by this rank's program so far — the phase
        #: epoch of the replay accelerator.  MADbench2's S-writes and
        #: W-writes share a naive signature but sit in different
        #: barrier-delimited program phases; the epoch keeps them apart.
        self.phase_epoch = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.nprocs

    @property
    def now(self) -> float:
        return self.env.now

    def _mailbox(self, src: int, tag: int) -> Store:
        key = (src, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.env, name=f"r{self.rank}.mbox{key}")
            self._mailboxes[key] = box
        return box

    # -- compute -----------------------------------------------------------
    def compute(self, seconds: float = 0.0, flops: float = 0.0) -> Event:
        """Busy-work: occupy simulated time (and implicitly one core)."""
        t = seconds + (self.node.compute_time(flops) if flops else 0.0)
        return self.env.timeout(t)

    # -- phase replay -------------------------------------------------------
    def replay_region(self, key: tuple, body) -> Generator:
        """Run ``body`` (a generator) as a repetitive *region* of the
        program — e.g. one time step's boundary exchanges — letting the
        phase-replay accelerator extrapolate it once verified steady.

        Regions follow the same warm-up/verify/extrapolate state
        machine as I/O phases, with a group spanning all ranks: the
        per-round frozen group verdict guarantees either *every* rank
        simulates a given occurrence or every rank skips it, which is
        what makes this safe for rendezvous bodies (a skipping rank
        never sends, so a simulating peer would deadlock on the
        matching receive).  Requirements: the region must be SPMD —
        every rank executes it the same number of times with the same
        ``key`` — and must not contain I/O (I/O phases have their own
        keys and contend through a different scope).

        Use as ``yield from mpi.replay_region(("exchange",), body)``.
        """
        rep = self.world.replay
        epoch = self.phase_epoch
        k = ("region", self.rank, epoch) + tuple(key)
        grp = ("region", epoch) + tuple(key)
        # message traffic contends on the communication fabric; when
        # the cluster shares one fabric for messages and file data the
        # regions join the I/O phases' scope
        kind = "shared" if self.world.cluster.shared_network else "comm"
        scope = (kind, epoch)
        steady = rep.steady(k, grp, scope)
        if steady is not None:
            if steady > 0.0:
                yield self.env.timeout(steady)
            return
        t0 = self.env.now
        yield from body
        rep.observe(k, self.env.now - t0, grp, scope)

    # -- point-to-point -------------------------------------------------------
    def isend(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None) -> Event:
        """Non-blocking send; the event fires when the message is delivered."""
        if not 0 <= dst < self.size:
            raise ValueError(f"bad destination rank {dst}")
        return self.env.process(
            self._send(dst, nbytes, tag, payload), name=f"r{self.rank}.send"
        )

    def send(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None) -> Event:
        """Blocking send (same completion semantics under eager protocol)."""
        return self.isend(dst, nbytes, tag, payload)

    def _send(self, dst, nbytes, tag, payload):
        net = self.world.cluster.comm_network
        dst_node = self.world.ranks[dst].node
        yield net.transfer(self.node.name, dst_node.name, nbytes + _ENVELOPE)
        yield self.world.ranks[dst]._mailbox(self.rank, tag).put((nbytes, payload))
        return nbytes

    def recv(self, src: int, tag: int = 0) -> Event:
        """Receive; event value is the message payload."""

        def _op():
            nbytes, payload = yield self._mailbox(src, tag).get()
            return payload

        return self.env.process(_op(), name=f"r{self.rank}.recv")

    # -- collectives (cost models live in collectives.py) ---------------------
    def barrier(self) -> Event:
        from .collectives import barrier

        self.phase_epoch += 1
        return self._collective("barrier", None, barrier)

    def bcast(self, root: int, nbytes: int, payload: Any = None) -> Event:
        from .collectives import bcast

        data = payload if self.rank == root else None
        return self._collective("bcast", (root, nbytes, data), bcast)

    def reduce(self, root: int, nbytes: int) -> Event:
        from .collectives import reduce as _reduce

        return self._collective("reduce", (root, nbytes), _reduce)

    def allreduce(self, nbytes: int) -> Event:
        from .collectives import allreduce

        return self._collective("allreduce", nbytes, allreduce)

    def gather(self, root: int, nbytes: int) -> Event:
        from .collectives import gather

        return self._collective("gather", (root, nbytes), gather)

    def allgather(self, nbytes: int) -> Event:
        from .collectives import allgather

        return self._collective("allgather", nbytes, allgather)

    def alltoall(self, nbytes_per_pair: int) -> Event:
        from .collectives import alltoall

        return self._collective("alltoall", nbytes_per_pair, alltoall)

    def _collective(self, kind: str, data: Any, algorithm) -> Event:
        def _op():
            point, last = self.world.rendezvous.arrive(kind, self.rank, data)
            if last:
                args = yield point.all_arrived
                result = yield self.env.process(
                    algorithm(self.world, args), name=f"coll.{kind}"
                )
                point.done.succeed(result)
                return result
            result = yield point.done
            return result

        return self.env.process(_op(), name=f"r{self.rank}.{kind}")

    # -- MPI-IO -----------------------------------------------------------------
    def file_open(self, path: str, mode: str = "r") -> Event:
        """Collective file open; event value is this rank's
        :class:`~repro.mpi.io.MPIFile`."""
        from .io import open_collective

        return open_collective(self, path, mode)

    def file_open_self(self, path: str, mode: str = "r") -> Event:
        """COMM_SELF open: an independent, per-process file."""
        from .io import open_self

        return open_self(self, path, mode)

    # -- tracing hook -------------------------------------------------------------
    def trace(self, record) -> None:
        if self.world.tracer is not None:
            self.world.tracer.record(self.rank, record)


class MPIWorld:
    """``nprocs`` ranks placed over a cluster's compute nodes."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        nprocs: int,
        placement: str = "block",
        tracer=None,
        io_hints: Optional[dict[str, Any]] = None,
        replay_settings=None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if cluster.comm_network is None:
            raise ValueError("cluster has no networks attached")
        from ..core.replay import PhaseReplayAccelerator
        from ..obs.metrics import IOLibStats

        self.env = env
        self.cluster = cluster
        self.nprocs = nprocs
        self.tracer = tracer
        if tracer is not None:
            # declare the world size so idle ranks (no I/O events)
            # still count in tracer.nranks / per-rank averages
            tracer.set_world_size(nprocs)
        self.io_hints = dict(io_hints or {})
        #: per-run phase-replay accelerator (one world = one app run)
        self.replay = PhaseReplayAccelerator(replay_settings)
        #: per-run MPI-IO level counters (the iolib metrics level)
        self.iostats = IOLibStats()
        nodes = cluster.compute_nodes()
        if not nodes:
            raise ValueError("cluster has no compute nodes")
        self.ranks: list[RankContext] = []
        for r in range(nprocs):
            if placement == "block":
                per = (nprocs + len(nodes) - 1) // len(nodes)
                node = nodes[min(r // per, len(nodes) - 1)]
            elif placement == "round_robin":
                node = nodes[r % len(nodes)]
            else:
                raise ValueError(f"unknown placement {placement!r}")
            self.ranks.append(RankContext(self, r, node))
        self.rendezvous = Rendezvous(env, nprocs)
        #: shared MPI-IO state (files by path)
        self.files: dict[str, Any] = {}

    def node_of(self, rank: int) -> Node:
        return self.ranks[rank].node

    def aggregator_ranks(self) -> list[int]:
        """Default ROMIO ``cb_nodes``: the lowest rank on each node."""
        seen: dict[str, int] = {}
        for r, ctx in enumerate(self.ranks):
            seen.setdefault(ctx.node.name, r)
        return sorted(seen.values())

    def run_program(
        self, program: Callable[[RankContext], Generator], name: str = "mpi"
    ) -> Event:
        """Launch ``program`` on every rank; fires when all ranks return.

        Value is the list of per-rank return values.
        """
        procs = [
            self.env.process(program(ctx), name=f"{name}.r{ctx.rank}")
            for ctx in self.ranks
        ]
        return self.env.all_of(procs)
