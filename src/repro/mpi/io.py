"""MPI-IO on top of the storage stack.

Implements the two access disciplines whose contrast drives the
paper's NAS BT-IO evaluation:

* **independent** I/O (``read_at``/``write_at``) — each rank drives
  its node's filesystem directly through the *direct* path (ROMIO on
  NFS disables client caching, so small strided independent requests
  pay a synchronous round trip each: the *simple* subtype);
* **collective** I/O (``read_at_all``/``write_at_all``) — two-phase
  collective buffering: ranks exchange data with a set of
  *aggregators* (by default the lowest rank on each node, ROMIO's
  ``cb_nodes``) over the communication network, and the aggregators
  move large contiguous file domains through the filesystem (the
  *full* subtype).

Opens come in the collective (``MPI_COMM_WORLD``) flavour and a
``COMM_SELF`` flavour used by unique-file-per-process workloads
(MADbench2 ``FILETYPE=UNIQUE``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simengine import Event, FlatOp, Timeout, Wake
from ..simengine import resources as _kernel
from ..storage.base import IORequest
from .sim import RankContext

__all__ = ["MPIFile", "open_collective", "open_self", "IOHints"]


@dataclass(frozen=True)
class IOHints:
    """ROMIO-style hints controlling collective buffering and sieving."""

    cb_nodes: Optional[int] = None  # None -> one aggregator per node
    cb_buffer_bytes: int = 16 * 1024 * 1024
    collective: bool = True  # romio_cb_write/read enabled
    ds_read: bool = False  # romio_ds_read: data sieving for sparse reads
    ds_buffer_bytes: int = 4 * 1024 * 1024

    @staticmethod
    def from_dict(d: dict) -> "IOHints":
        return IOHints(
            cb_nodes=d.get("cb_nodes"),
            cb_buffer_bytes=d.get("cb_buffer_bytes", 16 * 1024 * 1024),
            collective=d.get("collective", True),
            ds_read=d.get("ds_read", False),
            ds_buffer_bytes=d.get("ds_buffer_bytes", 4 * 1024 * 1024),
        )


class MPIFile:
    """A rank's handle on an MPI file."""

    def __init__(
        self,
        ctx: RankContext,
        path: str,
        inode,
        fs,
        hints: IOHints,
        self_comm: bool = False,
    ):
        self.ctx = ctx
        self.path = path
        self.inode = inode
        self.fs = fs
        self.hints = hints
        self.self_comm = self_comm
        self.env = ctx.env

    # ------------------------------------------------------------------
    # independent operations
    # ------------------------------------------------------------------
    def write_at(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._independent(IORequest("write", offset, nbytes, count, stride))

    def read_at(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._independent(IORequest("read", offset, nbytes, count, stride))

    def write_at_multi(self, parts) -> Event:
        """Issue a batch of independent writes as one operation.

        ``parts`` is an iterable of ``(offset, nbytes, count, stride)``
        tuples, executed in order.  Semantically identical to calling
        :meth:`write_at` per part, but the whole batch runs inside one
        process, and once the parts' phases are steady a run of
        consecutive extrapolated parts collapses into a single calendar
        entry — the per-part trace timestamps replay the sequential
        addition chain, so traces are unchanged.
        """
        return self._independent_multi(
            [IORequest("write", off, nb, count, stride) for off, nb, count, stride in parts]
        )

    def read_at_multi(self, parts) -> Event:
        """Batch counterpart of :meth:`read_at`; see :meth:`write_at_multi`."""
        return self._independent_multi(
            [IORequest("read", off, nb, count, stride) for off, nb, count, stride in parts]
        )

    def _phase_key(self, req: IORequest) -> tuple:
        """Replay key of an independent request: the PhaseDetector
        signature geometry plus rank, barrier epoch and the target
        filesystem's cache-regime token (offsets are excluded —
        successive occurrences append at moving offsets)."""
        return (
            self.ctx.rank,
            self.ctx.phase_epoch,
            self.path,
            req.op,
            req.nbytes,
            req.count,
            req.stride if req.stride is not None else 0,
            self.fs.state_token(self.inode, req),
        )

    def _independent_body(self, req: IORequest):
        """The fully simulated service of one independent request."""
        if req.op == "read" and self.hints.ds_read:
            from ..iolib.sieving import plan_sieve, should_sieve

            if should_sieve(req, self.hints.ds_buffer_bytes):
                # data sieving: dense covering reads + in-memory extract
                plan = plan_sieve(req, self.hints.ds_buffer_bytes)
                san = self.env.sanitizer
                if san is not None:
                    san.note_overfetch(
                        req.op,
                        sum(s.total_bytes for s in plan.requests) - req.total_bytes,
                    )
                for sub in plan.requests:
                    yield self.fs.submit_direct(self.inode, sub)
                yield self.env.timeout(
                    self.ctx.node.memcpy_time(plan.fetched_bytes)
                )
                return
        yield self.fs.submit_direct(self.inode, req)

    def _phase_group(self, key: tuple) -> tuple:
        """Group tying this phase to its siblings on other ranks.

        The key minus rank and path: concurrent ranks running the same
        barrier-delimited pattern — whether against one shared file or
        per-rank unique files — extrapolate all-or-nothing, so no rank
        ever simulates an occurrence with a sibling's load missing.
        """
        return ("ind",) + key[1:2] + key[3:]

    def _phase_scope(self, epoch: int) -> tuple:
        """Consistency scope of this file's I/O phases.

        I/O phases of one barrier epoch contend through the storage
        stack and data network, so their groups extrapolate only when
        *all* of them are steady (MADbench2's W function interleaves
        reads and writes — extrapolating one while simulating the
        other strips its load from the simulation).  On a single
        shared fabric they additionally contend with message traffic
        and join the communication regions' scope.
        """
        kind = "shared" if self.ctx.world.cluster.shared_network else "io"
        return (kind, epoch)

    def _independent(self, req: IORequest) -> Event:
        if _kernel.FS_FAST:
            return _FlatIndependent(self, req).result

        def _op():
            t0 = self.env.now
            replay = self.ctx.world.replay
            key = self._phase_key(req)
            group = self._phase_group(key)
            scope = self._phase_scope(key[1])
            steady = replay.steady(key, group, scope)
            if steady is not None:
                # verified-steady phase: charge the known duration and
                # apply the state side effects analytically
                self.fs.absorb(self.inode, req)
                if steady > 0.0:
                    yield self.env.timeout(steady)
                self._trace(req, t0, collective=False)
                return req.total_bytes
            yield from self._independent_body(req)
            replay.observe(key, self.env.now - t0, group, scope)
            self._trace(req, t0, collective=False)
            return req.total_bytes

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.{req.op}")

    def _independent_multi(self, reqs: list[IORequest]) -> Event:
        if _kernel.FS_FAST:
            return _FlatIndependentMulti(self, reqs).result

        def _op():
            replay = self.ctx.world.replay
            total = 0
            i = 0
            n = len(reqs)
            while i < n:
                req = reqs[i]
                key = self._phase_key(req)
                scope = self._phase_scope(key[1])
                steady = replay.steady(key, self._phase_group(key), scope)
                if steady is None:
                    t0 = self.env.now
                    yield from self._independent_body(req)
                    # observe under the pre-execution key: that is the
                    # state steady() will be consulted with next time
                    replay.observe(key, self.env.now - t0, self._phase_group(key), scope)
                    self._trace(req, t0, collective=False)
                    total += req.total_bytes
                    i += 1
                    continue
                # Coalesce the run of consecutive steady parts into one
                # calendar entry; per-part trace times replay the
                # sequential timeout chain exactly.
                run = [(req, steady)]
                i += 1
                while i < n:
                    key = self._phase_key(reqs[i])
                    s = replay.steady(key, self._phase_group(key), self._phase_scope(key[1]))
                    if s is None:
                        break
                    run.append((reqs[i], s))
                    i += 1
                end = self.env.now
                for r, s in run:
                    self.fs.absorb(self.inode, r)
                    start = end
                    end = end + s
                    self._trace(r, start, collective=False, t_end=end)
                    total += r.total_bytes
                if end > self.env.now:
                    yield self.env.wake_at(end)
            return total

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.multi")

    # ------------------------------------------------------------------
    # collective operations (two-phase I/O)
    # ------------------------------------------------------------------
    def write_at_all(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._collective(IORequest("write", offset, nbytes, count, stride))

    def read_at_all(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._collective(IORequest("read", offset, nbytes, count, stride))

    def _collective(self, req: IORequest) -> Event:
        # A COMM_SELF file's collectives are collective over exactly one
        # rank: two-phase buffering degenerates to an independent access
        # (rendezvousing on the world here would deadlock — per-rank
        # paths never gather all ranks at one call site).
        if not self.hints.collective or self.self_comm:
            return self._independent(req)

        def _op():
            t0 = self.env.now
            world = self.ctx.world
            point, last = world.rendezvous.arrive(
                f"cio:{self.path}:{req.op}", self.ctx.rank, (self.ctx.rank, req)
            )
            if last:
                # Only the last-arriving rank consults the accelerator,
                # so the extrapolate-or-simulate decision is made once
                # per call site and every rank sees the same completion.
                reqs = yield point.all_arrived
                reqmap = dict(reqs.values())
                replay = world.replay
                active = {r: q for r, q in reqmap.items() if q.total_bytes > 0}
                plan = _io_domains(world, self, req.op, active) if active else None
                if plan is not None:
                    san = self.env.sanitizer
                    if san is not None:
                        # overlapping requests collapse into a smaller
                        # union of file domains; account the gap once
                        # per collective call (this is the only rank
                        # that computes the plan)
                        covered = sum(d.total_bytes for _afs, d in plan[1])
                        san.note_gap(req.op, plan[2] - covered)
                key = _collective_key(self.path, req.op, self.ctx.phase_epoch, reqmap)
                if plan is not None:
                    # aggregator cache regimes: same rationale as the
                    # independent key's state token
                    key += (tuple(
                        afs.state_token(self.inode, dreq) for afs, dreq in plan[1]
                    ),)
                # one logical phase per call site (the collective is
                # already globally synchronized), but grouped so the
                # scope rule couples it to concurrent phases
                group = ("cg",) + key
                scope = self._phase_scope(self.ctx.phase_epoch)
                steady = replay.steady(key, group, scope)
                if steady is not None:
                    result = _absorb_two_phase(world, self, active, plan)
                    if steady > 0.0:
                        yield self.env.timeout(steady)
                else:
                    t1 = self.env.now
                    result = yield self.env.process(
                        _two_phase(world, self, req.op, active, plan),
                        name=f"twophase.{req.op}",
                    )
                    replay.observe(key, self.env.now - t1, group, scope)
                point.done.succeed(result)
            else:
                yield point.done
            self._trace(req, t0, collective=True)
            return req.total_bytes

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.{req.op}_all")

    # ------------------------------------------------------------------
    def sync(self) -> Event:
        return self.fs.fsync(self.inode)

    def close(self) -> Event:
        """Collective close: flush once, then everyone drops the handle."""
        if self.self_comm:
            return self.close_self()

        def _op():
            world = self.ctx.world
            point, last = world.rendezvous.arrive(f"fclose:{self.path}", self.ctx.rank, None)
            if last:
                yield point.all_arrived
                yield self.fs.fsync(self.inode)
                yield self.fs.close(self.inode)
                point.done.succeed(None)
            else:
                yield point.done
            return None

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.close")

    def close_self(self) -> Event:
        """Independent close (COMM_SELF files)."""

        def _op():
            yield self.fs.fsync(self.inode)
            yield self.fs.close(self.inode)
            return None

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.close")

    @property
    def size(self) -> int:
        return self.inode.size

    def _trace(
        self, req: IORequest, t0: float, collective: bool, t_end: Optional[float] = None
    ) -> None:
        end = self.env.now if t_end is None else t_end
        self.ctx.world.iostats.record(
            req.op, req.nbytes, req.count, collective, end - t0
        )
        san = self.env.sanitizer
        if san is not None:
            san.account_iolib(req.op, req.total_bytes)
        if self.ctx.world.tracer is not None:
            from ..tracing.events import IOEvent

            self.ctx.trace(
                IOEvent(
                    rank=self.ctx.rank,
                    op=req.op,
                    offset=req.offset,
                    nbytes=req.nbytes,
                    count=req.count,
                    stride=req.stride,
                    t_start=t0,
                    t_end=end,
                    path=self.path,
                    collective=collective,
                )
            )


class _FlatIndependentBase(FlatOp):
    """Shared flat service of one request (the ``_independent_body``)."""

    __slots__ = ("f", "_bk", "_subs", "_si", "_plan")

    def _body(self, req, k):
        f = self.f
        self._bk = k
        if req.op == "read" and f.hints.ds_read:
            from ..iolib.sieving import plan_sieve, should_sieve

            if should_sieve(req, f.hints.ds_buffer_bytes):
                # data sieving: dense covering reads + in-memory extract
                plan = plan_sieve(req, f.hints.ds_buffer_bytes)
                san = self.env.sanitizer
                if san is not None:
                    san.note_overfetch(
                        req.op,
                        sum(s.total_bytes for s in plan.requests) - req.total_bytes,
                    )
                self._plan = plan
                self._subs = plan.requests
                self._si = 0
                self._sieve_next()
                return
        self._await(f.fs.submit_direct(f.inode, req), self._body_end)

    def _sieve_next(self, _v=None):
        f = self.f
        if self._si < len(self._subs):
            sub = self._subs[self._si]
            self._si += 1
            self._await(f.fs.submit_direct(f.inode, sub), self._sieve_next)
            return
        self._await(
            Timeout(self.env, f.ctx.node.memcpy_time(self._plan.fetched_bytes)),
            self._body_end,
        )

    def _body_end(self, _v=None):
        self._bk()


class _FlatIndependent(_FlatIndependentBase):
    """Flat counterpart of :meth:`MPIFile._independent`."""

    __slots__ = ("req", "t0", "key", "group", "scope")

    def __init__(self, f, req):
        self.f = f
        self.req = req
        super().__init__(f.env)

    def _start(self, event):
        f = self.f
        req = self.req
        self.t0 = self.env.now
        replay = f.ctx.world.replay
        key = self.key = f._phase_key(req)
        group = self.group = f._phase_group(key)
        scope = self.scope = f._phase_scope(key[1])
        steady = replay.steady(key, group, scope)
        if steady is not None:
            # verified-steady phase: charge the known duration and
            # apply the state side effects analytically
            f.fs.absorb(f.inode, req)
            if steady > 0.0:
                self._await(Timeout(self.env, steady), self._steady_done)
                return
            self._steady_done(None)
            return
        self._body(req, self._body_done)

    def _steady_done(self, _v):
        self.f._trace(self.req, self.t0, collective=False)
        self._finish(self.req.total_bytes)

    def _body_done(self):
        f = self.f
        f.ctx.world.replay.observe(
            self.key, self.env.now - self.t0, self.group, self.scope
        )
        f._trace(self.req, self.t0, collective=False)
        self._finish(self.req.total_bytes)


class _FlatIndependentMulti(_FlatIndependentBase):
    """Flat counterpart of :meth:`MPIFile._independent_multi`."""

    __slots__ = ("reqs", "i", "total", "t0", "_cur", "_key", "_scope")

    def __init__(self, f, reqs):
        self.f = f
        self.reqs = reqs
        super().__init__(f.env)

    def _start(self, event):
        self.total = 0
        self.i = 0
        self._loop()

    def _loop(self, _v=None):
        f = self.f
        env = self.env
        reqs = self.reqs
        replay = f.ctx.world.replay
        n = len(reqs)
        while self.i < n:
            req = reqs[self.i]
            key = f._phase_key(req)
            scope = f._phase_scope(key[1])
            steady = replay.steady(key, f._phase_group(key), scope)
            if steady is None:
                self._cur = req
                self._key = key
                self._scope = scope
                self.t0 = env.now
                self._body(req, self._one_done)
                return
            # Coalesce the run of consecutive steady parts into one
            # calendar entry; per-part trace times replay the
            # sequential timeout chain exactly.
            run = [(req, steady)]
            self.i += 1
            while self.i < n:
                key = f._phase_key(reqs[self.i])
                s = replay.steady(key, f._phase_group(key), f._phase_scope(key[1]))
                if s is None:
                    break
                run.append((reqs[self.i], s))
                self.i += 1
            end = env.now
            for r, s in run:
                f.fs.absorb(f.inode, r)
                start = end
                end = end + s
                f._trace(r, start, collective=False, t_end=end)
                self.total += r.total_bytes
            if end > env.now:
                self._await(Wake(env, end), self._loop)
                return
        self._finish(self.total)

    def _one_done(self):
        f = self.f
        req = self._cur
        # observe under the pre-execution key: that is the state
        # steady() will be consulted with next time
        f.ctx.world.replay.observe(
            self._key, self.env.now - self.t0, f._phase_group(self._key), self._scope
        )
        f._trace(req, self.t0, collective=False)
        self.total += req.total_bytes
        self.i += 1
        self._loop()


def _collective_key(path: str, op: str, epoch: int, reqs: dict[int, IORequest]) -> tuple:
    """Replay key of a collective call site.

    The per-rank request geometry is offset-normalised against the
    call's lowest offset, so successive appended I/O steps (BT-IO's
    per-step ``base``) share a key while any change of shape, size or
    participating ranks produces a new phase.
    """
    geoms = sorted(
        (r, q.offset, q.nbytes, q.count, q.stride if q.stride is not None else 0)
        for r, q in reqs.items()
    )
    base = min((g[1] for g in geoms), default=0)
    return (
        "coll",
        path,
        op,
        epoch,
        tuple((r, off - base, nb, c, s) for r, off, nb, c, s in geoms),
    )


def _io_domains(world, mfile: MPIFile, op: str, active: dict[int, IORequest]):
    """The aggregator file domains of one two-phase call.

    Shared between the simulated I/O phase and the analytic absorb
    path so both mutate identical filesystem state.  Returns
    ``(aggs, [(fs, domain_request), ...], total_bytes)``.
    """
    from ..iolib.aggregation import select_aggregators

    aggs = select_aggregators(
        [world.node_of(r).name for r in range(world.nprocs)], mfile.hints.cb_nodes
    )
    nagg = len(aggs)
    lo = min(q.offset for q in active.values())
    hi = max(q.offset + q.span for q in active.values())
    span = hi - lo
    total = sum(q.total_bytes for q in active.values())
    # File domains cover only the bytes actually requested (ROMIO
    # computes the union of the requests): a segmented pattern with
    # holes does not write the holes.  Domains are spread over the span
    # so aggregators hit disjoint file regions.
    covered = min(total, span)
    domain_stride = span // nagg
    domain = covered // nagg
    domains = []
    for i, a in enumerate(aggs):
        off = lo + i * domain_stride
        length = domain if i < nagg - 1 else covered - domain * (nagg - 1)
        if length <= 0:
            continue
        afs = world.ranks[a].node.vfs.resolve(mfile.path)
        domains.append((afs, IORequest(op, off, length)))
    return aggs, domains, total


def _absorb_two_phase(world, mfile: MPIFile, active: dict[int, IORequest], plan) -> int:
    """Apply a steady collective call's state side effects analytically:
    the aggregator domains land in (or refresh) the target filesystems
    exactly as the simulated I/O phase would, with no simulated time."""
    if not active or plan is None:
        return 0
    _aggs, domains, total = plan
    for afs, dreq in domains:
        afs.absorb(mfile.inode, dreq)
    return total


def _two_phase(world, mfile: MPIFile, op: str, active: dict[int, IORequest], plan=None):
    """ROMIO's generalised two-phase collective buffering.

    ``active`` maps rank -> its (non-empty) request.  Aggregators own
    contiguous file domains (``plan``, precomputed by the caller via
    :func:`_io_domains` or derived here); the exchange phase moves
    every rank's bytes to/from the owning aggregators over the
    communication network, the I/O phase moves whole domains through
    the filesystem.
    """
    env = world.env

    if not active:
        return 0
    aggs, domains, total = plan if plan is not None else _io_domains(world, mfile, op, active)
    nagg = len(aggs)

    # --- exchange phase -----------------------------------------------------
    # Interleaved decompositions spread each rank's bytes roughly evenly
    # over the aggregator domains.
    net = world.cluster.comm_network
    evs = []
    for r, q in active.items():
        share = q.total_bytes // nagg
        for a in aggs:
            if world.node_of(r) is world.node_of(a):
                continue  # node-local exchange is a memcpy, charged below
            if (op == "write") and share:
                evs.append(net.transfer(world.node_of(r).name, world.node_of(a).name, share))
    if op == "write" and evs:
        yield env.all_of(evs)

    # collective buffer packing at the aggregators
    pack = world.node_of(aggs[0]).memcpy_time(total // nagg)
    yield env.timeout(pack)

    # --- I/O phase ------------------------------------------------------------
    io_evs = [afs.submit_direct(mfile.inode, dreq) for afs, dreq in domains]
    if io_evs:
        yield env.all_of(io_evs)

    # --- read scatter ------------------------------------------------------------
    if op == "read":
        evs = []
        for r, q in active.items():
            share = q.total_bytes // nagg
            for a in aggs:
                if world.node_of(r) is world.node_of(a):
                    continue
                if share:
                    evs.append(
                        net.transfer(world.node_of(a).name, world.node_of(r).name, share)
                    )
        if evs:
            yield env.all_of(evs)
    return total


def open_collective(ctx: RankContext, path: str, mode: str = "r") -> Event:
    """MPI_File_open on COMM_WORLD."""

    def _op():
        world = ctx.world
        hints = IOHints.from_dict(world.io_hints)
        point, last = world.rendezvous.arrive(f"fopen:{path}", ctx.rank, mode)
        if last:
            yield point.all_arrived
            # one rank performs the create/truncate
            fs0 = world.ranks[0].node.vfs.resolve(path)
            if "w" in mode or not fs0.exists(path):
                inode = yield fs0.create(path)
            else:
                inode = yield fs0.open(path)
            point.done.succeed(inode)
        else:
            inode = yield point.done
        fs = ctx.node.vfs.resolve(path)
        if not fs.exists(path):
            # distinct per-node local filesystems: materialise the file
            inode = yield fs.create(path)
        return MPIFile(ctx, path, inode, fs, hints)

    return ctx.env.process(_op(), name=f"mpiio.r{ctx.rank}.open")


def open_self(ctx: RankContext, path: str, mode: str = "r") -> Event:
    """MPI_File_open on COMM_SELF (unique file per process)."""

    def _op():
        hints = IOHints.from_dict(ctx.world.io_hints)
        fs = ctx.node.vfs.resolve(path)
        if "w" in mode or not fs.exists(path):
            inode = yield fs.create(path)
        else:
            inode = yield fs.open(path)
        return MPIFile(ctx, path, inode, fs, hints, self_comm=True)

    return ctx.env.process(_op(), name=f"mpiio.r{ctx.rank}.open_self")
