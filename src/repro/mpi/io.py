"""MPI-IO on top of the storage stack.

Implements the two access disciplines whose contrast drives the
paper's NAS BT-IO evaluation:

* **independent** I/O (``read_at``/``write_at``) — each rank drives
  its node's filesystem directly through the *direct* path (ROMIO on
  NFS disables client caching, so small strided independent requests
  pay a synchronous round trip each: the *simple* subtype);
* **collective** I/O (``read_at_all``/``write_at_all``) — two-phase
  collective buffering: ranks exchange data with a set of
  *aggregators* (by default the lowest rank on each node, ROMIO's
  ``cb_nodes``) over the communication network, and the aggregators
  move large contiguous file domains through the filesystem (the
  *full* subtype).

Opens come in the collective (``MPI_COMM_WORLD``) flavour and a
``COMM_SELF`` flavour used by unique-file-per-process workloads
(MADbench2 ``FILETYPE=UNIQUE``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simengine import Event
from ..storage.base import IORequest
from .sim import RankContext

__all__ = ["MPIFile", "open_collective", "open_self", "IOHints"]


@dataclass(frozen=True)
class IOHints:
    """ROMIO-style hints controlling collective buffering and sieving."""

    cb_nodes: Optional[int] = None  # None -> one aggregator per node
    cb_buffer_bytes: int = 16 * 1024 * 1024
    collective: bool = True  # romio_cb_write/read enabled
    ds_read: bool = False  # romio_ds_read: data sieving for sparse reads
    ds_buffer_bytes: int = 4 * 1024 * 1024

    @staticmethod
    def from_dict(d: dict) -> "IOHints":
        return IOHints(
            cb_nodes=d.get("cb_nodes"),
            cb_buffer_bytes=d.get("cb_buffer_bytes", 16 * 1024 * 1024),
            collective=d.get("collective", True),
            ds_read=d.get("ds_read", False),
            ds_buffer_bytes=d.get("ds_buffer_bytes", 4 * 1024 * 1024),
        )


class MPIFile:
    """A rank's handle on an MPI file."""

    def __init__(self, ctx: RankContext, path: str, inode, fs, hints: IOHints):
        self.ctx = ctx
        self.path = path
        self.inode = inode
        self.fs = fs
        self.hints = hints
        self.env = ctx.env

    # ------------------------------------------------------------------
    # independent operations
    # ------------------------------------------------------------------
    def write_at(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._independent(IORequest("write", offset, nbytes, count, stride))

    def read_at(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._independent(IORequest("read", offset, nbytes, count, stride))

    def _independent(self, req: IORequest) -> Event:
        def _op():
            t0 = self.env.now
            if req.op == "read" and self.hints.ds_read:
                from ..iolib.sieving import plan_sieve, should_sieve

                if should_sieve(req, self.hints.ds_buffer_bytes):
                    # data sieving: dense covering reads + in-memory extract
                    plan = plan_sieve(req, self.hints.ds_buffer_bytes)
                    for sub in plan.requests:
                        yield self.fs.submit_direct(self.inode, sub)
                    yield self.env.timeout(
                        self.ctx.node.memcpy_time(plan.fetched_bytes)
                    )
                    self._trace(req, t0, collective=False)
                    return req.total_bytes
            yield self.fs.submit_direct(self.inode, req)
            self._trace(req, t0, collective=False)
            return req.total_bytes

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.{req.op}")

    # ------------------------------------------------------------------
    # collective operations (two-phase I/O)
    # ------------------------------------------------------------------
    def write_at_all(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._collective(IORequest("write", offset, nbytes, count, stride))

    def read_at_all(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._collective(IORequest("read", offset, nbytes, count, stride))

    def _collective(self, req: IORequest) -> Event:
        if not self.hints.collective:
            return self._independent(req)

        def _op():
            t0 = self.env.now
            world = self.ctx.world
            point, last = world.rendezvous.arrive(
                f"cio:{self.path}:{req.op}", self.ctx.rank, (self.ctx.rank, req)
            )
            if last:
                reqs = yield point.all_arrived
                result = yield self.env.process(
                    _two_phase(world, self, req.op, dict(reqs.values())),
                    name=f"twophase.{req.op}",
                )
                point.done.succeed(result)
            else:
                yield point.done
            self._trace(req, t0, collective=True)
            return req.total_bytes

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.{req.op}_all")

    # ------------------------------------------------------------------
    def sync(self) -> Event:
        return self.fs.fsync(self.inode)

    def close(self) -> Event:
        """Collective close: flush once, then everyone drops the handle."""

        def _op():
            world = self.ctx.world
            point, last = world.rendezvous.arrive(f"fclose:{self.path}", self.ctx.rank, None)
            if last:
                yield point.all_arrived
                yield self.fs.fsync(self.inode)
                yield self.fs.close(self.inode)
                point.done.succeed(None)
            else:
                yield point.done
            return None

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.close")

    def close_self(self) -> Event:
        """Independent close (COMM_SELF files)."""

        def _op():
            yield self.fs.fsync(self.inode)
            yield self.fs.close(self.inode)
            return None

        return self.env.process(_op(), name=f"mpiio.r{self.ctx.rank}.close")

    @property
    def size(self) -> int:
        return self.inode.size

    def _trace(self, req: IORequest, t0: float, collective: bool) -> None:
        if self.ctx.world.tracer is not None:
            from ..tracing.events import IOEvent

            self.ctx.trace(
                IOEvent(
                    rank=self.ctx.rank,
                    op=req.op,
                    offset=req.offset,
                    nbytes=req.nbytes,
                    count=req.count,
                    stride=req.stride,
                    t_start=t0,
                    t_end=self.env.now,
                    path=self.path,
                    collective=collective,
                )
            )


def _two_phase(world, mfile: MPIFile, op: str, reqs: dict[int, IORequest]):
    """ROMIO's generalised two-phase collective buffering.

    ``reqs`` maps rank -> its request.  Aggregators own contiguous file
    domains; the exchange phase moves every rank's bytes to/from the
    owning aggregators over the communication network, the I/O phase
    moves whole domains through the filesystem.
    """
    env = world.env
    hints = mfile.hints
    from ..iolib.aggregation import select_aggregators

    aggs = select_aggregators([world.node_of(r).name for r in range(world.nprocs)], hints.cb_nodes)
    nagg = len(aggs)

    active = {r: q for r, q in reqs.items() if q.total_bytes > 0}
    if not active:
        return 0
    lo = min(q.offset for q in active.values())
    hi = max(q.offset + q.span for q in active.values())
    span = hi - lo
    total = sum(q.total_bytes for q in active.values())

    # --- exchange phase -----------------------------------------------------
    # Interleaved decompositions spread each rank's bytes roughly evenly
    # over the aggregator domains.
    net = world.cluster.comm_network
    evs = []
    for r, q in active.items():
        share = q.total_bytes // nagg
        for a in aggs:
            if world.node_of(r) is world.node_of(a):
                continue  # node-local exchange is a memcpy, charged below
            if (op == "write") and share:
                evs.append(net.transfer(world.node_of(r).name, world.node_of(a).name, share))
    if op == "write" and evs:
        yield env.all_of(evs)

    # collective buffer packing at the aggregators
    pack = world.node_of(aggs[0]).memcpy_time(total // nagg)
    yield env.timeout(pack)

    # --- I/O phase ------------------------------------------------------------
    # File domains cover only the bytes actually requested (ROMIO
    # computes the union of the requests): a segmented pattern with
    # holes does not write the holes.  Domains are spread over the span
    # so aggregators hit disjoint file regions.
    covered = min(total, span)
    domain_stride = span // nagg
    domain = covered // nagg
    io_evs = []
    for i, a in enumerate(aggs):
        off = lo + i * domain_stride
        length = domain if i < nagg - 1 else covered - domain * (nagg - 1)
        if length <= 0:
            continue
        actx = world.ranks[a]
        afs = actx.node.vfs.resolve(mfile.path)
        io_evs.append(afs.submit_direct(mfile.inode, IORequest(op, off, length)))
    if io_evs:
        yield env.all_of(io_evs)

    # --- read scatter ------------------------------------------------------------
    if op == "read":
        evs = []
        for r, q in active.items():
            share = q.total_bytes // nagg
            for a in aggs:
                if world.node_of(r) is world.node_of(a):
                    continue
                if share:
                    evs.append(
                        net.transfer(world.node_of(a).name, world.node_of(r).name, share)
                    )
        if evs:
            yield env.all_of(evs)
    return total


def open_collective(ctx: RankContext, path: str, mode: str = "r") -> Event:
    """MPI_File_open on COMM_WORLD."""

    def _op():
        world = ctx.world
        hints = IOHints.from_dict(world.io_hints)
        point, last = world.rendezvous.arrive(f"fopen:{path}", ctx.rank, mode)
        if last:
            yield point.all_arrived
            # one rank performs the create/truncate
            fs0 = world.ranks[0].node.vfs.resolve(path)
            if "w" in mode or not fs0.exists(path):
                inode = yield fs0.create(path)
            else:
                inode = yield fs0.open(path)
            point.done.succeed(inode)
        else:
            inode = yield point.done
        fs = ctx.node.vfs.resolve(path)
        if not fs.exists(path):
            # distinct per-node local filesystems: materialise the file
            inode = yield fs.create(path)
        return MPIFile(ctx, path, inode, fs, hints)

    return ctx.env.process(_op(), name=f"mpiio.r{ctx.rank}.open")


def open_self(ctx: RankContext, path: str, mode: str = "r") -> Event:
    """MPI_File_open on COMM_SELF (unique file per process)."""

    def _op():
        hints = IOHints.from_dict(ctx.world.io_hints)
        fs = ctx.node.vfs.resolve(path)
        if "w" in mode or not fs.exists(path):
            inode = yield fs.create(path)
        else:
            inode = yield fs.open(path)
        return MPIFile(ctx, path, inode, fs, hints)

    return ctx.env.process(_op(), name=f"mpiio.r{ctx.rank}.open_self")
