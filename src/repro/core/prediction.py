"""Predictive application I/O model (the paper's stated future work).

§V: *"As future work, we aim to define an I/O model of the
application to support the evaluation, design and selection of the
configurations.  This model is based on the application
characteristics and I/O system, and it is being developed to
determine which I/O configuration meets the performance requirements
of the user on a given system."*

This module implements that model: given an application profile
(phase 1's trace-derived characterization — which is *system
independent*, as the paper demonstrates by reusing BT-IO's
characterization across clusters) and a configuration's performance
tables, it predicts the application's I/O time on that configuration
**without running it**:

    predicted_io_time = Σ_measures  bytes(measure) / table_rate(measure)

evaluated at the deepest I/O-path level that actually constrains each
measure (the first level, walking library → network FS → local FS,
whose characterized rate is the minimum — a static version of the
evaluation phase's bottleneck walk).  Requirements checking
("does configuration X meet the user's I/O-time budget?") follows
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .characterize import AppMeasure, AppProfile
from .perftable import PerformanceTable

__all__ = [
    "MeasurePrediction",
    "IOPrediction",
    "PhasePrediction",
    "predict_io_time",
    "predict_phase_times",
    "meets_requirement",
    "rank_predicted",
]

_LEVEL_ORDER = ("iolib", "nfs", "localfs")


@dataclass(frozen=True)
class MeasurePrediction:
    """Prediction for one (op, block, mode) measure."""

    measure: AppMeasure
    limiting_level: Optional[str]
    limiting_rate_Bps: Optional[float]

    @property
    def predicted_time_s(self) -> float:
        if not self.limiting_rate_Bps:
            return 0.0
        return self.measure.total_bytes / self.limiting_rate_Bps


@dataclass
class IOPrediction:
    """Predicted I/O behaviour of an application on a configuration."""

    config_name: str
    per_measure: list[MeasurePrediction] = field(default_factory=list)

    @property
    def io_time_s(self) -> float:
        return sum(p.predicted_time_s for p in self.per_measure)

    def time_for(self, op: str) -> float:
        return sum(p.predicted_time_s for p in self.per_measure if p.measure.op == op)

    def limiting_levels(self) -> dict[str, int]:
        """How many measures each level constrains."""
        out: dict[str, int] = {}
        for p in self.per_measure:
            if p.limiting_level:
                out[p.limiting_level] = out.get(p.limiting_level, 0) + 1
        return out


def predict_io_time(
    config_name: str,
    profile: AppProfile,
    tables: dict[str, PerformanceTable],
    levels: Sequence[str] = _LEVEL_ORDER,
) -> IOPrediction:
    """Predict per-measure and total I/O time from the tables alone.

    For each measure the *limiting* level is the one offering the
    lowest characterized rate for the measure's geometry — the static
    analogue of walking the I/O path until the used percentage stays
    under 100%.
    """
    pred = IOPrediction(config_name)
    for m in profile.measures:
        best_level: Optional[str] = None
        best_rate: Optional[float] = None
        for level in levels:
            table = tables.get(level)
            if table is None:
                continue
            rate = table.lookup(m.op, m.block_bytes, m.access, m.mode)
            if rate is None or rate <= 0:
                continue
            if best_rate is None or rate < best_rate:
                best_level, best_rate = level, rate
        pred.per_measure.append(MeasurePrediction(m, best_level, best_rate))
    return pred


@dataclass(frozen=True)
class PhasePrediction:
    """Predicted cost of one detected application phase."""

    phase_id: int
    op: str
    occurrences: int
    total_bytes: int
    limiting_level: Optional[str]
    limiting_rate_Bps: Optional[float]

    @property
    def predicted_time_s(self) -> float:
        if not self.limiting_rate_Bps:
            return 0.0
        return self.total_bytes / self.limiting_rate_Bps

    @property
    def per_occurrence_s(self) -> float:
        if not self.occurrences:
            return 0.0
        return self.predicted_time_s / self.occurrences


def predict_phase_times(
    config_name: str,
    phases,
    tables: dict[str, PerformanceTable],
    levels: Sequence[str] = _LEVEL_ORDER,
) -> list[PhasePrediction]:
    """Predict per-phase I/O time from detected phases and the tables.

    The phase-granular analogue of :func:`predict_io_time`, and the
    offline counterpart of the online replay accelerator: where the
    accelerator simulates one occurrence per phase and extrapolates
    the remaining ``occurrences - K`` at the *observed* steady cost,
    this predicts every occurrence at the *characterized* rate of the
    phase's limiting level — no run needed at all.

    ``phases`` is a list of
    :class:`~repro.tracing.events.PhaseEvent` (signature layout
    ``(op, nbytes, count, mode_value, path)``).
    """
    from ..storage.base import AccessMode, AccessType

    out: list[PhasePrediction] = []
    for p in phases:
        op, nbytes, count, mode_value, _path = p.signature
        mode = AccessMode(mode_value)
        best_level: Optional[str] = None
        best_rate: Optional[float] = None
        for level in levels:
            table = tables.get(level)
            if table is None:
                continue
            rate = table.lookup(op, nbytes, AccessType.GLOBAL, mode)
            if rate is None or rate <= 0:
                continue
            if best_rate is None or rate < best_rate:
                best_level, best_rate = level, rate
        out.append(
            PhasePrediction(
                phase_id=p.phase_id,
                op=op,
                occurrences=p.occurrences,
                total_bytes=p.total_bytes,
                limiting_level=best_level,
                limiting_rate_Bps=best_rate,
            )
        )
    return out


def meets_requirement(
    prediction: IOPrediction,
    max_io_time_s: Optional[float] = None,
    min_bandwidth_Bps: Optional[float] = None,
    total_bytes: Optional[int] = None,
) -> bool:
    """Does the predicted behaviour satisfy the user's requirement?

    ``min_bandwidth_Bps`` is checked against the effective aggregate
    rate ``total_bytes / predicted_io_time``; ``total_bytes`` defaults
    to the profile's byte volume.
    """
    t = prediction.io_time_s
    if max_io_time_s is not None and t > max_io_time_s:
        return False
    if min_bandwidth_Bps is not None:
        if total_bytes is None:
            total_bytes = sum(p.measure.total_bytes for p in prediction.per_measure)
        if t <= 0:
            return True
        if total_bytes / t < min_bandwidth_Bps:
            return False
    return True


def rank_predicted(
    profile: AppProfile,
    tables_by_config: dict[str, dict[str, PerformanceTable]],
) -> list[IOPrediction]:
    """Predict on every configuration, best (lowest I/O time) first."""
    preds = [
        predict_io_time(name, profile, tables)
        for name, tables in tables_by_config.items()
    ]
    preds.sort(key=lambda p: p.io_time_s)
    return preds
