"""Latency and IOPs characterization per I/O path level (paper Fig. 2).

The characterization phase measures three quantities at every level:
bandwidth (the performance tables of :mod:`repro.core.perftable`),
**latency** and **IOPs**.  This module measures the latter two with
small-operation probes:

* *latency* — the round-trip time of a single 4 KiB operation against
  a cold backend (positioning + protocol, no queueing);
* *IOPs* — sustained small scattered operations per second under load
  (the "stressed I/O system" condition the paper uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simengine import Environment
from ..storage.base import IORequest, KiB, MiB
from ..clusters.builder import System, SystemConfig, build_system

__all__ = ["LatencyProfile", "measure_latency_iops", "characterize_latency"]

_PROBE_BYTES = 4 * KiB
_IOPS_OPS = 600
_SCATTER = 64 * MiB


@dataclass(frozen=True)
class LatencyProfile:
    """Small-operation behaviour of one I/O path level."""

    level: str
    read_latency_s: float
    write_latency_s: float
    read_iops: float
    write_iops: float

    def render(self) -> str:
        return (
            f"{self.level:<10} latency r/w: {self.read_latency_s * 1e3:7.3f} / "
            f"{self.write_latency_s * 1e3:7.3f} ms   IOPs r/w: "
            f"{self.read_iops:8.0f} / {self.write_iops:8.0f}"
        )


def _fs_for_level(system: System, level: str):
    if level == "localfs":
        return system.local_fs["n0"], False
    if level == "nfs":
        return system.nfs_mounts["n0"], False
    if level == "iolib":
        return system.nfs_mounts["n0"], True  # MPI-IO's direct path
    raise ValueError(f"unknown level {level!r}")


def measure_latency_iops(system: System, level: str) -> LatencyProfile:
    """Probe one level of an already-built system."""
    fs, direct = _fs_for_level(system, level)
    env = system.env
    submit = fs.submit_direct if direct else fs.submit

    inode = env.run(fs.create(f"/char_lat_{level}.tmp"))
    # a large-enough file that scattered probes really scatter
    env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=256)))
    env.run(fs.fsync(inode))

    # single-op latency (cold-ish: land far from the previous access)
    t0 = env.now
    env.run(submit(inode, IORequest("read", 128 * MiB, _PROBE_BYTES)))
    read_lat = env.now - t0
    t0 = env.now
    env.run(submit(inode, IORequest("write", 192 * MiB, _PROBE_BYTES)))
    if not direct:
        env.run(fs.fsync(inode))
    write_lat = env.now - t0

    # sustained scattered small ops
    t0 = env.now
    env.run(submit(inode, IORequest("read", 0, _PROBE_BYTES, count=_IOPS_OPS, stride=_SCATTER)))
    read_iops = _IOPS_OPS / (env.now - t0)
    t0 = env.now
    env.run(submit(inode, IORequest("write", 0, _PROBE_BYTES, count=_IOPS_OPS, stride=_SCATTER)))
    if not direct:
        env.run(fs.fsync(inode))
    write_iops = _IOPS_OPS / (env.now - t0)

    env.run(fs.unlink(f"/char_lat_{level}.tmp") if hasattr(fs, "unlink") else env.timeout(0))
    return LatencyProfile(level, read_lat, write_lat, read_iops, write_iops)


def characterize_latency(
    config: SystemConfig, levels=("iolib", "nfs", "localfs")
) -> dict[str, LatencyProfile]:
    """Latency/IOPs profiles on fresh systems, one per level."""
    out = {}
    for level in levels:
        system = build_system(Environment(), config)
        out[level] = measure_latency_iops(system, level)
    return out
