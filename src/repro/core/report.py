"""Plain-text renderers for the paper's tables and figures.

Everything the benchmark harness prints goes through here so the
regenerated artefacts look like the paper's: performance tables
(Table I instances), used-percentage tables (Tables III/IV/VI/VII/
IX/X/XI), characterization summaries (Tables II/V/VIII) and the
time/throughput bar data of Figs. 12/15/17/18.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..storage.base import MiB
from .evaluation import EvaluationReport, UsedPercentageTable
from .perftable import PerformanceTable

__all__ = [
    "format_perf_table",
    "format_used_table",
    "format_used_matrix",
    "format_characterization",
    "format_run_metrics",
]


def _fmt_block(b: int) -> str:
    if b >= MiB:
        return f"{b / MiB:g}M"
    if b >= 1024:
        return f"{b / 1024:g}K"
    return f"{b}B"


def format_perf_table(table: PerformanceTable, unit: float = MiB) -> str:
    """Render a performance table (paper Table I layout)."""
    lines = [
        f"Performance table — level: {table.level}",
        f"{'Operation':<10}{'Blocksize':>10}{'Access':>8}{'Mode':>12}{'MB/s':>10}",
    ]
    for r in sorted(table.rows, key=lambda r: (r.op, r.access.value, r.mode.value, r.block_bytes)):
        lines.append(
            f"{r.op:<10}{_fmt_block(r.block_bytes):>10}{r.access.value:>8}"
            f"{r.mode.value:>12}{r.rate_Bps / unit:>10.1f}"
        )
    return "\n".join(lines)


def format_used_table(used: UsedPercentageTable, levels: Sequence[str] = ("iolib", "nfs", "localfs")) -> str:
    """Render one configuration's used-percentage summary per op."""
    lines = [
        f"Used percentage of I/O system — configuration: {used.config_name}",
        f"{'op':<8}" + "".join(f"{lv:>10}" for lv in levels),
    ]
    for op in ("write", "read"):
        cells = []
        for lv in levels:
            pct = used.cell(lv, op)
            cells.append(f"{pct:>9.1f}%" if pct is not None else f"{'-':>10}")
        lines.append(f"{op:<8}" + "".join(cells))
    return "\n".join(lines)


def format_used_matrix(
    reports: Mapping[str, EvaluationReport],
    op: str,
    levels: Sequence[str] = ("iolib", "nfs", "localfs"),
    label: str = "I/O configuration",
) -> str:
    """Render the paper's Tables III/IV/VI/VII shape: one row per
    configuration, one column per I/O path level."""
    header = ["PERCENTAGE (%) OF I/O SYSTEM USE — " + op.upper() + " OPERATIONS"]
    header.append(f"{label:<22}" + "".join(f"{lv:>10}" for lv in levels))
    lines = header
    for name, rep in reports.items():
        cells = []
        for lv in levels:
            pct = rep.used.cell(lv, op)
            cells.append(f"{pct:>9.1f}%" if pct is not None else f"{'-':>10}")
        lines.append(f"{name:<22}" + "".join(cells))
    return "\n".join(lines)


def format_characterization(char: Mapping, title: str) -> str:
    """Render an application characterization dict (Tables II/V/VIII)."""
    lines = [title]
    for key, val in char.items():
        if isinstance(val, dict):
            val = {(_fmt_block(k) if isinstance(k, int) and k > 64 else k): v for k, v in val.items()}
        if isinstance(val, (list, tuple)):
            val = [_fmt_block(v) if isinstance(v, int) and v > 4096 else v for v in val]
        lines.append(f"  {key:<22} {val}")
    return "\n".join(lines)


def format_run_metrics(reports: Mapping[str, EvaluationReport]) -> str:
    """Render Fig. 12/15-style run metrics per configuration."""
    lines = [
        f"{'configuration':<22}{'exec (s)':>10}{'I/O (s)':>10}{'I/O %':>8}{'MB/s':>10}",
    ]
    for name, rep in reports.items():
        lines.append(
            f"{name:<22}{rep.execution_time_s:>10.1f}{rep.io_time_s:>10.1f}"
            f"{rep.io_fraction * 100:>7.1f}%{rep.throughput_Bps / MiB:>10.1f}"
        )
    return "\n".join(lines)
