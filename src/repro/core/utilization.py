"""Resource-utilization snapshots: locating the inefficiency point.

The evaluation phase "determine[s] the utilization and possible
points of inefficiency in the I/O path" (paper §III-C).  The
used-percentage tables do that against *characterized* capacity; this
module complements them with *direct* evidence from the simulated
hardware — the busy fraction of every disk and network link and the
byte counters of the filesystems — collected from a
:class:`~repro.clusters.builder.System` after an application run.

A resource near 100% busy during the run is the physical bottleneck;
a run where nothing is busy is limited by the application itself
(computation, communication or serialisation) — the distinction the
paper draws for BT-IO full ("limited by computing and/or
communication") vs simple ("limited by I/O").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clusters.builder import System

__all__ = ["ResourceUsage", "UtilizationReport", "snapshot_utilization"]


@dataclass(frozen=True)
class ResourceUsage:
    """Busy fraction of one hardware resource over an interval."""

    name: str
    kind: str  # "disk" | "link" | "threads"
    busy_s: float
    utilization: float  # busy / interval

    def render(self) -> str:
        bar = "#" * int(round(self.utilization * 20))
        return f"{self.name:<28}{self.kind:<8}{self.utilization * 100:6.1f}% |{bar:<20}|"


@dataclass
class UtilizationReport:
    interval_s: float
    resources: list[ResourceUsage] = field(default_factory=list)

    def hottest(self, kind: str | None = None, n: int = 3) -> list[ResourceUsage]:
        rs = [r for r in self.resources if kind is None or r.kind == kind]
        return sorted(rs, key=lambda r: r.utilization, reverse=True)[:n]

    def bottleneck(self, threshold: float = 0.85) -> ResourceUsage | None:
        """The busiest resource, if anything is actually saturated."""
        hot = self.hottest(n=1)
        if hot and hot[0].utilization >= threshold:
            return hot[0]
        return None

    def render(self, top: int = 10) -> str:
        lines = [f"resource utilization over {self.interval_s:.1f}s (top {top}):"]
        for r in self.hottest(n=top):
            lines.append("  " + r.render())
        b = self.bottleneck()
        if b is not None:
            lines.append(f"  -> physical bottleneck: {b.name} ({b.utilization * 100:.0f}% busy)")
        else:
            lines.append("  -> no saturated resource: the application itself limits the run")
        return "\n".join(lines)


def snapshot_utilization(system: System, since_s: float = 0.0) -> UtilizationReport:
    """Collect busy fractions of every disk and link in the system.

    ``since_s`` subtracts setup time: utilizations are computed over
    ``now - since_s``.  Counters are cumulative, so for a clean
    per-phase view build a fresh system per run (as the methodology's
    evaluate() does).
    """
    env = system.env
    interval = max(env.now - since_s, 1e-12)
    report = UtilizationReport(interval_s=interval)

    def add_disks(array, owner):
        for d in array.disks:
            report.resources.append(
                ResourceUsage(f"{owner}:{d.name}", "disk", d.stats.busy_s,
                              min(d.stats.busy_s / interval, 1.0))
            )

    add_disks(system.server_node.array, "ionode")
    for node in system.compute:
        if node.array is not None:
            add_disks(node.array, node.name)

    nets = {id(system.cluster.comm_network): ("comm", system.cluster.comm_network)}
    nets[id(system.cluster.data_network)] = (
        "data" if not system.cluster.shared_network else "comm",
        system.cluster.data_network,
    )
    for label, net in nets.values():
        for direction, links in (("up", net.uplinks), ("down", net.downlinks)):
            for name, link in links.items():
                report.resources.append(
                    ResourceUsage(f"{label}:{name}:{direction}", "link", link.busy_s,
                                  min(link.busy_s / interval, 1.0))
                )
    return report
