"""Resource-utilization snapshots: locating the inefficiency point.

The evaluation phase "determine[s] the utilization and possible
points of inefficiency in the I/O path" (paper §III-C).  The
used-percentage tables do that against *characterized* capacity; this
module complements them with *direct* evidence from the simulated
hardware — the busy fraction of every disk and network link and the
byte counters of the filesystems — collected from a
:class:`~repro.clusters.builder.System` after an application run.

A resource near 100% busy during the run is the physical bottleneck;
a run where nothing is busy is limited by the application itself
(computation, communication or serialisation) — the distinction the
paper draws for BT-IO full ("limited by computing and/or
communication") vs simple ("limited by I/O").

Busy counters are cumulative over a system's lifetime, so utilization
over an *interval* needs the counter values at the interval's start:
:func:`capture_utilization` takes that baseline and
:func:`snapshot_utilization` diffs against it.  A freshly built or
:meth:`~repro.clusters.builder.System.reset` system carries its own
zero baseline, so warm-started systems report per-run busy fractions,
not lifetime totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clusters.builder import System

__all__ = [
    "ResourceUsage",
    "UtilizationSnapshot",
    "UtilizationWindow",
    "UtilizationReport",
    "capture_utilization",
    "snapshot_utilization",
]


@dataclass(frozen=True)
class ResourceUsage:
    """Busy fraction of one hardware resource over an interval."""

    name: str
    kind: str  # "disk" | "link" | "threads"
    busy_s: float  # busy seconds accrued within the interval
    utilization: float  # busy / interval

    def render(self) -> str:
        bar = "#" * int(round(self.utilization * 20))
        return f"{self.name:<28}{self.kind:<8}{self.utilization * 100:6.1f}% |{bar:<20}|"


@dataclass(frozen=True)
class UtilizationSnapshot:
    """Point-in-time capture of every cumulative busy counter.

    The baseline of an interval measurement: capture one at the start
    of a run, then :func:`snapshot_utilization` diffs the live
    counters against it.
    """

    t_s: float
    #: resource name -> (kind, cumulative busy seconds)
    busy: dict = field(default_factory=dict)


@dataclass(frozen=True)
class UtilizationWindow:
    """Busy deltas of one sampled time window (see repro.obs.sampler)."""

    t0_s: float
    t1_s: float
    #: resource name -> busy seconds accrued within the window
    busy: dict = field(default_factory=dict)
    #: resource name -> kind ("disk" | "link"), for rendering
    kinds: dict = field(default_factory=dict)

    @property
    def width_s(self) -> float:
        return self.t1_s - self.t0_s

    def utilization(self, name: str) -> float:
        w = self.width_s
        if w <= 0:
            return 0.0
        # busy time is charged at hold start, so a transfer spilling
        # past the window edge can exceed the width — cap at saturated
        return min(self.busy.get(name, 0.0) / w, 1.0)

    def hottest(self, n: int = 3) -> list:
        """``[(name, utilization)]`` of the busiest resources."""
        w = self.width_s
        if w <= 0:
            return []
        pairs = sorted(self.busy.items(), key=lambda kv: kv[1], reverse=True)
        return [(name, min(busy / w, 1.0)) for name, busy in pairs[:n]]

    def bottleneck(self, threshold: float = 0.85):
        """Name of the saturating resource in this window, or ``None``
        when the application itself limits the window."""
        hot = self.hottest(n=1)
        if hot and hot[0][1] >= threshold:
            return hot[0][0]
        return None


@dataclass
class UtilizationReport:
    interval_s: float
    resources: list = field(default_factory=list)
    #: sampled time-series (empty unless a sampler ran during the run)
    windows: list = field(default_factory=list)

    def hottest(self, kind: str | None = None, n: int = 3) -> list:
        rs = [r for r in self.resources if kind is None or r.kind == kind]
        return sorted(rs, key=lambda r: r.utilization, reverse=True)[:n]

    def bottleneck(self, threshold: float = 0.85):
        """The busiest resource, if anything is actually saturated."""
        hot = self.hottest(n=1)
        if hot and hot[0].utilization >= threshold:
            return hot[0]
        return None

    def window_bottlenecks(self, threshold: float = 0.85) -> list:
        """Per-window attribution: ``[(window, name-or-None)]``."""
        return [(w, w.bottleneck(threshold)) for w in self.windows]

    def render(self, top: int = 10) -> str:
        lines = [f"resource utilization over {self.interval_s:.1f}s (top {top}):"]
        for r in self.hottest(n=top):
            lines.append("  " + r.render())
        b = self.bottleneck()
        if b is not None:
            lines.append(f"  -> physical bottleneck: {b.name} ({b.utilization * 100:.0f}% busy)")
        else:
            lines.append("  -> no saturated resource: the application itself limits the run")
        return "\n".join(lines)

    def render_windows(self, threshold: float = 0.85) -> str:
        """The per-window bottleneck table."""
        if not self.windows:
            return "no utilization windows sampled"
        lines = [f"{'window':>18}  {'hottest resource':<30}{'util':>6}  bottleneck"]
        for w in self.windows:
            hot = w.hottest(n=1)
            name, util = hot[0] if hot else ("-", 0.0)
            b = w.bottleneck(threshold)
            lines.append(
                f"{w.t0_s:8.2f}-{w.t1_s:<8.2f}  {name:<30}{util * 100:5.1f}%  "
                f"{b if b is not None else '(app-limited)'}"
            )
        return "\n".join(lines)


def _iter_busy_holders(system: System):
    """Yield ``(name, kind, holder)`` for every disk and link, in a
    deterministic order, where ``holder.busy_s`` is the live cumulative
    busy counter.  Periodic samplers resolve this once and re-read only
    the counters — the topology is fixed after the system is built, so
    rebuilding the name strings every window is pure waste."""

    def disks(array, owner):
        for d in array.disks:
            yield f"{owner}:{d.name}", "disk", d.stats

    yield from disks(system.server_node.array, "ionode")
    for node in system.compute:
        if node.array is not None:
            yield from disks(node.array, node.name)

    nets = {id(system.cluster.comm_network): ("comm", system.cluster.comm_network)}
    nets[id(system.cluster.data_network)] = (
        "data" if not system.cluster.shared_network else "comm",
        system.cluster.data_network,
    )
    for label, net in nets.values():
        for direction, links in (("up", net.uplinks), ("down", net.downlinks)):
            for name, link in links.items():
                yield f"{label}:{name}:{direction}", "link", link


def _iter_busy(system: System):
    """Yield ``(name, kind, cumulative_busy_s)`` for every disk and
    link, in a deterministic order."""
    for name, kind, holder in _iter_busy_holders(system):
        yield name, kind, holder.busy_s


def capture_utilization(system: System) -> UtilizationSnapshot:
    """Capture the cumulative busy counters of every disk and link —
    the baseline of a subsequent :func:`snapshot_utilization` diff."""
    return UtilizationSnapshot(
        t_s=system.env.now,
        busy={name: (kind, busy) for name, kind, busy in _iter_busy(system)},
    )


def snapshot_utilization(
    system: System,
    since_s: float = 0.0,
    baseline: UtilizationSnapshot | None = None,
) -> UtilizationReport:
    """Busy fractions of every disk and link over a measured interval.

    ``baseline`` — a :func:`capture_utilization` snapshot taken at the
    interval's start — is diffed against the live counters, so only
    busy seconds accrued *within* the interval count.  When omitted,
    the system's own baseline (captured at build and on every
    :meth:`~repro.clusters.builder.System.reset`) is used, which makes
    warm-started systems report per-run utilization rather than
    lifetime totals.

    ``since_s`` additionally shifts the interval start forward — use
    it only to subtract setup time the system spent *idle*; for a
    busy prelude, capture a baseline at the boundary instead.
    """
    env = system.env
    if baseline is None:
        baseline = getattr(system, "counters_baseline", None)
    base_busy = baseline.busy if baseline is not None else {}
    start = max(since_s, baseline.t_s if baseline is not None else 0.0)
    interval = max(env.now - start, 1e-12)
    report = UtilizationReport(interval_s=interval)
    for name, kind, busy in _iter_busy(system):
        prior = base_busy.get(name)
        delta = max(busy - (prior[1] if prior is not None else 0.0), 0.0)
        # busy time is charged when a hold *starts*, so a transfer in
        # flight at snapshot time can push the fraction past 1 — cap
        # that transient, nothing else
        report.resources.append(
            ResourceUsage(name, kind, delta, min(delta / interval, 1.0))
        )
    return report
