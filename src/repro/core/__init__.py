"""The paper's contribution: the three-phase I/O evaluation methodology."""

from .characterize import (
    AppMeasure,
    AppProfile,
    characterize_app,
    characterize_level,
    characterize_system,
    LEVELS,
)
from .evaluation import (
    bottleneck_level,
    EvaluationReport,
    generate_used_percentage,
    UsedPercentageTable,
    UsedRow,
)
from .factors import (
    ConfigurableFactors,
    diff_factors,
    extract_factors,
    rank_configurations,
)
from .latency import characterize_latency, LatencyProfile, measure_latency_iops
from .methodology import Application, AppRun, Methodology
from .parallel import resolve_jobs, run_tasks
from .tablecache import default_cache_root, TableCache
from .prediction import (
    IOPrediction,
    MeasurePrediction,
    meets_requirement,
    predict_io_time,
    rank_predicted,
)
from .perftable import PerformanceTable, PerfRow
from .utilization import (
    ResourceUsage,
    UtilizationReport,
    UtilizationSnapshot,
    UtilizationWindow,
    capture_utilization,
    snapshot_utilization,
)
from .report import (
    format_characterization,
    format_perf_table,
    format_run_metrics,
    format_used_matrix,
    format_used_table,
)

__all__ = [
    "AppMeasure",
    "AppProfile",
    "characterize_app",
    "characterize_level",
    "characterize_system",
    "LEVELS",
    "bottleneck_level",
    "EvaluationReport",
    "generate_used_percentage",
    "UsedPercentageTable",
    "UsedRow",
    "ConfigurableFactors",
    "diff_factors",
    "extract_factors",
    "rank_configurations",
    "Application",
    "AppRun",
    "Methodology",
    "resolve_jobs",
    "run_tasks",
    "default_cache_root",
    "TableCache",
    "characterize_latency",
    "LatencyProfile",
    "measure_latency_iops",
    "IOPrediction",
    "MeasurePrediction",
    "meets_requirement",
    "predict_io_time",
    "rank_predicted",
    "PerformanceTable",
    "PerfRow",
    "format_characterization",
    "format_perf_table",
    "format_run_metrics",
    "format_used_matrix",
    "format_used_table",
    "ResourceUsage",
    "snapshot_utilization",
    "capture_utilization",
    "UtilizationReport",
    "UtilizationSnapshot",
    "UtilizationWindow",
]
