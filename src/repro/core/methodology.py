"""The three-phase methodology facade (paper Fig. 1).

Ties the pieces together:

1. **Characterization** — system performance tables per I/O path
   level (:func:`~repro.core.characterize.characterize_system`) and
   application profile from a traced run
   (:func:`~repro.core.characterize.characterize_app`).
2. **I/O configuration analysis** — configurable factors and the set
   of candidate configurations (:mod:`repro.core.factors`).
3. **Evaluation** — run the application on each configuration,
   generate used-percentage tables, locate inefficiency, and select
   the most suitable configuration.

Typical use::

    m = Methodology({name: aohyper_config(name) for name in AOHYPER_CONFIGS})
    m.characterize()                       # phase 1 (system side)
    reports = m.evaluate(app)              # phase 3 (runs the app per config)
    best = m.recommend(app_profile)        # configuration selection
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence

from ..simengine import Environment
from ..storage.base import AccessType
from ..clusters.builder import System, SystemConfig, build_system
from ..tracing import IOTracer
from .characterize import (
    AppProfile,
    characterize_app,
    DEFAULT_BLOCKS,
    LEVELS,
)
from .evaluation import EvaluationReport, generate_used_percentage
from .factors import ConfigurableFactors, extract_factors, rank_configurations
from .parallel import run_tasks
from .perftable import PerformanceTable
from .tablecache import TableCache

__all__ = ["Application", "AppRun", "Methodology"]


def _characterize_unit(task) -> PerformanceTable:
    """Worker: one (config, level) characterization.

    Module-level (not a closure) so it pickles into worker processes.
    Each unit builds its own fresh :class:`Environment`, so units are
    independent and their parallel results are bit-identical to a
    serial run.
    """
    config, level, block_sizes, file_bytes, ior_nprocs, ior_file_bytes = task
    from .characterize import characterize_level

    return characterize_level(
        config, level, block_sizes, file_bytes, ior_nprocs, ior_file_bytes
    )


def _evaluate_unit(task) -> EvaluationReport:
    """Worker: run the application on one configuration."""
    import time as _time

    (name, config, app, access, tables, phase_fastpath, warm_start,
     instrument, keep_events, window_s, sanitize, faults) = task
    from dataclasses import replace as _replace
    from ..clusters.builder import warm_system
    from .replay import ReplaySettings

    if faults is not None:
        from ..faults import FaultSchedule

        if not isinstance(faults, FaultSchedule):
            faults = FaultSchedule.from_dict(faults)
        # the degraded-mode report re-attributes utilization per fault
        # window, which needs the sampled observability windows
        instrument = True
    reference = None
    if faults is not None:
        # fault-free twin of the run: the degraded report compares
        # each fault window against the same simulated-time span of
        # this baseline, cancelling the workload's own phase mix
        ref_system = build_system(Environment(), config)
        ref_system.replay_settings = _replace(
            ReplaySettings.from_env(), enabled=False
        )
        ref_run = app.run(ref_system)
        reference = (list(ref_run.tracer.events), ref_system.env.now)
    if warm_start:
        # reuse this worker's previously built topology for the config
        system = warm_system(config)
    else:
        system = build_system(Environment(), config)
    settings = ReplaySettings.from_env()
    if phase_fastpath is not None:
        settings = _replace(settings, enabled=bool(phase_fastpath))
    if faults is not None:
        # the accelerator extrapolates repeated phases from healthy
        # occurrences, which would paper over mid-run degradation
        settings = _replace(settings, enabled=False)
    system.replay_settings = settings
    registry = None
    if instrument:
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry(system)
        registry.begin_run(window_s=window_s)
    sanitizer = None
    if sanitize is None:
        from ..analysis.sanitizer import sanitize_enabled

        sanitize = sanitize_enabled()
    if sanitize:
        from ..analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer(system).attach()
    injector = None
    if faults is not None:
        from ..faults import FaultInjector

        injector = FaultInjector(system, faults).arm()
    # wall-clock here measures the *worker's* real runtime for the
    # perf report; it never feeds simulated time
    wall0 = _time.perf_counter()  # simlint: ignore[wall-clock]
    data_loss = None
    run = None
    try:
        run = app.run(system)
    except Exception as exc:
        from ..hardware.raid import DataLossError

        if injector is None or not isinstance(exc, DataLossError):
            raise
        # terminal degraded state: salvage what the run traced so far
        data_loss = str(exc)
    wall_s = _time.perf_counter() - wall0  # simlint: ignore[wall-clock]
    if registry is not None:
        registry.end_run()
    sanitizer_report = None
    if sanitizer is not None:
        sanitizer_report = sanitizer.finish()
        sanitizer.detach()
    if run is not None:
        tracer = run.tracer
        execution_time_s = run.execution_time_s
        io_time_s = run.io_time_s
        bytes_written = run.bytes_written
        bytes_read = run.bytes_read
    else:
        tracer = getattr(system, "last_tracer", None)
        if tracer is None:
            tracer = IOTracer()
        execution_time_s = system.env.now
        io_time_s = sum(e.duration for e in tracer.events)
        bytes_written = sum(e.total_bytes for e in tracer.events if e.op == "write")
        bytes_read = sum(e.total_bytes for e in tracer.events if e.op == "read")
    profile = characterize_app(tracer, access=access)
    used = generate_used_percentage(name, profile, tables)
    replay = system.last_replay.stats if system.last_replay is not None else None
    util_report = registry.utilization_report() if registry is not None else None
    faults_report = None
    if injector is not None:
        from ..faults import build_degraded_report

        faults_report = build_degraded_report(
            name,
            system,
            faults,
            injector.windows,
            tracer,
            profile,
            tables,
            utilization=util_report,
            data_loss=data_loss,
            healthy_events=reference[0],
            healthy_end=reference[1],
        )
    return EvaluationReport(
        config_name=name,
        execution_time_s=execution_time_s,
        io_time_s=io_time_s,
        bytes_written=bytes_written,
        bytes_read=bytes_read,
        used=used,
        profile=profile,
        replay=replay,
        wall_s=wall_s,
        metrics=(
            {"counters": registry.deltas(), "histograms": registry.histograms()}
            if registry is not None
            else None
        ),
        utilization=util_report,
        replay_phases=(
            system.last_replay.observability()
            if instrument and system.last_replay is not None
            else None
        ),
        events=list(tracer.events) if keep_events else None,
        sanitizer=sanitizer_report,
        faults=faults_report,
    )


@dataclass
class AppRun:
    """What an application run must report back to the methodology."""

    tracer: IOTracer
    execution_time_s: float
    io_time_s: float
    bytes_written: int
    bytes_read: int


class Application(Protocol):
    """Anything the evaluation phase can execute on a system."""

    name: str

    def run(self, system: System) -> AppRun:  # pragma: no cover - protocol
        ...


class Methodology:
    """Performance evaluation of the I/O system over named configurations."""

    def __init__(
        self,
        configs: dict[str, SystemConfig],
        levels: Sequence[str] = LEVELS,
        block_sizes: Sequence[int] = DEFAULT_BLOCKS,
        char_file_bytes: Optional[int] = None,
        ior_nprocs: int = 8,
        ior_file_bytes: Optional[int] = None,
    ):
        if not configs:
            raise ValueError("need at least one configuration")
        self.configs = dict(configs)
        self.levels = tuple(levels)
        self.block_sizes = tuple(block_sizes)
        self.char_file_bytes = char_file_bytes
        self.ior_nprocs = ior_nprocs
        self.ior_file_bytes = ior_file_bytes
        self.tables: dict[str, dict[str, PerformanceTable]] = {}

    # ------------------------------------------------------------------
    # phase 1: characterization (system side)
    # ------------------------------------------------------------------
    def _sweep_params(self) -> dict:
        """The sweep parameters that, with a config, determine a table."""
        return {
            "levels": self.levels,
            "block_sizes": self.block_sizes,
            "char_file_bytes": self.char_file_bytes,
            "ior_nprocs": self.ior_nprocs,
            "ior_file_bytes": self.ior_file_bytes,
        }

    def cache_key(self, name: str, cache: TableCache) -> str:
        """The cache key of one configuration under this sweep."""
        return cache.key(self.configs[name], **self._sweep_params())

    def characterize(
        self,
        names: Optional[Sequence[str]] = None,
        n_jobs: Optional[int] = None,
        cache: "TableCache | str | None" = None,
        refresh: bool = False,
    ) -> dict[str, dict[str, PerformanceTable]]:
        """Build performance tables for each configuration and level.

        ``n_jobs`` fans the independent (config, level) units out over
        worker processes (default: the ``REPRO_JOBS`` environment
        variable, else serial; ``0`` = one per CPU).  Results are
        merged in a fixed (name, level) order, so the output is
        identical for any job count.

        ``cache`` (a :class:`TableCache` or a directory path) loads
        previously characterized tables keyed by the configuration's
        fingerprint plus the sweep parameters, and stores fresh
        results for next time.  ``refresh=True`` recomputes and
        overwrites cached entries.
        """
        names = list(names or self.configs)
        if cache is not None and not isinstance(cache, TableCache):
            cache = TableCache(cache)

        pending = list(names)
        if cache is not None and not refresh:
            pending = []
            for name in names:
                hit = cache.load(self.cache_key(name, cache), name, self.levels)
                if hit is not None:
                    self.tables[name] = hit
                else:
                    pending.append(name)

        if pending:
            tasks = [
                (
                    self.configs[name],
                    level,
                    self.block_sizes,
                    self.char_file_bytes,
                    self.ior_nprocs,
                    self.ior_file_bytes,
                )
                for name in pending
                for level in self.levels
            ]
            results = run_tasks(_characterize_unit, tasks, n_jobs)
            it = iter(results)
            for name in pending:
                self.tables[name] = {level: next(it) for level in self.levels}
            if cache is not None:
                for name in pending:
                    cache.store(
                        self.cache_key(name, cache),
                        name,
                        self.tables[name],
                        meta={"sweep": {k: str(v) for k, v in self._sweep_params().items()}},
                    )
        return self.tables

    def characterize_trace(
        self, trace, access: AccessType = AccessType.GLOBAL
    ) -> AppProfile:
        """Phase 1, application side, from an imported trace.

        ``trace`` is an :class:`~repro.tracing.IOTracer` or anything
        :func:`repro.tracing.ingest.load_trace` accepts (a portable
        trace file path or its text).  The resulting profile feeds
        :meth:`recommend` / prediction directly — a captured
        production trace ranks candidate configurations without a
        single simulated application run.
        """
        from ..tracing.ingest import load_trace

        if not isinstance(trace, IOTracer):
            trace = load_trace(trace)
        return characterize_app(trace, access=access)

    # ------------------------------------------------------------------
    # phase 2: configuration analysis
    # ------------------------------------------------------------------
    def factors(self) -> dict[str, ConfigurableFactors]:
        return {name: extract_factors(cfg) for name, cfg in self.configs.items()}

    # ------------------------------------------------------------------
    # phase 3: evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        app: Application,
        names: Optional[Sequence[str]] = None,
        access: AccessType = AccessType.GLOBAL,
        n_jobs: Optional[int] = None,
        phase_fastpath: Optional[bool] = None,
        warm_start: bool = False,
        instrument: bool = False,
        keep_events: bool = False,
        window_s: Optional[float] = None,
        sanitize: Optional[bool] = None,
        faults=None,
    ) -> dict[str, EvaluationReport]:
        """Run the application on each configuration and compare against
        the characterized tables (phase 1 must have run).

        Each configuration runs on its own fresh system, so ``n_jobs``
        fans the runs out over worker processes exactly like
        :meth:`characterize`; reports come back keyed in input order.

        ``phase_fastpath`` forces the phase-replay accelerator on or
        off for every run (``None`` keeps the environment default, see
        ``REPRO_NO_PHASE_FASTPATH``).  ``warm_start=True`` reuses one
        built system per configuration within each worker process
        (reset between runs) instead of rebuilding the topology — the
        results are identical either way.

        ``instrument=True`` attaches a
        :class:`~repro.obs.metrics.MetricsRegistry` to each run:
        reports come back with per-level counter deltas, a windowed
        utilization report (sampled every ``window_s`` simulated
        seconds) and phase-replay observability.  ``keep_events=True``
        additionally carries the raw IOEvent stream back for trace
        export.

        ``sanitize`` attaches the runtime sim-sanitizer
        (:class:`~repro.analysis.sanitizer.SimSanitizer`) to each run;
        reports come back with an invariant-check summary in
        ``report.sanitizer``.  ``None`` (the default) follows the
        ``REPRO_SANITIZE`` environment variable.

        ``faults`` injects a deterministic
        :class:`~repro.faults.FaultSchedule` (or its dict form) into
        every run: disks fail mid-run with background RAID rebuilds,
        the NFS server stalls, links flap.  Reports come back with a
        degraded-mode report in ``report.faults`` (see
        :func:`repro.faults.build_degraded_report`); instrumentation
        is forced on and the phase-replay accelerator off, since both
        would misrepresent a run whose performance changes mid-flight.
        """
        names = list(names or self.configs)
        for name in names:
            if name not in self.tables:
                raise RuntimeError(f"configuration {name!r} not characterized yet")
        if faults is not None:
            from ..faults import FaultSchedule

            if not isinstance(faults, FaultSchedule):
                faults = FaultSchedule.from_dict(faults)
        tasks = [
            (name, self.configs[name], app, access, self.tables[name],
             phase_fastpath, warm_start, instrument, keep_events, window_s,
             sanitize, faults)
            for name in names
        ]
        results = run_tasks(_evaluate_unit, tasks, n_jobs)
        return {name: report for name, report in zip(names, results)}

    def evaluate_single(self, name: str, app: Application, **kw) -> EvaluationReport:
        """:meth:`evaluate` for exactly one configuration.

        The sweep worker's entry point: one combo in, one report out,
        with the same keyword surface as :meth:`evaluate`.
        """
        return self.evaluate(app, names=[name], **kw)[name]

    def recommend(
        self,
        profile: AppProfile,
        level: str = "nfs",
        require_redundancy: bool = False,
    ):
        """Rank configurations for an application profile (phase 2+3)."""
        return rank_configurations(
            profile,
            self.tables,
            level=level,
            require_redundancy=require_redundancy,
            factors_by_config=self.factors(),
        )

    # ------------------------------------------------------------------
    # persistence: characterization is expensive, keep it
    # ------------------------------------------------------------------
    def save_tables(self, directory) -> list[str]:
        """Write every performance table as ``<config>_<level>.csv``.

        Returns the written file names.  Re-load with
        :meth:`load_tables`, so phase 1 runs once per system and its
        results serve later evaluation sessions.
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name, tables in self.tables.items():
            for level, table in tables.items():
                path = directory / f"{name}_{level}.csv"
                path.write_text(table.to_csv())
                written.append(path.name)
        return sorted(written)

    def load_tables(self, directory) -> dict[str, dict[str, PerformanceTable]]:
        """Load tables previously written by :meth:`save_tables`.

        Only files matching this methodology's configuration names are
        loaded; missing files are simply absent from the result.
        """
        from pathlib import Path

        directory = Path(directory)
        for name in self.configs:
            tables: dict[str, PerformanceTable] = {}
            for level in self.levels:
                path = directory / f"{name}_{level}.csv"
                if path.exists():
                    tables[level] = PerformanceTable.from_csv(level, path.read_text())
            if tables:
                self.tables[name] = tables
        return self.tables
