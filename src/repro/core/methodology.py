"""The three-phase methodology facade (paper Fig. 1).

Ties the pieces together:

1. **Characterization** — system performance tables per I/O path
   level (:func:`~repro.core.characterize.characterize_system`) and
   application profile from a traced run
   (:func:`~repro.core.characterize.characterize_app`).
2. **I/O configuration analysis** — configurable factors and the set
   of candidate configurations (:mod:`repro.core.factors`).
3. **Evaluation** — run the application on each configuration,
   generate used-percentage tables, locate inefficiency, and select
   the most suitable configuration.

Typical use::

    m = Methodology({name: aohyper_config(name) for name in AOHYPER_CONFIGS})
    m.characterize()                       # phase 1 (system side)
    reports = m.evaluate(app)              # phase 3 (runs the app per config)
    best = m.recommend(app_profile)        # configuration selection
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence

from ..simengine import Environment
from ..storage.base import AccessType
from ..clusters.builder import System, SystemConfig, build_system
from ..tracing import IOTracer
from .characterize import (
    AppProfile,
    characterize_app,
    characterize_system,
    DEFAULT_BLOCKS,
    LEVELS,
)
from .evaluation import EvaluationReport, generate_used_percentage
from .factors import ConfigurableFactors, extract_factors, rank_configurations
from .perftable import PerformanceTable

__all__ = ["Application", "AppRun", "Methodology"]


@dataclass
class AppRun:
    """What an application run must report back to the methodology."""

    tracer: IOTracer
    execution_time_s: float
    io_time_s: float
    bytes_written: int
    bytes_read: int


class Application(Protocol):
    """Anything the evaluation phase can execute on a system."""

    name: str

    def run(self, system: System) -> AppRun:  # pragma: no cover - protocol
        ...


class Methodology:
    """Performance evaluation of the I/O system over named configurations."""

    def __init__(
        self,
        configs: dict[str, SystemConfig],
        levels: Sequence[str] = LEVELS,
        block_sizes: Sequence[int] = DEFAULT_BLOCKS,
        char_file_bytes: Optional[int] = None,
        ior_nprocs: int = 8,
        ior_file_bytes: Optional[int] = None,
    ):
        if not configs:
            raise ValueError("need at least one configuration")
        self.configs = dict(configs)
        self.levels = tuple(levels)
        self.block_sizes = tuple(block_sizes)
        self.char_file_bytes = char_file_bytes
        self.ior_nprocs = ior_nprocs
        self.ior_file_bytes = ior_file_bytes
        self.tables: dict[str, dict[str, PerformanceTable]] = {}

    # ------------------------------------------------------------------
    # phase 1: characterization (system side)
    # ------------------------------------------------------------------
    def characterize(self, names: Optional[Sequence[str]] = None) -> dict[str, dict[str, PerformanceTable]]:
        """Build performance tables for each configuration and level."""
        for name in names or self.configs:
            self.tables[name] = characterize_system(
                self.configs[name],
                levels=self.levels,
                block_sizes=self.block_sizes,
                file_bytes=self.char_file_bytes,
                ior_nprocs=self.ior_nprocs,
                ior_file_bytes=self.ior_file_bytes,
            )
        return self.tables

    # ------------------------------------------------------------------
    # phase 2: configuration analysis
    # ------------------------------------------------------------------
    def factors(self) -> dict[str, ConfigurableFactors]:
        return {name: extract_factors(cfg) for name, cfg in self.configs.items()}

    # ------------------------------------------------------------------
    # phase 3: evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        app: Application,
        names: Optional[Sequence[str]] = None,
        access: AccessType = AccessType.GLOBAL,
    ) -> dict[str, EvaluationReport]:
        """Run the application on each configuration and compare against
        the characterized tables (phase 1 must have run)."""
        reports: dict[str, EvaluationReport] = {}
        for name in names or self.configs:
            if name not in self.tables:
                raise RuntimeError(f"configuration {name!r} not characterized yet")
            system = build_system(Environment(), self.configs[name])
            run = app.run(system)
            profile = characterize_app(run.tracer, access=access)
            used = generate_used_percentage(name, profile, self.tables[name])
            reports[name] = EvaluationReport(
                config_name=name,
                execution_time_s=run.execution_time_s,
                io_time_s=run.io_time_s,
                bytes_written=run.bytes_written,
                bytes_read=run.bytes_read,
                used=used,
                profile=profile,
            )
        return reports

    def recommend(
        self,
        profile: AppProfile,
        level: str = "nfs",
        require_redundancy: bool = False,
    ):
        """Rank configurations for an application profile (phase 2+3)."""
        return rank_configurations(
            profile,
            self.tables,
            level=level,
            require_redundancy=require_redundancy,
            factors_by_config=self.factors(),
        )

    # ------------------------------------------------------------------
    # persistence: characterization is expensive, keep it
    # ------------------------------------------------------------------
    def save_tables(self, directory) -> list[str]:
        """Write every performance table as ``<config>_<level>.csv``.

        Returns the written file names.  Re-load with
        :meth:`load_tables`, so phase 1 runs once per system and its
        results serve later evaluation sessions.
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name, tables in self.tables.items():
            for level, table in tables.items():
                path = directory / f"{name}_{level}.csv"
                path.write_text(table.to_csv())
                written.append(path.name)
        return sorted(written)

    def load_tables(self, directory) -> dict[str, dict[str, PerformanceTable]]:
        """Load tables previously written by :meth:`save_tables`.

        Only files matching this methodology's configuration names are
        loaded; missing files are simply absent from the result.
        """
        from pathlib import Path

        directory = Path(directory)
        for name in self.configs:
            tables: dict[str, PerformanceTable] = {}
            for level in self.levels:
                path = directory / f"{name}_{level}.csv"
                if path.exists():
                    tables[level] = PerformanceTable.from_csv(level, path.read_text())
            if tables:
                self.tables[name] = tables
        return self.tables
