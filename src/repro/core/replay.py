"""Phase-aware replay acceleration for the evaluation phase.

The paper's key observation (§III-A2) is that scientific applications
are *repetitive*: "m phases will exist in the application", each phase
a pattern repeated many times with an identical signature.  Full
evaluation therefore re-simulates the same I/O phase occurrence after
occurrence — BT-IO class C issues the same collective write 40 times,
MADbench2 the same 162 MB read/write 8 times per function.

:class:`PhaseReplayAccelerator` exploits that repetition *online*
while the application model runs: the MPI-IO layer asks it before
every operation.  Each distinct phase key — the event signature used
by :class:`~repro.tracing.phases.PhaseDetector` plus the rank's
barrier epoch, so MADbench2's S-writes and W-writes stay separate
phases exactly like the paper's S_w/W_w columns — goes through three
states:

1. **warm-up** — the first occurrences run through the full DES
   (cache warm-up, allocation, contention all simulated);
2. **verified** — once at least ``warmup`` occurrences ran *and* the
   last two agree within ``rel_tol`` (bitwise in ``exact`` mode), the
   phase is steady: its per-occurrence cost is known;
3. **extrapolated** — remaining occurrences are closed analytically:
   the caller charges the steady duration with a single calendar
   entry and applies the state side effects (file growth, cache
   residency) without simulating the transfer.

Phases whose occurrences keep disagreeing past ``max_warmup``
(contention drift, throttling oscillation) fall back to full replay —
correctness degrades to speed, never the other way around.

Escape hatches: the ``REPRO_NO_PHASE_FASTPATH`` environment variable
(or ``--no-phase-fastpath`` on the CLI) disables extrapolation
globally; ``ReplaySettings(exact=True)`` only extrapolates phases
whose observed timings repeat bit-for-bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ReplaySettings",
    "ReplayStats",
    "PhaseReplayAccelerator",
    "phase_fastpath_enabled",
]


def phase_fastpath_enabled() -> bool:
    """The environment-level default for phase extrapolation."""
    return os.environ.get("REPRO_NO_PHASE_FASTPATH", "") in ("", "0")


@dataclass(frozen=True)
class ReplaySettings:
    """Knobs of the phase-replay accelerator."""

    #: extrapolate at all (the escape hatch flips this off)
    enabled: bool = True
    #: minimum fully simulated occurrences per phase (the paper's K)
    warmup: int = 2
    #: keep simulating past ``warmup`` until the phase verifies, up to
    #: this many occurrences; then give up on the phase
    max_warmup: int = 8
    #: consecutive agreeing occurrence *pairs* required before the
    #: phase counts as steady — one lucky pair early in a drifting
    #: phase (cache still filling, flusher ramping) must not lock in
    #: a wrong steady value
    confirm: int = 2
    #: re-simulate one occurrence after this many extrapolated ones
    #: and verify it still agrees with the steady value; on
    #: disagreement the phase falls back to full replay (0 = never)
    recheck: int = 8
    #: relative tolerance for "two occurrences agree".  Occurrence
    #: timings of a steady phase are not bit-identical in a contended
    #: DES — background flusher scheduling and network slot alignment
    #: wobble them at the sub-percent level — so the default admits
    #: that wobble; the locked steady value is the *mean* of the
    #: verification window, cancelling it.
    rel_tol: float = 0.02
    #: require bit-identical occurrence timings before extrapolating
    exact: bool = False

    @staticmethod
    def from_env() -> "ReplaySettings":
        """Settings honouring the ``REPRO_*`` environment knobs."""
        kw = {}
        if not phase_fastpath_enabled():
            kw["enabled"] = False
        w = os.environ.get("REPRO_PHASE_WARMUP", "").strip()
        if w:
            kw["warmup"] = max(int(w), 1)
            kw["max_warmup"] = max(int(w) * 4, kw["warmup"])
        t = os.environ.get("REPRO_PHASE_TOL", "").strip()
        if t:
            kw["rel_tol"] = float(t)
        return ReplaySettings(**kw)


@dataclass
class ReplayStats:
    """What the accelerator did during one application run."""

    simulated: int = 0  # occurrences run through the full DES
    extrapolated: int = 0  # occurrences closed analytically
    fallback_phases: int = 0  # phases that never went steady
    phases: int = 0  # distinct phase keys seen
    #: simulated seconds spent inside fully simulated occurrences
    simulated_sim_s: float = 0.0
    #: simulated seconds charged analytically for extrapolated ones —
    #: the time the DES did *not* have to step through event by event
    extrapolated_sim_s: float = 0.0

    @property
    def total(self) -> int:
        return self.simulated + self.extrapolated

    @property
    def extrapolated_fraction(self) -> float:
        return self.extrapolated / self.total if self.total else 0.0

    def estimated_saved_wall_s(self, wall_s: float) -> float:
        """Estimated wall-clock seconds extrapolation saved a run that
        took ``wall_s`` to execute.

        Scales the run's measured cost per *simulated* second of
        fully simulated phase time onto the extrapolated phase time —
        an estimate (extrapolated occurrences still pay bookkeeping,
        and non-phase time is attributed pro rata), not a measurement.
        """
        if wall_s <= 0 or self.simulated_sim_s <= 0 or self.extrapolated_sim_s <= 0:
            return 0.0
        return wall_s * self.extrapolated_sim_s / self.simulated_sim_s

    def as_dict(self) -> dict:
        return {
            "phases": self.phases,
            "simulated": self.simulated,
            "extrapolated": self.extrapolated,
            "fallback_phases": self.fallback_phases,
            "extrapolated_fraction": round(self.extrapolated_fraction, 4),
            "simulated_sim_s": round(self.simulated_sim_s, 6),
            "extrapolated_sim_s": round(self.extrapolated_sim_s, 6),
        }


class _PhaseState:
    """Per-phase-key state machine: warm-up -> verified | fallback."""

    __slots__ = (
        "last",
        "prev",
        "seen",
        "steady",
        "disabled",
        "streak",
        "since_check",
        "occ",
        "window",
    )

    def __init__(self):
        self.last: Optional[float] = None
        self.prev: Optional[float] = None
        self.seen = 0
        self.steady: Optional[float] = None
        self.disabled = False
        #: consecutive agreeing occurrence pairs so far
        self.streak = 0
        #: extrapolations since the last revalidation
        self.since_check = 0
        #: total occurrences of this key (simulated + extrapolated) —
        #: the member's *round* index inside its group
        self.occ = 0
        #: the last few simulated durations — the verification window
        #: whose mean becomes the steady value
        self.window: list = []


class _GroupState:
    """Shared state of sibling phases (same pattern, different ranks).

    Ranks execute the occurrences of one application phase
    concurrently, so each rank's steady duration embeds the mutual
    contention.  Extrapolating one rank's occurrences while a sibling
    still simulates would remove that rank's load from the sibling's
    run — the sibling would observe durations full replay never
    produces.  Worse, for rendezvous regions (boundary exchanges) a
    rank that extrapolates never sends, so a sibling that simulates
    deadlocks on the matching receive.

    The group therefore decides extrapolation *per round*: the first
    member to reach occurrence round ``r`` freezes the verdict in
    ``decisions[r]`` — extrapolate only when every member of every
    group in the same *scope* is steady — and every member follows the
    frozen verdict for its own round ``r`` even if the group is
    poisoned meanwhile.  Revalidation is a whole round decided to
    simulate; a member whose revalidation occurrence disagrees falls
    back and poisons the group for all future rounds.
    """

    __slots__ = ("members", "disabled", "rounds_since_check", "decisions")

    def __init__(self):
        # insertion-ordered dict used as an ordered set: membership is
        # iterated when deciding rounds, and that decision order must
        # not depend on tuple hashing
        self.members: dict = {}
        self.disabled = False
        #: extrapolated rounds since the last synchronized revalidation
        self.rounds_since_check = 0
        #: frozen per-round verdicts: round index -> extrapolate?
        self.decisions: dict = {}


class PhaseReplayAccelerator:
    """Online per-phase occurrence verifier and extrapolator.

    One accelerator serves one application run (one
    :class:`~repro.mpi.sim.MPIWorld`); state never leaks across runs.
    Keys are opaque hashable tuples built by the MPI-IO layer from the
    :meth:`~repro.tracing.events.IOEvent.signature` geometry plus the
    rank's barrier epoch.
    """

    def __init__(self, settings: Optional[ReplaySettings] = None):
        self.settings = settings or ReplaySettings.from_env()
        self._phases: dict[tuple, _PhaseState] = {}
        self._groups: dict[tuple, _GroupState] = {}
        #: scope key -> groups whose phases run concurrently (same
        #: barrier epoch, same contended resources).  A group may only
        #: extrapolate while every group in its scope is fully steady:
        #: MADbench2's W function interleaves reads and writes — if the
        #: write group extrapolated while the read group still
        #: simulated, the simulated reads would run without the
        #: concurrent write load full replay has.
        self._scopes: dict[tuple, dict] = {}
        self.stats = ReplayStats()

    # ------------------------------------------------------------------
    def steady(
        self,
        key: tuple,
        group: Optional[tuple] = None,
        scope: Optional[tuple] = None,
    ) -> Optional[float]:
        """The steady per-occurrence duration, or ``None`` while the
        phase still needs full simulation.  Counts the occurrence.

        ``group`` ties sibling phases of concurrent ranks together:
        extrapolation is decided per occurrence *round* and frozen, so
        every member takes the same action for the same round (see
        :class:`_GroupState`).  ``scope`` ties *groups* whose phases
        contend on the same resources: no group in a scope
        extrapolates while any of them is unsteady.
        """
        if not self.settings.enabled:
            return None
        st = self._phases.get(key)
        if st is None:
            return None
        if group is None:
            if st.steady is None:
                return None
            if self.settings.recheck and st.since_check >= self.settings.recheck:
                # revalidation due: force one real occurrence through
                # the DES; observe() compares it against steady
                return None
            st.since_check += 1
            st.occ += 1
            self.stats.extrapolated += 1
            self.stats.extrapolated_sim_s += st.steady
            return st.steady
        g = self._groups.get(group)
        if g is None:
            return None
        r = st.occ
        d = g.decisions.get(r)
        if d is None:
            d = self._decide(g, scope)
            g.decisions[r] = d
            if len(g.decisions) > 256:
                g.decisions = {i: v for i, v in g.decisions.items() if i >= r - 128}
        if not d:
            return None
        # honour the frozen verdict even if the member lost its steady
        # value since the round was decided (a sibling's revalidation
        # poisoned the group): breaking the round here would desync the
        # members — for rendezvous regions, a deadlock.  ``last`` is the
        # member's most recent fully simulated duration.
        val = st.steady if st.steady is not None else st.last
        if val is None:  # pragma: no cover - members always simulated once
            return None
        st.occ += 1
        self.stats.extrapolated += 1
        self.stats.extrapolated_sim_s += val
        return val

    def _decide(self, g: _GroupState, scope: Optional[tuple]) -> bool:
        """Freeze the extrapolate-or-simulate verdict for a new round."""
        peers = [g]
        if scope is not None:
            peers = [self._groups[gk] for gk in self._scopes.get(scope, ())]
            if g not in peers:
                peers.append(g)
        for p in peers:
            if p.disabled:
                return False
            if not p.members:
                return False
            if any(self._phases[k].steady is None for k in p.members):
                return False
        if self.settings.recheck and g.rounds_since_check >= self.settings.recheck:
            g.rounds_since_check = 0
            return False
        g.rounds_since_check += 1
        return True

    def observe(
        self,
        key: tuple,
        duration: float,
        group: Optional[tuple] = None,
        scope: Optional[tuple] = None,
    ) -> None:
        """Record a fully simulated occurrence's duration and advance
        the phase's state machine."""
        st = self._phases.get(key)
        g = None
        if group is not None:
            g = self._groups.get(group)
            if g is None:
                g = self._groups[group] = _GroupState()
            g.members[key] = None
            if scope is not None:
                self._scopes.setdefault(scope, {})[group] = None
        if st is None:
            st = self._phases[key] = _PhaseState()
            self.stats.phases += 1
        self.stats.simulated += 1
        self.stats.simulated_sim_s += duration
        st.prev, st.last = st.last, duration
        st.seen += 1
        st.occ += 1
        if not self.settings.enabled or st.disabled:
            return
        st.window.append(duration)
        if len(st.window) > self.settings.confirm + 1:
            del st.window[0]
        if st.steady is not None:
            # a revalidation occurrence: the phase stays steady only
            # while real occurrences keep agreeing with the locked
            # value — a drifted phase falls back permanently
            if self._agree(st.steady, duration):
                if g is None:
                    st.since_check = 0
            else:
                st.steady = None
                st.streak = 0
                st.disabled = True
                self.stats.fallback_phases += 1
                if g is not None:
                    g.disabled = True
            return
        if st.seen >= self.settings.warmup and st.prev is not None:
            if self._agree(st.prev, st.last):
                st.streak += 1
                if st.streak >= self.settings.confirm:
                    # lock the mean of the verified window: occurrence
                    # wobble (flusher/slot alignment) cancels, so the
                    # extrapolated total tracks full replay closer than
                    # any single occurrence would (exact mode locks the
                    # bit-identical value itself)
                    st.steady = (
                        st.last
                        if self.settings.exact
                        else sum(st.window) / len(st.window)
                    )
                return
            st.streak = 0
            if st.seen >= self.settings.max_warmup:
                st.disabled = True
                self.stats.fallback_phases += 1
                if g is not None:
                    # a sibling that cannot verify poisons the group:
                    # extrapolating around it would strip its load from
                    # the simulated occurrences it still runs
                    g.disabled = True

    def _agree(self, a: float, b: float) -> bool:
        if self.settings.exact:
            return a == b
        if a == b:
            return True
        return abs(a - b) <= self.settings.rel_tol * max(abs(a), abs(b))

    # ------------------------------------------------------------------
    def phase_report(self) -> list[dict]:
        """Per-phase summary (for debugging and the perf benchmark)."""
        out = []
        for key, st in self._phases.items():
            out.append(
                {
                    "key": key,
                    "simulated": st.seen,
                    "extrapolated": st.occ - st.seen,
                    "steady_s": st.steady,
                    "fallback": st.disabled,
                }
            )
        return out

    def observability(self) -> dict:
        """The replay section of a run report: aggregate stats, the
        verification tolerance in force, and a JSON-safe per-phase
        breakdown of fully replayed vs extrapolated occurrences."""
        detail = [
            {
                "key": repr(p["key"]),
                "simulated": p["simulated"],
                "extrapolated": p["extrapolated"],
                "steady_s": p["steady_s"],
                "fallback": p["fallback"],
            }
            for p in self.phase_report()
        ]
        return {
            **self.stats.as_dict(),
            "enabled": self.settings.enabled,
            "rel_tol": self.settings.rel_tol,
            "exact": self.settings.exact,
            "phases_fully_simulated": sum(
                1 for p in detail if p["extrapolated"] == 0
            ),
            "phases_extrapolated": sum(1 for p in detail if p["extrapolated"] > 0),
            "phase_detail": detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"<PhaseReplayAccelerator phases={s.phases} simulated={s.simulated}"
            f" extrapolated={s.extrapolated}>"
        )
