"""Persistent characterization cache keyed by configuration fingerprints.

Phase 1 (characterization) is the expensive step of the methodology —
tens of seconds of simulated benchmarks per configuration — yet its
result is a pure function of the :class:`~repro.clusters.builder.
SystemConfig` and the sweep parameters.  :class:`TableCache` stores
each result on disk under a :func:`~repro.fingerprint.fingerprint` of
those inputs, in the same CSV format as
:meth:`~repro.core.methodology.Methodology.save_tables`, so warm
loads are near-instant and entries stay human-inspectable.

Layout::

    <root>/
      <fingerprint>/
        meta.json                  # config name, sweep params, levels
        <config>_<level>.csv       # one PerformanceTable per level

The root directory resolves from (first match wins) an explicit
``root`` argument, the ``REPRO_CACHE_DIR`` environment variable, or
``~/.cache/repro/tables``.  Fingerprints cover every field of the
config and sweep, so editing a configuration *invalidates by
construction* — stale entries are never returned, only orphaned.
:meth:`invalidate` removes entries explicitly (e.g. after a simulator
change that alters the modelled rates).
"""

from __future__ import annotations

import json
import logging
import os
import shutil
from pathlib import Path
from typing import Optional, Sequence

from ..fingerprint import fingerprint
from .perftable import PerformanceTable

__all__ = ["TableCache", "default_cache_root"]

log = logging.getLogger(__name__)


def default_cache_root() -> Path:
    """The cache directory used when none is given explicitly."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "tables"


class TableCache:
    """On-disk store of per-level performance tables."""

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root) if root is not None else default_cache_root()

    # ------------------------------------------------------------------
    def key(self, config, **sweep) -> str:
        """Cache key for a configuration plus sweep parameters."""
        return fingerprint(config, sweep)

    def entry_dir(self, key: str) -> Path:
        return self.root / key

    # ------------------------------------------------------------------
    def load(
        self, key: str, config_name: str, levels: Sequence[str]
    ) -> Optional[dict[str, PerformanceTable]]:
        """The cached tables for ``key``, or ``None`` on any miss.

        A hit requires *every* requested level to be present — a
        partial entry (e.g. written by a run with fewer levels) is
        treated as a miss so callers never mix cached and missing
        levels silently.

        A corrupt entry (truncated write, hand-edited CSV, bit rot)
        is **quarantined**, not raised: the whole entry directory is
        renamed to ``<key>.corrupt`` (kept for inspection), a warning
        is logged, and the miss makes the caller recompute — a broken
        cache never takes characterization down with it.
        """
        entry = self.entry_dir(key)
        tables: dict[str, PerformanceTable] = {}
        for level in levels:
            path = entry / f"{config_name}_{level}.csv"
            if not path.exists():
                return None
            try:
                tables[level] = PerformanceTable.from_csv(level, path.read_text())
            except Exception as exc:
                self._quarantine(entry, exc)
                return None
        return tables

    def _quarantine(self, entry: Path, reason: Exception) -> Optional[Path]:
        """Move a corrupt entry aside as ``<name>.corrupt`` and log it.

        Concurrent processes sharing a cache volume can both read the
        same corrupt entry and race to quarantine it; losing that race
        must not raise (the caller just recomputes either way):

        * the entry vanished (``FileNotFoundError``) — the peer's
          rename won; nothing left to move;
        * the destination name was taken between the ``exists`` probe
          and the rename (``os.replace`` onto a non-empty directory) —
          retry under the next numbered name.
        """
        dest = entry.with_name(entry.name + ".corrupt")
        n = 1
        while dest.exists():
            dest = entry.with_name(f"{entry.name}.corrupt.{n}")
            n += 1
        while True:
            try:
                os.replace(entry, dest)
                break
            except FileNotFoundError:
                log.warning(
                    "corrupt cache entry %s already quarantined by a "
                    "concurrent process (%r); will recompute",
                    entry.name,
                    reason,
                )
                return None
            except OSError:
                # destination collision: a peer (or an earlier
                # quarantine) claimed this name first — take the next
                if n > 1000:  # pragma: no cover - pathological volume
                    log.warning(
                        "cannot quarantine corrupt cache entry %s: no free "
                        ".corrupt name (%r)", entry.name, reason,
                    )
                    return None
                dest = entry.with_name(f"{entry.name}.corrupt.{n}")
                n += 1
        log.warning(
            "quarantined corrupt cache entry %s -> %s (%r); will recompute",
            entry.name,
            dest.name,
            reason,
        )
        return dest

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """Publish ``text`` at ``path`` via temp file + ``os.replace``.

        Concurrent characterization runs (parallel workers, parallel
        CI jobs sharing a cache volume) may store the same entry at
        once; the rename is atomic on POSIX, so a reader either sees
        the old complete file or the new complete file, never a
        truncated one.
        """
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def store(
        self,
        key: str,
        config_name: str,
        tables: dict[str, PerformanceTable],
        meta: Optional[dict] = None,
    ) -> Path:
        """Write ``tables`` under ``key``; returns the entry directory.

        Each file is written atomically, and ``meta.json`` last — an
        entry with a ``meta.json`` always has complete tables.
        """
        entry = self.entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        for level, table in tables.items():
            self._write_atomic(entry / f"{config_name}_{level}.csv", table.to_csv())
        record = {"config": config_name, "levels": sorted(tables)}
        if meta:
            record.update(meta)
        self._write_atomic(
            entry / "meta.json", json.dumps(record, indent=2, sort_keys=True)
        )
        return entry

    # ------------------------------------------------------------------
    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (or, with no key, the whole cache).

        Returns the number of entries removed.
        """
        if key is not None:
            entry = self.entry_dir(key)
            if entry.is_dir():
                shutil.rmtree(entry)
                return 1
            return 0
        if not self.root.is_dir():
            return 0
        n = 0
        for child in self.root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)
                n += 1
        return n

    def entries(self) -> list[str]:
        """Keys currently present in the cache (quarantined entries
        are parked under ``*.corrupt`` names and excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and ".corrupt" not in p.name
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TableCache root={str(self.root)!r} entries={len(self.entries())}>"
