"""Process-parallel fan-out for embarrassingly parallel methodology work.

Characterization builds a fresh :class:`~repro.simengine.Environment`
per (configuration, level) unit and evaluation builds one per
configuration, so the units share no state and each one is a pure
function of picklable inputs.  :func:`run_tasks` maps a worker over
such units with a :class:`~concurrent.futures.ProcessPoolExecutor`,
preserving input order so parallel results merge exactly like serial
ones.

Job count resolution (first match wins):

1. an explicit ``n_jobs`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. serial (``1``).

Serial is the deliberate default — on a single-core host (or under
pytest) worker processes only add fork/pickle overhead, and serial
execution needs no picklability at all.  Anything > 1 fans out;
``n_jobs=0`` means "one worker per CPU".

If the pool itself cannot start (restricted environments: no ``fork``,
no semaphores, no ``/dev/shm``) the map silently degrades to serial —
the result is identical, only slower.

Worker failures self-heal rather than killing the whole fan-out: a
shard that raises (or whose worker process dies, breaking the pool)
is retried once in a fresh pool after a short backoff, and if the
retry fails too the surviving shards are recomputed serially in the
parent — where a genuine error finally propagates unchanged.  Because
every unit is a pure function of its inputs, the healed result is
bit-identical to an undisturbed parallel (or serial) run.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Callable, Optional, Sequence, TypeVar

__all__ = ["resolve_jobs", "run_tasks"]

log = logging.getLogger(__name__)

#: seconds to wait before retrying failed shards in a fresh pool
RETRY_BACKOFF_S = 0.25

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Effective worker count for a fan-out (see module docstring)."""
    if n_jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
        else:
            return 1
    if n_jobs == 0:
        return os.cpu_count() or 1
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    return n_jobs


def run_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = None,
) -> list[R]:
    """``[fn(it) for it in items]``, possibly across worker processes.

    Results are returned in input order regardless of completion
    order, so callers can merge them deterministically.  ``fn`` and
    every item must be picklable when more than one job is requested.
    """
    items = list(items)
    jobs = min(resolve_jobs(n_jobs), len(items))
    if jobs <= 1:
        return [fn(it) for it in items]

    results: dict[int, R] = {}
    errors: dict[int, Exception] = {}

    def attempt(indices: list[int]) -> list[int]:
        """One pool pass over ``indices``; returns the shards that failed.

        A worker exception (including a :class:`BrokenProcessPool`
        when the worker process itself died) fails only its shard —
        completed shards keep their results.  The exception is kept in
        ``errors`` so the serial fallback can chain the original shard
        failure if it fails too.
        """
        from concurrent.futures import ProcessPoolExecutor

        failed: list[int] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(indices))) as executor:
            futures = {i: executor.submit(fn, items[i]) for i in indices}
            for i, fut in futures.items():
                try:
                    results[i] = fut.result()
                except Exception as exc:
                    log.warning("parallel shard %d failed: %r", i, exc)
                    errors[i] = exc
                    failed.append(i)
        return failed

    pending = list(range(len(items)))
    try:
        pending = attempt(pending)
    except (OSError, ImportError, NotImplementedError):
        # Pool start-up failure (sandboxed host): same answer, serially.
        return [fn(it) for it in items]
    if pending:
        # Retry crashed shards once in a fresh pool — a wedged or
        # OOM-killed worker poisons its whole pool, not the inputs.
        log.warning(
            "retrying %d failed shard(s) in a fresh pool after %.2fs",
            len(pending),
            RETRY_BACKOFF_S,
        )
        time.sleep(RETRY_BACKOFF_S)
        try:
            pending = attempt(pending)
        except (OSError, ImportError, NotImplementedError):
            pass  # fall through to the serial path below
    if pending:
        # Last resort: recompute the stragglers serially in the
        # parent.  If the shard fails here too, chain the original
        # parallel-worker exception as the cause — the pool round
        # saw the failure first, and its traceback (often a pickled
        # remote one) is the primary evidence.
        log.warning("serial fallback for %d shard(s)", len(pending))
        for i in pending:
            try:
                results[i] = fn(items[i])
            except Exception as exc:
                raise exc from errors.get(i)
    return [results[i] for i in range(len(items))]
