"""Process-parallel fan-out for embarrassingly parallel methodology work.

Characterization builds a fresh :class:`~repro.simengine.Environment`
per (configuration, level) unit and evaluation builds one per
configuration, so the units share no state and each one is a pure
function of picklable inputs.  :func:`run_tasks` maps a worker over
such units with a :class:`~concurrent.futures.ProcessPoolExecutor`,
preserving input order so parallel results merge exactly like serial
ones.

Job count resolution (first match wins):

1. an explicit ``n_jobs`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. serial (``1``).

Serial is the deliberate default — on a single-core host (or under
pytest) worker processes only add fork/pickle overhead, and serial
execution needs no picklability at all.  Anything > 1 fans out;
``n_jobs=0`` means "one worker per CPU".

If the pool itself cannot start (restricted environments: no ``fork``,
no semaphores, no ``/dev/shm``) the map silently degrades to serial —
the result is identical, only slower.  Exceptions raised *inside* a
worker propagate unchanged.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, TypeVar

__all__ = ["resolve_jobs", "run_tasks"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Effective worker count for a fan-out (see module docstring)."""
    if n_jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
        else:
            return 1
    if n_jobs == 0:
        return os.cpu_count() or 1
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    return n_jobs


def run_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: Optional[int] = None,
) -> list[R]:
    """``[fn(it) for it in items]``, possibly across worker processes.

    Results are returned in input order regardless of completion
    order, so callers can merge them deterministically.  ``fn`` and
    every item must be picklable when more than one job is requested.
    """
    items = list(items)
    jobs = min(resolve_jobs(n_jobs), len(items))
    if jobs <= 1:
        return [fn(it) for it in items]
    from concurrent.futures import ProcessPoolExecutor

    try:
        executor = ProcessPoolExecutor(max_workers=jobs)
    except (OSError, ImportError, NotImplementedError):
        # Pool start-up failure (sandboxed host): same answer, serially.
        return [fn(it) for it in items]
    with executor:
        return list(executor.map(fn, items))
