"""Phase 2 of the methodology: I/O configuration analysis (paper §III-B).

"We identify configurable factors and select I/O configurations" —
the factors the paper lists are the number and type of filesystems,
number and type of networks (dedicated vs shared), state and
placement of buffer/cache, number of I/O devices and their
organisation (RAID level, JBOD), and the number and placement of I/O
nodes.  This module extracts those factors from a
:class:`~repro.clusters.builder.SystemConfig`, diffs configurations,
and ranks candidate configurations for an application based on its
operation weights ("it will be necessary to analyze the operation
with more weight for the application", §V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..clusters.builder import SystemConfig
from .characterize import AppProfile
from .perftable import PerformanceTable

__all__ = ["ConfigurableFactors", "extract_factors", "diff_factors", "rank_configurations"]


@dataclass(frozen=True)
class ConfigurableFactors:
    """The paper's configurable-factor checklist for one configuration."""

    name: str
    local_filesystem: str
    global_filesystem: str
    n_networks: int
    dedicated_data_network: bool
    client_cache: bool
    server_cache: bool
    n_local_devices: int
    local_organization: str
    n_server_devices: int
    server_organization: str
    stripe_bytes: int
    n_io_nodes: int
    service_redundancy: bool
    data_redundancy: bool

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


#: RAID levels that survive a disk failure
_REDUNDANT = {"raid1", "raid5", "raid6", "raid10"}


def extract_factors(config: SystemConfig) -> ConfigurableFactors:
    """Read the factor checklist off a system configuration."""
    return ConfigurableFactors(
        name=config.name,
        local_filesystem="ext4-like",
        global_filesystem="nfs",
        n_networks=2 if config.separate_data_network else 1,
        dedicated_data_network=config.separate_data_network,
        client_cache=config.client_cache_enabled,
        server_cache=config.server_cache_enabled,
        n_local_devices=config.local_device.ndisks,
        local_organization=config.local_device.level.value,
        n_server_devices=config.server_device.ndisks,
        server_organization=config.server_device.level.value,
        stripe_bytes=config.server_device.stripe_bytes,
        n_io_nodes=1,
        service_redundancy=False,  # the paper notes neither cluster has it
        data_redundancy=config.server_device.level.value in _REDUNDANT,
    )


def diff_factors(a: ConfigurableFactors, b: ConfigurableFactors) -> dict[str, tuple]:
    """Factor-by-factor differences between two configurations."""
    out: dict[str, tuple] = {}
    for k in a.__dataclass_fields__:
        if k == "name":
            continue
        va, vb = getattr(a, k), getattr(b, k)
        if va != vb:
            out[k] = (va, vb)
    return out


@dataclass
class ConfigurationScore:
    """Suitability of one configuration for one application profile."""

    name: str
    expected_rate_Bps: float
    per_op_rate: dict[str, float] = field(default_factory=dict)
    redundancy: bool = False

    def __lt__(self, other: "ConfigurationScore") -> bool:  # pragma: no cover
        return self.expected_rate_Bps < other.expected_rate_Bps


def rank_configurations(
    profile: AppProfile,
    tables_by_config: dict[str, dict[str, PerformanceTable]],
    level: str = "nfs",
    require_redundancy: bool = False,
    factors_by_config: Optional[dict[str, ConfigurableFactors]] = None,
) -> list[ConfigurationScore]:
    """Rank configurations by the byte-weighted characterized rate they
    offer the application's access pattern.

    The weights come from the application's operation mix (the paper:
    "analyze the operation with more weight"); redundancy can be made
    a hard requirement ("the selection depends on the level of
    availability that the user is willing to pay for").
    """
    total_bytes = sum(m.total_bytes for m in profile.measures) or 1
    scores: list[ConfigurationScore] = []
    for name, tables in tables_by_config.items():
        table = tables.get(level)
        if table is None:
            continue
        redundant = False
        if factors_by_config and name in factors_by_config:
            redundant = factors_by_config[name].data_redundancy
        if require_redundancy and not redundant:
            continue
        weighted = 0.0
        per_op: dict[str, float] = {}
        for m in profile.measures:
            rate = table.lookup(m.op, m.block_bytes, m.access, m.mode)
            if rate is None:
                continue
            weighted += rate * (m.total_bytes / total_bytes)
            per_op[m.op] = max(per_op.get(m.op, 0.0), rate)
        scores.append(ConfigurationScore(name, weighted, per_op, redundant))
    scores.sort(key=lambda s: s.expected_rate_Bps, reverse=True)
    return scores
