"""Phase 1 of the methodology: characterization (paper §III-A).

*System characterization* measures bandwidth at each level of the I/O
path with the standard benchmarks — IOzone for the local and network
filesystems, IOR for the I/O library — and stores the results in
per-level :class:`~repro.core.perftable.PerformanceTable` objects
("characterized configurations with their performance tables in each
I/O path level", Fig. 3).  Each level is measured on a freshly built
system so earlier benchmarks cannot pollute caches.

*Application characterization* turns a PAS2P-style trace into an
:class:`AppProfile`: operation counts, dominant block sizes, access
modes, phases and achieved rates — the inputs of the evaluation
phase's used-percentage algorithm (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..simengine import Environment
from ..storage.base import AccessMode, AccessType, GiB, KiB, MiB
from ..clusters.builder import System, SystemConfig, build_system
from ..tracing import IOTracer, PhaseDetector, PhaseEvent
from ..workloads.iozone import run_iozone
from ..workloads.ior import run_ior
from .perftable import PerformanceTable, PerfRow

__all__ = [
    "LEVELS",
    "AppMeasure",
    "AppProfile",
    "characterize_system",
    "characterize_level",
    "characterize_app",
]

#: the paper's three I/O path levels (Fig. 2): I/O library, global
#: (network) filesystem, local filesystem/devices
LEVELS = ("iolib", "nfs", "localfs")

#: default block sweep: 32 KiB .. 16 MiB, the paper's IOzone range
DEFAULT_BLOCKS = tuple((32 * KiB) << k for k in range(10))


def characterize_level(
    config: SystemConfig,
    level: str,
    block_sizes: Sequence[int] = DEFAULT_BLOCKS,
    file_bytes: Optional[int] = None,
    ior_nprocs: int = 8,
    ior_file_bytes: Optional[int] = None,
) -> PerformanceTable:
    """Characterize one I/O path level on a freshly built system."""
    env = Environment()
    system = build_system(env, config)
    table = PerformanceTable(level)
    # The paper's characterization (Figs. 5/6/13/14) sweeps *sequential*
    # block tests; strided/random application patterns are answered by
    # the search algorithm's fallback to the sequential rows.
    if level == "localfs":
        res = run_iozone(
            system, "n0", "/local/char.tmp", file_bytes, block_sizes,
            include_strided=False, include_random=False,
        )
        _iozone_into(table, res, AccessType.LOCAL)
    elif level == "nfs":
        res = run_iozone(
            system, "n0", "/nfs/char.tmp", file_bytes, block_sizes,
            include_strided=False, include_random=False,
        )
        _iozone_into(table, res, AccessType.GLOBAL)
    elif level == "iolib":
        if ior_file_bytes is None:
            ior_file_bytes = 4 * GiB
        res = run_ior(
            system,
            ior_nprocs,
            path="/nfs/char_ior.dat",
            block_sizes=tuple(b for b in block_sizes if b >= 1 * MiB) or (1 * MiB,),
            file_bytes=ior_file_bytes,
        )
        for row in res.rows:
            table.add(
                PerfRow(row.op, row.block_bytes, AccessType.GLOBAL,
                        AccessMode.SEQUENTIAL, row.aggregate_rate_Bps)
            )
    else:
        raise ValueError(f"unknown level {level!r} (want one of {LEVELS})")
    return table


def _iozone_into(table: PerformanceTable, res, access: AccessType) -> None:
    """Fold IOzone rows into a performance table.

    The characterized rate for a (op, block, mode) key is the *best*
    sustained rate observed for it (write vs rewrite, read vs reread) —
    "the characterized values were measured under stressed I/O
    system", i.e. they are the capacity, not an average.
    """
    best: dict[tuple, float] = {}
    for row in res.rows:
        key = (row.op, row.block_bytes, row.mode)
        best[key] = max(best.get(key, 0.0), row.rate_Bps)
    for (op, block, mode), rate in best.items():
        table.add(PerfRow(op, block, access, mode, rate))


def characterize_system(
    config: SystemConfig,
    levels: Sequence[str] = LEVELS,
    block_sizes: Sequence[int] = DEFAULT_BLOCKS,
    file_bytes: Optional[int] = None,
    ior_nprocs: int = 8,
    ior_file_bytes: Optional[int] = None,
) -> dict[str, PerformanceTable]:
    """Characterize every requested level of an I/O configuration."""
    return {
        level: characterize_level(
            config, level, block_sizes, file_bytes, ior_nprocs, ior_file_bytes
        )
        for level in levels
    }


# ----------------------------------------------------------------------
# application characterization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppMeasure:
    """One (operation, block, mode) group of an application's I/O."""

    op: str
    block_bytes: int
    mode: AccessMode
    access: AccessType
    n_ops: int
    total_bytes: int
    io_time_s: float  # per-rank mean blocking time

    @property
    def rate_Bps(self) -> float:
        """Aggregate achieved transfer rate."""
        return self.total_bytes / self.io_time_s if self.io_time_s > 0 else 0.0


@dataclass
class AppProfile:
    """Application I/O requirements extracted from a trace (paper Fig. 7)."""

    nprocs: int
    measures: list[AppMeasure] = field(default_factory=list)
    phases: list[PhaseEvent] = field(default_factory=list)
    io_time_s: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0

    def measure(self, op: str) -> Optional[AppMeasure]:
        """The dominant (most bytes) measure for an operation type."""
        ms = [m for m in self.measures if m.op == op]
        return max(ms, key=lambda m: m.total_bytes) if ms else None

    @property
    def iops(self) -> float:
        ops = sum(m.n_ops for m in self.measures)
        return ops / self.io_time_s if self.io_time_s > 0 else 0.0

    def requirement_summary(self) -> dict:
        """The characterization numbers the paper tabulates (Tables II/V/VIII)."""
        by_op: dict[str, dict[int, int]] = {}
        for m in self.measures:
            by_op.setdefault(m.op, {})[m.block_bytes] = (
                by_op.get(m.op, {}).get(m.block_bytes, 0) + m.n_ops
            )
        return {
            "numio_write": sum(by_op.get("write", {}).values()),
            "numio_read": sum(by_op.get("read", {}).values()),
            "block_bytes_write": sorted(by_op.get("write", {})),
            "block_bytes_read": sorted(by_op.get("read", {})),
            "nprocs": self.nprocs,
        }


def characterize_app(
    tracer: IOTracer, access: AccessType = AccessType.GLOBAL
) -> AppProfile:
    """Build an :class:`AppProfile` from a traced run."""
    nranks = max(tracer.nranks, 1)
    groups: dict[tuple, list] = {}
    for e in tracer.events:
        key = (e.op, e.nbytes, e.mode)
        groups.setdefault(key, []).append(e)
    profile = AppProfile(nprocs=nranks)
    for (op, nbytes, mode), evs in sorted(groups.items(), key=lambda kv: str(kv[0])):
        total_bytes = sum(e.total_bytes for e in evs)
        n_ops = sum(e.count for e in evs)
        time_s = sum(e.duration for e in evs) / nranks
        profile.measures.append(
            AppMeasure(op, nbytes, mode, access, n_ops, total_bytes, time_s)
        )
        if op == "write":
            profile.bytes_written += total_bytes
        else:
            profile.bytes_read += total_bytes
    profile.io_time_s = tracer.io_time()
    profile.phases = PhaseDetector().detect(tracer.events)
    return profile
