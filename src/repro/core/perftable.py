"""Performance tables and the search algorithm (paper Table I, Fig. 11).

A :class:`PerformanceTable` stores the characterized capacity of one
level of the I/O path as rows of::

    OperationType  read(0) | write(1)
    Blocksize      bytes
    AccessType     Local(0) | Global(1)
    AccessesMode   Sequential | Strided | Random
    transferRate   bytes/second

Lookup follows the paper's Fig. 11 exactly: among rows matching
(operation, access mode, access type),

* a block size below the table minimum selects the minimum row;
* above the maximum selects the maximum row;
* an exact match selects that row;
* otherwise the *closest upper* block size is selected.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..storage.base import AccessMode, AccessType

__all__ = ["PerfRow", "PerformanceTable"]


@dataclass(frozen=True)
class PerfRow:
    """One characterized measurement (paper Table I)."""

    op: str  # "read" | "write"
    block_bytes: int
    access: AccessType
    mode: AccessMode
    rate_Bps: float

    def __post_init__(self):
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.rate_Bps < 0:
            raise ValueError("rate must be >= 0")

    # paper encodes operation/access as integers
    @property
    def op_code(self) -> int:
        return 0 if self.op == "read" else 1

    @property
    def access_code(self) -> int:
        return 0 if self.access is AccessType.LOCAL else 1


class PerformanceTable:
    """Characterized rates for one I/O path level."""

    def __init__(self, level: str, rows: Iterable[PerfRow] = ()):
        self.level = level
        self.rows: list[PerfRow] = list(rows)

    def add(self, row: PerfRow) -> None:
        self.rows.append(row)

    def add_measure(
        self,
        op: str,
        block_bytes: int,
        rate_Bps: float,
        access: AccessType = AccessType.LOCAL,
        mode: AccessMode = AccessMode.SEQUENTIAL,
    ) -> None:
        self.add(PerfRow(op, block_bytes, access, mode, rate_Bps))

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # the paper's search algorithm (Fig. 11)
    # ------------------------------------------------------------------
    def candidates(
        self, op: str, access: AccessType, mode: AccessMode
    ) -> list[PerfRow]:
        return [
            r
            for r in self.rows
            if r.op == op and r.access is access and r.mode is mode
        ]

    def lookup(
        self,
        op: str,
        block_bytes: int,
        access: AccessType = AccessType.LOCAL,
        mode: AccessMode = AccessMode.SEQUENTIAL,
        fallback_mode: bool = True,
    ) -> Optional[float]:
        """Characterized transfer rate for the request geometry.

        Returns ``None`` when no row matches the (op, access, mode)
        key at all.  With ``fallback_mode`` (the practical choice the
        paper's flowchart implies when a mode was not characterized),
        a missing mode falls back to SEQUENTIAL rows, and a missing
        access type falls back to whatever access this level was
        characterized with (an application doing *global* accesses is
        still compared against the *local* filesystem level's table —
        that is the whole point of the level-by-level walk).
        """
        cands = self.candidates(op, access, mode)
        if not cands and fallback_mode:
            other = (
                AccessType.LOCAL if access is AccessType.GLOBAL else AccessType.GLOBAL
            )
            for acc, md in (
                (access, AccessMode.SEQUENTIAL),
                (other, mode),
                (other, AccessMode.SEQUENTIAL),
            ):
                cands = self.candidates(op, acc, md)
                if cands:
                    break
        if not cands:
            return None
        blocks = sorted({r.block_bytes for r in cands})

        def rate_at(b: int) -> float:
            matching = [r.rate_Bps for r in cands if r.block_bytes == b]
            return sum(matching) / len(matching)

        if block_bytes <= blocks[0]:
            return rate_at(blocks[0])
        if block_bytes >= blocks[-1]:
            return rate_at(blocks[-1])
        for b in blocks:
            if b == block_bytes:
                return rate_at(b)
            if b > block_bytes:
                return rate_at(b)  # closest upper value
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    _FIELDS = ("op", "block_bytes", "access", "mode", "rate_Bps")

    def to_csv(self) -> str:
        buf = io.StringIO()
        w = csv.writer(buf)
        w.writerow(self._FIELDS)
        # repr() of a float is the shortest string that parses back to
        # the same value, so save -> load round trips are bit-exact and
        # cached tables evaluate identically to freshly built ones.
        for r in sorted(self.rows, key=lambda r: (r.op, r.access.value, r.mode.value, r.block_bytes)):
            w.writerow([r.op, r.block_bytes, r.access.value, r.mode.value, repr(r.rate_Bps)])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, level: str, text: str) -> "PerformanceTable":
        table = cls(level)
        reader = csv.DictReader(io.StringIO(text))
        for rec in reader:
            table.add(
                PerfRow(
                    rec["op"],
                    int(rec["block_bytes"]),
                    AccessType(rec["access"]),
                    AccessMode(rec["mode"]),
                    float(rec["rate_Bps"]),
                )
            )
        return table

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PerformanceTable {self.level!r} rows={len(self.rows)}>"
