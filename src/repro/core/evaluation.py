"""Phase 3 of the methodology: evaluation (paper §III-C, Figs. 9-11).

The application is run on each selected I/O configuration; its
achieved transfer rates are compared with the characterized values at
every level of the I/O path to produce the **used-percentage table**
(the generation algorithm of Fig. 10):

    for each application measure (op, block, access, mode, rate):
        for each level's performance table:
            char = table.lookup(op, block, access, mode)   # Fig. 11
            used% = 100 * rate / char

"When the application is not limited by I/O on a specific level the
used percentage probably surpasses 100%" — e.g. reads served from a
cache exceed the stressed-device characterization — "then we evaluate
the next level in the I/O path."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..storage.base import AccessMode, AccessType
from .characterize import AppMeasure, AppProfile
from .perftable import PerformanceTable

__all__ = [
    "UsedRow",
    "UsedPercentageTable",
    "generate_used_percentage",
    "bottleneck_level",
    "used_tables_equal",
    "EvaluationReport",
]


@dataclass(frozen=True)
class UsedRow:
    """One cell of the used-percentage table (paper Tables III/IV/VI/...)."""

    level: str
    op: str
    block_bytes: int
    mode: AccessMode
    access: AccessType
    app_rate_Bps: float
    characterized_Bps: Optional[float]

    @property
    def used_pct(self) -> Optional[float]:
        if self.characterized_Bps is None or self.characterized_Bps <= 0:
            return None
        return 100.0 * self.app_rate_Bps / self.characterized_Bps


@dataclass
class UsedPercentageTable:
    """All (measure × level) cells for one application run on one config."""

    config_name: str
    rows: list[UsedRow] = field(default_factory=list)

    def cell(self, level: str, op: str) -> Optional[float]:
        """Byte-weighted used%% for an operation type at a level."""
        cells = [
            r for r in self.rows if r.level == level and r.op == op and r.used_pct is not None
        ]
        if not cells:
            return None
        weights = [r.app_rate_Bps for r in cells]
        total = sum(weights)
        if total <= 0:
            return sum(r.used_pct for r in cells) / len(cells)
        return sum(r.used_pct * w for r, w in zip(cells, weights)) / total

    def levels(self) -> list[str]:
        seen: list[str] = []
        for r in self.rows:
            if r.level not in seen:
                seen.append(r.level)
        return seen


def generate_used_percentage(
    config_name: str,
    profile: AppProfile,
    tables: dict[str, PerformanceTable],
    min_bytes_fraction: float = 0.01,
) -> UsedPercentageTable:
    """The paper's Fig. 10 algorithm.

    Measures carrying less than ``min_bytes_fraction`` of the
    operation type's bytes are noise (open/close bookkeeping, tiny
    headers) and are skipped.
    """
    out = UsedPercentageTable(config_name)
    totals = {"read": 0, "write": 0}
    for m in profile.measures:
        totals[m.op] = totals.get(m.op, 0) + m.total_bytes
    for m in profile.measures:
        if totals.get(m.op) and m.total_bytes < totals[m.op] * min_bytes_fraction:
            continue
        for level, table in tables.items():
            char = table.lookup(m.op, m.block_bytes, m.access, m.mode)
            out.rows.append(
                UsedRow(level, m.op, m.block_bytes, m.mode, m.access, m.rate_Bps, char)
            )
    return out


def bottleneck_level(
    table: UsedPercentageTable, op: str, level_order: Sequence[str] = ("iolib", "nfs", "localfs")
) -> Optional[str]:
    """Walk the I/O path (paper §III-C2): the first level whose used
    percentage stays below 100% is where the application is actually
    limited; levels exceeding 100% are not the constraint (cache or
    aggregation effects) and the next level is examined."""
    for level in level_order:
        pct = table.cell(level, op)
        if pct is None:
            continue
        if pct < 100.0:
            return level
    return None


def used_tables_equal(
    a: UsedPercentageTable,
    b: UsedPercentageTable,
    rel_tol: float = 1e-9,
) -> bool:
    """Structural equality of two used-percentage tables.

    The phase-replay fastpath promises the *same* evaluation verdict as
    full replay: identical row structure (level, op, block, mode,
    access, characterized rate) and application rates equal within
    ``rel_tol``.  This is the acceptance check used by the fastpath
    tests and the ``repro perf`` evaluation benchmark.
    """
    from math import isclose

    if len(a.rows) != len(b.rows):
        return False
    for ra, rb in zip(a.rows, b.rows):
        if (ra.level, ra.op, ra.block_bytes, ra.mode, ra.access) != (
            rb.level, rb.op, rb.block_bytes, rb.mode, rb.access
        ):
            return False
        if (ra.characterized_Bps is None) != (rb.characterized_Bps is None):
            return False
        if ra.characterized_Bps is not None and not isclose(
            ra.characterized_Bps, rb.characterized_Bps, rel_tol=rel_tol
        ):
            return False
        if not isclose(ra.app_rate_Bps, rb.app_rate_Bps, rel_tol=rel_tol):
            return False
    return True


@dataclass
class EvaluationReport:
    """Everything the evaluation phase produces for one configuration."""

    config_name: str
    execution_time_s: float
    io_time_s: float
    bytes_written: int
    bytes_read: int
    used: UsedPercentageTable
    profile: AppProfile
    #: phase-replay accelerator statistics of the run (ReplayStats),
    #: when the application surfaced them; ``None`` otherwise
    replay: object = None
    #: wall-clock seconds the run took inside its worker
    wall_s: Optional[float] = None
    #: instrumented runs only (``Methodology.evaluate(instrument=True)``):
    #: per-level counters {"counters": ..., "histograms": ...}
    metrics: Optional[dict] = None
    #: instrumented runs only: busy fractions over the measured run,
    #: with sampled windows (core.utilization.UtilizationReport)
    utilization: object = None
    #: instrumented runs only: phase-replay observability dict
    #: (PhaseReplayAccelerator.observability())
    replay_phases: Optional[dict] = None
    #: the run's IOEvent stream, when the caller asked to keep it
    events: Optional[list] = None
    #: sanitized runs only (``--sanitize`` / ``REPRO_SANITIZE=1``):
    #: invariant-check summary (SimSanitizer.report())
    sanitizer: Optional[dict] = None
    #: faulted runs only (``Methodology.evaluate(faults=...)`` /
    #: ``--faults``): degraded-mode report
    #: (repro.faults.build_degraded_report())
    faults: Optional[dict] = None

    @property
    def io_fraction(self) -> float:
        return self.io_time_s / self.execution_time_s if self.execution_time_s > 0 else 0.0

    @property
    def throughput_Bps(self) -> float:
        moved = self.bytes_written + self.bytes_read
        return moved / self.io_time_s if self.io_time_s > 0 else 0.0

    def write_bottleneck(self) -> Optional[str]:
        return bottleneck_level(self.used, "write")

    def read_bottleneck(self) -> Optional[str]:
        return bottleneck_level(self.used, "read")
