"""Crash-safe fleet sweeps: config × workload × fault × mode.

The sweep subsystem scales the single-evaluation methodology to whole
parameter-space campaigns without giving up its determinism:

* :mod:`.plan` enumerates and fingerprint-dedupes the combination
  space into self-contained task payloads;
* :mod:`.store` is the append-only CRC-framed WAL that makes a run
  directory survive orchestrator SIGKILL with at most one torn tail;
* :mod:`.runner` is the fault-tolerant process pool (timeouts,
  seeded backoff, poison quarantine, heartbeat hang detection,
  graceful pool shrink);
* :mod:`.worker` executes one combo as a pure function of its task;
* :mod:`.report` verifies WAL integrity end-to-end and distills the
  population into the ``repro.sweep-report/1`` document;
* :mod:`.orchestrate` ties them into ``repro sweep`` /
  ``repro sweep --resume``.
"""

from .orchestrate import DEFAULT_PARAMS, SweepOutcome, run_sweep
from .plan import (
    MODES,
    TASK_SCHEMA,
    PlanError,
    SweepTask,
    build_plan,
    char_params,
    collect_faults,
    collect_workloads,
)
from .report import (
    SWEEP_REPORT_SCHEMA,
    build_sweep_report,
    render_sweep_report,
    verify_run,
)
from .runner import PoolExhaustedError, RunnerStats, SweepRunner, TaskFailure
from .store import (
    MANIFEST_SCHEMA,
    QUARANTINE_SCHEMA,
    RECORD_SCHEMA,
    ResultStore,
    StoreError,
    record_line,
)
from .worker import run_sweep_task

__all__ = [
    "DEFAULT_PARAMS",
    "SweepOutcome",
    "run_sweep",
    "MODES",
    "TASK_SCHEMA",
    "PlanError",
    "SweepTask",
    "build_plan",
    "char_params",
    "collect_faults",
    "collect_workloads",
    "SWEEP_REPORT_SCHEMA",
    "build_sweep_report",
    "render_sweep_report",
    "verify_run",
    "PoolExhaustedError",
    "RunnerStats",
    "SweepRunner",
    "TaskFailure",
    "MANIFEST_SCHEMA",
    "QUARANTINE_SCHEMA",
    "RECORD_SCHEMA",
    "ResultStore",
    "StoreError",
    "record_line",
    "run_sweep_task",
]
