"""Fault-tolerant process pool for sweep execution.

:class:`~repro.core.parallel.run_tasks` self-heals a *batch* (retry
crashed shards once, then serial fallback) but its failure domain is
the whole fan-out: it cannot time out a hung shard, survive repeated
worker loss, or keep a poisoned input from stalling the batch.  This
runner generalises it for open-ended sweeps, with robustness as the
design center:

* **dispatch** — the parent hands one task at a time to idle workers
  over per-worker pipes (work-stealing behaviour: a fast worker drains
  the queue while a slow one chews), so the parent always knows which
  worker owns which task — the precondition for targeted kills;
* **per-task wall-clock timeout** — a shard that exceeds its budget
  is SIGKILLed and the task rescheduled on a respawned worker;
* **seeded exponential backoff** — retry ``k`` of a task waits
  ``base * 2^(k-1) * (0.5 + u)`` seconds with ``u`` drawn from an RNG
  seeded by ``(seed, fingerprint, attempt)``: a deterministic retry
  *schedule* without synchronised stampedes.  Backoff only shapes
  wall time; results are pure functions of the task;
* **poison quarantine** — after ``max_attempts`` failures of any kind
  the task is handed to ``on_quarantine`` with its failure history and
  the sweep moves on;
* **graceful pool degradation** — worker loss (crash, OOM kill, stale
  heartbeat) consumes a respawn from a bounded budget; when the
  budget runs dry the pool *shrinks* instead of aborting, and only a
  pool that shrinks to zero with work remaining raises
  :class:`PoolExhaustedError` (the WAL makes that resumable);
* **heartbeat hang detection** — each worker runs a daemon thread
  stamping a shared timestamp slot; a worker that stops beating (D
  state, swap thrash, silent death) is treated as lost well before a
  long task timeout would fire.

Workers are daemonic and exit when the parent's pipe closes, so a
SIGKILLed orchestrator leaves no immortal orphans.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Optional, Sequence

__all__ = ["TaskFailure", "RunnerStats", "PoolExhaustedError", "SweepRunner"]

log = logging.getLogger(__name__)

#: seconds between heartbeat stamps inside a worker
HEARTBEAT_INTERVAL_S = 0.2


class PoolExhaustedError(RuntimeError):
    """Every worker died and the respawn budget is spent.

    The WAL already holds every completed task, so the remedy is
    ``repro sweep --resume RUNDIR`` once the host recovers.
    """


@dataclass
class TaskFailure:
    """One failed attempt at a task."""

    kind: str  # "error" | "timeout" | "crash" | "lost-heartbeat"
    detail: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class RunnerStats:
    completed: int = 0
    quarantined: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    lost_heartbeats: int = 0
    respawns: int = 0
    peak_workers: int = 0
    final_workers: int = 0
    failures: dict = field(default_factory=dict)  # fp -> [failure dicts]

    def as_dict(self) -> dict:
        return {
            "completed": self.completed,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "lost_heartbeats": self.lost_heartbeats,
            "respawns": self.respawns,
            "peak_workers": self.peak_workers,
            "final_workers": self.final_workers,
        }


def backoff_s(seed: int, fp: str, attempt: int, base_s: float) -> float:
    """Deterministic jittered exponential backoff before retry ``attempt``."""
    import hashlib
    import random

    digest = hashlib.sha256(f"{seed}:{fp}:{attempt}".encode()).digest()
    u = random.Random(digest).random()
    return base_s * (2.0 ** (attempt - 1)) * (0.5 + u)


def _worker_main(conn, hb_array, slot: int, worker_fn) -> None:
    """Worker loop: receive a task payload, reply with its outcome.

    A daemon heartbeat thread stamps ``hb_array[slot]`` even while the
    main thread is buried in a long simulation, so the parent can tell
    a *busy* worker from a *gone* one.  The same thread watches for
    orchestrator death: fork()ed siblings inherit each other's parent-
    side pipe ends, so a SIGKILLed orchestrator never delivers EOF to
    ``conn.recv()`` — the reparenting check is what actually guarantees
    "no immortal orphans".
    """
    import threading

    ppid = os.getppid()

    def beat() -> None:
        while True:
            if os.getppid() != ppid:
                os._exit(0)  # orchestrator is gone; don't linger
            hb_array[slot] = time.time()
            time.sleep(HEARTBEAT_INTERVAL_S)

    threading.Thread(target=beat, daemon=True, name="sweep-heartbeat").start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone (or told us to stop): exit quietly
        if msg is None:
            return
        fp, payload = msg
        try:
            result = worker_fn(payload)
            reply = (fp, "ok", result)
        except BaseException:
            reply = (fp, "error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Worker:
    proc: Any
    conn: Any
    slot: int
    current: Optional[tuple[str, dict]] = None  # (fp, payload)
    started_at: float = 0.0


class SweepRunner:
    """Run ``(fp, payload)`` tasks through ``worker_fn`` robustly."""

    def __init__(
        self,
        worker_fn: Callable[[dict], dict],
        n_jobs: int = 1,
        timeout_s: float = 300.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.5,
        seed: int = 0,
        heartbeat_timeout_s: float = 10.0,
        max_respawns: Optional[int] = None,
        on_result: Optional[Callable[[str, dict, dict], None]] = None,
        on_quarantine: Optional[Callable[[str, dict, list], None]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.worker_fn = worker_fn
        self.n_jobs = n_jobs
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.seed = seed
        self.heartbeat_timeout_s = max(
            heartbeat_timeout_s, 10 * HEARTBEAT_INTERVAL_S
        )
        self.max_respawns = (
            max_respawns if max_respawns is not None else max(8, 2 * n_jobs)
        )
        self.on_result = on_result
        self.on_quarantine = on_quarantine
        self.progress = progress or (lambda msg: None)

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[tuple[str, dict]]) -> RunnerStats:
        stats = RunnerStats()
        if not tasks:
            return stats
        pending: list[tuple[str, dict]] = list(tasks)
        pending.reverse()  # pop() serves the plan in order
        delayed: list[tuple[float, int, str, dict]] = []  # (ready_at, tie, ...)
        attempts: dict[str, int] = {}
        failures: dict[str, list[TaskFailure]] = {}
        outstanding = len(pending)
        tie = 0

        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        # lock=False: one writer per slot, and a locked Array would let
        # a SIGKILLed orchestrator die holding the semaphore — wedging
        # every worker's heartbeat (and orphan-detection) thread forever
        hb_array = ctx.Array("d", self.n_jobs, lock=False)
        workers: dict[int, _Worker] = {}
        respawns_left = self.max_respawns

        def spawn(slot: int) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, hb_array, slot, self.worker_fn),
                daemon=True,
                name=f"sweep-worker-{slot}",
            )
            hb_array[slot] = time.time()
            proc.start()
            child_conn.close()
            workers[slot] = _Worker(proc=proc, conn=parent_conn, slot=slot)
            stats.peak_workers = max(stats.peak_workers, len(workers))

        def reap(w: _Worker, kill: bool) -> None:
            if kill and w.proc.is_alive():
                w.proc.kill()
            w.proc.join(timeout=5.0)
            try:
                w.conn.close()
            except OSError:
                pass
            workers.pop(w.slot, None)

        def respawn_or_shrink(slot: int) -> None:
            nonlocal respawns_left
            if respawns_left > 0:
                respawns_left -= 1
                stats.respawns += 1
                spawn(slot)
            elif workers:
                self.progress(
                    f"respawn budget exhausted; pool shrinks to "
                    f"{len(workers)} worker(s)"
                )
            # an empty pool with no budget raises in the main loop

        def record_failure(fp: str, payload: dict, failure: TaskFailure) -> None:
            nonlocal outstanding, tie
            attempts[fp] = attempts.get(fp, 0) + 1
            failures.setdefault(fp, []).append(failure)
            counter = {
                "timeout": "timeouts",
                "crash": "crashes",
                "lost-heartbeat": "lost_heartbeats",
            }.get(failure.kind)
            if counter:
                setattr(stats, counter, getattr(stats, counter) + 1)
            if attempts[fp] >= self.max_attempts:
                stats.quarantined += 1
                stats.failures[fp] = [f.as_dict() for f in failures[fp]]
                outstanding -= 1
                self.progress(
                    f"quarantined {fp} after {attempts[fp]} attempt(s) "
                    f"({failure.kind})"
                )
                if self.on_quarantine is not None:
                    self.on_quarantine(fp, payload, failures[fp])
            else:
                stats.retries += 1
                delay = backoff_s(self.seed, fp, attempts[fp], self.backoff_base_s)
                tie += 1
                heapq.heappush(delayed, (time.time() + delay, tie, fp, payload))
                self.progress(
                    f"retrying {fp} in {delay:.2f}s "
                    f"(attempt {attempts[fp] + 1}/{self.max_attempts}, "
                    f"after {failure.kind})"
                )

        def fail_worker(w: _Worker, kind: str, detail: str, kill: bool) -> None:
            """Charge the worker's current task (if any) and replace it."""
            if w.current is not None:
                fp, payload = w.current
                w.current = None
                record_failure(fp, payload, TaskFailure(kind, detail))
            reap(w, kill=kill)
            respawn_or_shrink(w.slot)

        def handle_reply(w: _Worker, reply) -> None:
            nonlocal outstanding
            if w.current is None:
                return  # stray reply from an already-failed assignment
            fp, payload = w.current
            r_fp, status, body = reply
            if r_fp != fp:  # protocol desync: treat as a worker fault
                fail_worker(
                    w, "crash", f"reply for {r_fp}, expected {fp}", kill=True
                )
                return
            w.current = None
            if status == "ok":
                stats.completed += 1
                outstanding -= 1
                if self.on_result is not None:
                    self.on_result(fp, payload, body)
            else:
                record_failure(fp, payload, TaskFailure("error", str(body)))

        try:
            free = list(range(self.n_jobs - 1, -1, -1))
            for _ in range(min(self.n_jobs, outstanding)):
                spawn(free.pop())

            while outstanding > 0:
                now = time.time()
                while delayed and delayed[0][0] <= now:
                    _, _, fp, payload = heapq.heappop(delayed)
                    pending.append((fp, payload))

                for w in list(workers.values()):
                    if pending and w.current is None:
                        fp, payload = pending.pop()
                        w.current = (fp, payload)
                        w.started_at = now
                        try:
                            w.conn.send((fp, payload))
                        except (BrokenPipeError, OSError):
                            w.current = None
                            pending.append((fp, payload))
                            reap(w, kill=True)
                            respawn_or_shrink(w.slot)

                if not workers:
                    raise PoolExhaustedError(
                        f"all workers lost with {outstanding} task(s) "
                        "outstanding; resume the sweep to continue"
                    )

                # sleep until the next thing that can happen: a reply, a
                # task deadline, a ripe retry, or a heartbeat check
                busy = [w for w in workers.values() if w.current is not None]
                deadlines = [w.started_at + self.timeout_s for w in busy]
                if delayed:
                    deadlines.append(delayed[0][0])
                wait_s = min(
                    max(0.01, min(deadlines) - now) if deadlines else 0.25,
                    self.heartbeat_timeout_s / 2,
                )
                if busy:
                    for conn in conn_wait([w.conn for w in busy], timeout=wait_s):
                        w = next(x for x in workers.values() if x.conn is conn)
                        try:
                            reply = conn.recv()
                        except (EOFError, OSError):
                            continue  # death is handled by is_alive below
                        handle_reply(w, reply)
                else:
                    time.sleep(wait_s)

                now = time.time()
                for w in list(workers.values()):
                    if not w.proc.is_alive():
                        fail_worker(
                            w, "crash",
                            f"worker exited with code {w.proc.exitcode} mid-task",
                            kill=False,
                        )
                    elif (
                        w.current is not None
                        and now - w.started_at > self.timeout_s
                    ):
                        fail_worker(
                            w, "timeout",
                            f"exceeded {self.timeout_s:.1f}s wall-clock budget",
                            kill=True,
                        )
                    elif (
                        w.current is not None
                        and now - hb_array[w.slot] > self.heartbeat_timeout_s
                    ):
                        fail_worker(
                            w, "lost-heartbeat",
                            f"no heartbeat for {now - hb_array[w.slot]:.1f}s",
                            kill=True,
                        )
            stats.final_workers = len(workers)
        finally:
            for w in list(workers.values()):
                try:
                    w.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for w in list(workers.values()):
                reap(w, kill=w.current is not None)
        return stats
