"""Sweep plan enumeration: config × workload × fault × mode combos.

A plan is the cross product of four axes, flattened into self-
contained task payloads and deduplicated by content fingerprint:

* **configs** — named cluster configurations (``jbod``/``raid5``/...);
* **workloads** — benchmark adapters (``btio:S:4:full``), declarative
  spec files, and ``repro workload fuzz`` seeds.  Spec documents are
  *inlined* into the payload, so a run directory is resumable after
  the original spec files move or disappear;
* **faults** — ``none`` and/or fault-schedule JSON files (inlined the
  same way);
* **modes** — ``exact`` / ``analytic`` kernel modes.

The task fingerprint covers the *content* of each axis — the
:class:`~repro.clusters.builder.SystemConfig` object, the compiled
workload fingerprint, the normalised fault schedule, the mode and the
characterization sweep parameters — so two descriptor spellings of
the same combination (a fuzz seed and its checked-in spec file, a
schedule listed twice) collapse into one task, exactly like the
table-cache keys they share.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from ..clusters import (
    AOHYPER_CONFIGS,
    AOHYPER_EXTRA_CONFIGS,
    aohyper_config,
    cluster_a_config,
)
from ..fingerprint import fingerprint, workload_fingerprint

__all__ = [
    "TASK_SCHEMA",
    "MODES",
    "PlanError",
    "SweepTask",
    "resolve_config",
    "parse_workload_arg",
    "descriptor_app",
    "build_plan",
]

TASK_SCHEMA = "repro.sweep-task/1"

#: kernel-mode axis values (``analytic`` flips the slice-ring fast
#: forward; tables and evaluation results are bit-identical either
#: way, which makes the mode axis a free cross-check)
MODES = ("exact", "analytic")


class PlanError(ValueError):
    """A sweep axis value does not enumerate."""


@dataclass(frozen=True)
class SweepTask:
    """One planned combination: content fingerprint + payload.

    The payload is pure JSON (it lives in the manifest and in every
    result record) and contains everything a worker needs — no paths,
    no host state — so records are byte-comparable across run
    directories and machines.
    """

    fp: str
    payload: dict


def resolve_config(name: str):
    """A :class:`SystemConfig` for a sweep-axis configuration name."""
    if name in AOHYPER_CONFIGS or name in AOHYPER_EXTRA_CONFIGS:
        return aohyper_config(name)
    if name in ("cluster-a", "cluster_a"):
        return cluster_a_config()
    raise PlanError(f"unknown configuration {name!r}; see `repro list`")


# ----------------------------------------------------------------------
# workload descriptors
# ----------------------------------------------------------------------
def parse_workload_arg(text: str) -> dict:
    """Parse a ``--workloads`` item into a descriptor dict.

    ``btio[:CLASS[:NPROCS[:SUBTYPE]]]`` or
    ``madbench[:KPIX[:NPROCS[:FILETYPE]]]``.
    """
    parts = text.split(":")
    kind = parts[0]
    try:
        if kind == "btio":
            clazz = parts[1] if len(parts) > 1 else "A"
            nprocs = int(parts[2]) if len(parts) > 2 else 16
            subtype = parts[3] if len(parts) > 3 else "full"
            if subtype not in ("full", "simple"):
                raise PlanError(f"bad BT-IO subtype {subtype!r}")
            return {"kind": "btio", "clazz": clazz, "nprocs": nprocs,
                    "subtype": subtype}
        if kind == "madbench":
            kpix = int(parts[1]) if len(parts) > 1 else 6
            nprocs = int(parts[2]) if len(parts) > 2 else 16
            filetype = parts[3] if len(parts) > 3 else "shared"
            if filetype not in ("unique", "shared"):
                raise PlanError(f"bad MADbench filetype {filetype!r}")
            return {"kind": "madbench", "kpix": kpix, "nprocs": nprocs,
                    "filetype": filetype}
    except (ValueError, IndexError) as exc:
        raise PlanError(f"bad workload descriptor {text!r}: {exc}")
    raise PlanError(
        f"unknown workload kind {kind!r} (want btio:... or madbench:...; "
        "spec files go through --workload-spec, fuzz seeds through "
        "--fuzz-seeds)"
    )


def spec_descriptor(doc: dict, label: str) -> dict:
    """Descriptor embedding a full (already validated) spec document."""
    return {"kind": "spec", "label": label, "doc": doc}


def descriptor_app(desc: dict):
    """Build the runnable application an executor descriptor names."""
    kind = desc.get("kind")
    if kind == "btio":
        from ..workloads.apps import BTIOApplication
        from ..workloads.btio import BTIOConfig

        return BTIOApplication(BTIOConfig(
            clazz=desc["clazz"], nprocs=desc["nprocs"], subtype=desc["subtype"]
        ))
    if kind == "madbench":
        from ..workloads.apps import MadBenchApplication
        from ..workloads.madbench import MadBenchConfig

        return MadBenchApplication(MadBenchConfig(
            kpix=desc["kpix"], nprocs=desc["nprocs"], filetype=desc["filetype"]
        ))
    if kind == "spec":
        from ..workloads.apps import SyntheticApplication
        from ..workloads.grammar import compile_spec, spec_name

        spec = compile_spec(desc["doc"])
        return SyntheticApplication(
            spec=spec, label=spec_name(desc["doc"], desc.get("label", "workload"))
        )
    raise PlanError(f"unknown workload descriptor kind {kind!r}")


def descriptor_label(desc: dict) -> str:
    kind = desc.get("kind")
    if kind == "btio":
        return f"btio-{desc['clazz']}-{desc['nprocs']}-{desc['subtype']}"
    if kind == "madbench":
        return f"madbench-{desc['kpix']}-{desc['nprocs']}-{desc['filetype']}"
    return str(desc.get("label", "workload"))


# ----------------------------------------------------------------------
# axis collection + enumeration
# ----------------------------------------------------------------------
def collect_workloads(
    named: Sequence[str] = (),
    spec_files: Sequence[str] = (),
    fuzz_seeds: Sequence[int] = (),
    fuzz_max_phases: int = 6,
) -> list[dict]:
    """Normalise the three workload sources into descriptors."""
    out: list[dict] = []
    for text in named:
        out.append(parse_workload_arg(text))
    for path in spec_files:
        from ..workloads.grammar import (
            WorkloadSpecError,
            load_document,
            spec_name,
            validate_spec,
        )

        try:
            doc = validate_spec(load_document(path))
        except (OSError, WorkloadSpecError) as exc:
            raise PlanError(f"cannot load workload spec {path!r}: {exc}")
        out.append(spec_descriptor(doc, spec_name(doc, Path(str(path)).stem)))
    for seed in fuzz_seeds:
        from ..workloads.fuzz import fuzz_spec

        doc = fuzz_spec(int(seed), max_phases=fuzz_max_phases)
        out.append(spec_descriptor(doc, doc["name"]))
    if not out:
        raise PlanError(
            "no workloads: give --workloads, --workload-spec and/or --fuzz-seeds"
        )
    return out


def collect_faults(faults: Sequence[str] = ()) -> list[tuple[str, Optional[dict]]]:
    """Normalise the fault axis into ``(label, schedule-dict | None)``."""
    out: list[tuple[str, Optional[dict]]] = []
    for item in faults or ("none",):
        if item == "none":
            out.append(("none", None))
            continue
        from ..faults import FaultSchedule

        try:
            schedule = FaultSchedule.load(item)
        except (OSError, ValueError) as exc:
            raise PlanError(f"cannot load fault schedule {item!r}: {exc}")
        out.append((Path(str(item)).stem, schedule.as_dict()))
    return out


def build_plan(
    configs: Sequence[str],
    workloads: Sequence[dict],
    faults: Sequence[tuple[str, Optional[dict]]],
    modes: Sequence[str],
    char: dict,
    phase_fastpath: bool = True,
    sanitize: bool = False,
) -> list[SweepTask]:
    """Enumerate and fingerprint-dedupe the full combination space.

    ``char`` carries the characterization sweep parameters
    (``block_sizes``, ``char_file_bytes``, ``ior_nprocs``,
    ``ior_file_bytes``) — part of every task's identity, since they
    select the performance tables the evaluation is scored against.

    The config axis varies *fastest* so a fanned-out pool's first wave
    hits distinct configurations — each worker warms a different
    table-cache entry instead of all racing on the same one.
    """
    if not configs:
        raise PlanError("no configurations")
    for mode in modes:
        if mode not in MODES:
            raise PlanError(f"unknown mode {mode!r} (want one of {MODES})")
    config_objs = {name: resolve_config(name) for name in configs}
    wl_fps = [workload_fingerprint(descriptor_app(d)) for d in workloads]

    tasks: dict[str, SweepTask] = {}
    dropped = 0
    for mode in modes:
        for (fault_label, fault_dict) in faults:
            for desc, wl_fp in zip(workloads, wl_fps):
                for name in configs:
                    fp = fingerprint(
                        TASK_SCHEMA,
                        config_objs[name],
                        wl_fp,
                        fault_dict,
                        mode,
                        phase_fastpath,
                        sanitize,
                        char,
                    )
                    if fp in tasks:
                        dropped += 1
                        continue
                    payload = {
                        "schema": TASK_SCHEMA,
                        "config": name,
                        "workload": desc,
                        "workload_label": descriptor_label(desc),
                        "faults": fault_dict,
                        "fault_label": fault_label,
                        "mode": mode,
                        "phase_fastpath": phase_fastpath,
                        "sanitize": sanitize,
                        "char": char,
                    }
                    tasks[fp] = SweepTask(fp=fp, payload=payload)
    if dropped:
        import logging

        logging.getLogger(__name__).info(
            "plan deduplicated %d task(s) by fingerprint", dropped
        )
    return list(tasks.values())


def char_params(
    block_sizes: Sequence[int],
    char_file_bytes: Optional[int] = None,
    ior_nprocs: int = 8,
    ior_file_bytes: Optional[int] = None,
) -> dict:
    """The characterization-sweep identity carried by every task."""
    return {
        "block_sizes": [int(b) for b in block_sizes],
        "char_file_bytes": char_file_bytes,
        "ior_nprocs": int(ior_nprocs),
        "ior_file_bytes": ior_file_bytes,
    }
