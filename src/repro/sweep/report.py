"""End-of-run integrity verification and the sweep-report document.

``verify_run`` replays the WAL the hard way — re-reading the raw
files, re-checking every CRC, and reconciling what it finds against
the manifest's plan — so the summary a sweep hands back is backed by
bytes on disk, not by the orchestrator's in-memory bookkeeping (which
a kill-resume cycle has possibly rebuilt several times over).

``build_sweep_report`` then turns the verified records into the
``repro.sweep-report/1`` document: completion counts, per-level
used-percentage and run-metric **distributions** (min / median / p95
— the first slice of the statistics layer ROADMAP item 3 calls for,
following the IO500-analysis playbook of characterizing a population
of runs instead of point estimates), and simple factor correlations
(Pearson, over numeric task factors vs run metrics).
"""

from __future__ import annotations

import json
from math import sqrt
from pathlib import Path
from typing import Optional

from .store import ResultStore, parse_record

__all__ = [
    "SWEEP_REPORT_SCHEMA",
    "verify_run",
    "build_sweep_report",
    "render_sweep_report",
    "write_sweep_report",
]

SWEEP_REPORT_SCHEMA = "repro.sweep-report/1"


# ----------------------------------------------------------------------
# integrity verification
# ----------------------------------------------------------------------
def _scan_file(path: Path) -> dict:
    """Raw re-scan of one WAL file: CRC every line from disk."""
    out = {"records": 0, "bad_records": 0, "torn_tail": False}
    if not path.exists():
        return out
    raw = path.read_bytes()
    pos = 0
    while pos < len(raw):
        nl = raw.find(b"\n", pos)
        if nl == -1:
            out["torn_tail"] = True
            break
        line = raw[pos : nl + 1]
        if line.strip():
            if parse_record(line) is None:
                out["bad_records"] += 1
            else:
                out["records"] += 1
        pos = nl + 1
    return out


def verify_run(store: ResultStore, manifest: dict) -> dict:
    """Replay the WAL and reconcile it against the manifest's plan."""
    plan_fps = [t["fp"] for t in manifest.get("tasks", [])]
    results = set(store.results)
    quarantined = set(store.quarantine)
    planned = set(plan_fps)
    missing = [fp for fp in plan_fps if fp not in results and fp not in quarantined]
    unplanned = sorted((results | quarantined) - planned)
    scan_results = _scan_file(store.results_path)
    scan_quarantine = _scan_file(store.quarantine_path)
    ok = (
        not missing
        and not store.duplicate_mismatches
        and scan_results["bad_records"] == 0
        and not scan_results["torn_tail"]
        and not scan_quarantine["torn_tail"]
    )
    return {
        "ok": ok,
        "planned": len(plan_fps),
        "completed": len(results & planned),
        "quarantined": len((quarantined - results) & planned),
        "missing": missing,
        "unplanned": unplanned,
        "duplicate_mismatches": sorted(set(store.duplicate_mismatches)),
        "wal": {
            "results": scan_results,
            "quarantine": scan_quarantine,
            "recovered": dict(store.recovery),
        },
    }


# ----------------------------------------------------------------------
# distributions + correlations
# ----------------------------------------------------------------------
def _dist(values: list[float]) -> Optional[dict]:
    if not values:
        return None
    xs = sorted(values)
    n = len(xs)

    def q(p: float) -> float:
        if n == 1:
            return xs[0]
        i = p * (n - 1)
        lo = int(i)
        hi = min(lo + 1, n - 1)
        return xs[lo] + (i - lo) * (xs[hi] - xs[lo])

    return {
        "n": n,
        "min": xs[0],
        "median": q(0.5),
        "p95": q(0.95),
        "max": xs[-1],
        "mean": sum(xs) / n,
    }


def _pearson(xs: list[float], ys: list[float]) -> Optional[float]:
    n = len(xs)
    if n < 3:
        return None
    mx = sum(xs) / n
    my = sum(ys) / n
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx <= 0 or syy <= 0:
        return None  # a constant factor correlates with nothing
    return sxy / sqrt(sxx * syy)


def _task_factors(task: dict, result: dict) -> dict[str, float]:
    """Numeric factor encoding of one record, for correlations."""
    wl = task.get("workload", {})
    nprocs = wl.get("nprocs", wl.get("doc", {}).get("nprocs", 0))
    return {
        "nprocs": float(nprocs or 0),
        "bytes_total": float(
            result.get("bytes_read", 0) + result.get("bytes_written", 0)
        ),
        "faulted": 0.0 if task.get("faults") is None else 1.0,
        "analytic": 1.0 if task.get("mode") == "analytic" else 0.0,
    }


def build_sweep_report(store: ResultStore, manifest: dict) -> dict:
    """The ``repro.sweep-report/1`` document for a (possibly partial) run."""
    verify = verify_run(store, manifest)
    records = [
        store.results[t["fp"]]
        for t in manifest.get("tasks", [])
        if t["fp"] in store.results
    ]

    metrics: dict[str, list[float]] = {
        "execution_time_s": [],
        "io_time_s": [],
        "io_fraction": [],
        "throughput_Bps": [],
    }
    used: dict[str, dict[str, list[float]]] = {}
    factor_rows: list[dict[str, float]] = []
    for rec in records:
        result = rec.get("result", {})
        for key, bucket in metrics.items():
            value = result.get(key)
            if isinstance(value, (int, float)):
                bucket.append(float(value))
        for level, ops in result.get("used", {}).items():
            for op, cell in ops.items():
                used.setdefault(level, {}).setdefault(op, []).append(float(cell))
        factor_rows.append(_task_factors(rec.get("task", {}), result))

    correlations: dict[str, dict[str, Optional[float]]] = {}
    if factor_rows:
        factor_names = sorted(factor_rows[0])
        for metric in ("io_time_s", "throughput_Bps"):
            ys = metrics[metric]
            if len(ys) != len(factor_rows):
                continue
            correlations[metric] = {
                f: _pearson([row[f] for row in factor_rows], ys)
                for f in factor_names
            }

    quarantined = [
        {
            "fp": fp,
            "config": q.get("task", {}).get("config"),
            "workload": q.get("task", {}).get("workload_label"),
            "attempts": q.get("attempts"),
            "failures": [f.get("kind") for f in q.get("failures", [])],
            "last_error": (q.get("failures") or [{}])[-1].get("detail", "")[-2000:],
        }
        for fp, q in sorted(store.quarantine.items())
    ]

    return {
        "schema": SWEEP_REPORT_SCHEMA,
        "plan": {
            "planned": verify["planned"],
            "completed": verify["completed"],
            "quarantined": verify["quarantined"],
            "missing": len(verify["missing"]),
        },
        "integrity": verify,
        "distributions": {
            "run": {k: _dist(v) for k, v in metrics.items()},
            "used_pct": {
                level: {op: _dist(vals) for op, vals in ops.items()}
                for level, ops in used.items()
            },
        },
        "correlations": correlations,
        "quarantine": quarantined,
    }


def write_sweep_report(rundir: "Path | str", report: dict) -> Path:
    """Atomically publish ``sweep_report.json`` in the run directory."""
    import os

    rundir = Path(rundir)
    target = rundir / "sweep_report.json"
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, target)
    return target


def render_sweep_report(report: dict) -> str:
    """Human-readable summary printed at the end of ``repro sweep``."""
    plan = report["plan"]
    integrity = report["integrity"]
    lines = [
        f"sweep: {plan['completed']}/{plan['planned']} completed, "
        f"{plan['quarantined']} quarantined, {plan['missing']} missing "
        f"({'OK' if integrity['ok'] else 'INCOMPLETE'})",
    ]
    wal = integrity["wal"]
    if wal["recovered"]["truncated_bytes"] or wal["recovered"]["corrupt_records"]:
        lines.append(
            f"  wal recovery: truncated {wal['recovered']['truncated_bytes']} "
            f"torn byte(s), dropped {wal['recovered']['corrupt_records']} "
            "corrupt record(s)"
        )
    if integrity["duplicate_mismatches"]:
        lines.append(
            "  DETERMINISM: duplicate records differ for "
            + ", ".join(integrity["duplicate_mismatches"])
        )
    run_dist = report["distributions"]["run"]
    header = f"  {'metric':<18}{'n':>5}{'min':>12}{'median':>12}{'p95':>12}"
    rows = []
    for key, d in run_dist.items():
        if d is None:
            continue
        rows.append(
            f"  {key:<18}{d['n']:>5}{d['min']:>12.4g}{d['median']:>12.4g}"
            f"{d['p95']:>12.4g}"
        )
    if rows:
        lines.append(header)
        lines.extend(rows)
    for level, ops in sorted(report["distributions"]["used_pct"].items()):
        for op, d in sorted(ops.items()):
            if d is None:
                continue
            lines.append(
                f"  used%[{level}/{op}]{'':<{max(0, 4 - len(op))}}"
                f"{d['n']:>5}{d['min']:>12.4g}{d['median']:>12.4g}{d['p95']:>12.4g}"
            )
    corr = report.get("correlations", {})
    for metric, factors in sorted(corr.items()):
        body = "  ".join(
            f"{name}={value:+.3f}" for name, value in sorted(factors.items())
            if value is not None
        )
        if body:
            lines.append(f"  corr[{metric}]: {body}")
    for q in report["quarantine"]:
        lines.append(
            f"  QUARANTINED {q['fp']}: {q['config']} x {q['workload']} "
            f"after {q['attempts']} attempt(s) ({', '.join(q['failures'])})"
        )
    return "\n".join(lines)
