"""The sweep orchestrator: plan → manifest → pool → WAL → report.

``run_sweep`` ties the package together.  A **fresh** run writes the
manifest (the full plan, atomically) before the first task executes,
then streams completions into the WAL; a **resume** re-reads the
manifest, replays the WAL, and dispatches only the fingerprints with
no durable outcome.  Because every result record is a pure function of
its task, a sweep killed and resumed any number of times converges on
exactly the records an uninterrupted run writes.

The orchestrator is deliberately the only WAL writer — workers return
results over pipes and never touch the run directory (except the
shared table cache, whose atomic fingerprint-keyed writes are already
concurrency-safe), so an orchestrator SIGKILL leaves at most one torn
tail to recover and any orphaned daemon workers exit on their own.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from .plan import SweepTask
from .report import build_sweep_report, write_sweep_report
from .runner import PoolExhaustedError, RunnerStats, SweepRunner
from .store import (
    MANIFEST_SCHEMA,
    QUARANTINE_SCHEMA,
    RECORD_SCHEMA,
    ResultStore,
    StoreError,
)
from .worker import run_sweep_task

__all__ = ["DEFAULT_PARAMS", "SweepOutcome", "run_sweep"]

#: runner knobs persisted in the manifest so a resume inherits them
DEFAULT_PARAMS = {
    "n_jobs": 1,
    "timeout_s": 300.0,
    "max_attempts": 3,
    "backoff_base_s": 0.5,
    "seed": 0,
    "heartbeat_timeout_s": 10.0,
}


@dataclass
class SweepOutcome:
    """What one ``run_sweep`` invocation did and how it ended."""

    report: dict
    report_path: Path
    stats: RunnerStats = field(default_factory=RunnerStats)
    exit_code: int = 0
    error: Optional[str] = None


def _manifest_for(tasks: Sequence[SweepTask], params: dict) -> dict:
    return {
        "schema": MANIFEST_SCHEMA,
        "params": params,
        "tasks": [{"fp": t.fp, "task": t.payload} for t in tasks],
    }


def run_sweep(
    rundir: "Path | str",
    tasks: Optional[Sequence[SweepTask]] = None,
    params: Optional[dict] = None,
    *,
    resume: bool = False,
    verify_only: bool = False,
    retry_quarantined: bool = False,
    cache_root: Optional[str] = None,
    fsync: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """Execute (or resume, or just verify) a sweep run directory.

    Fresh runs require ``tasks`` and refuse a directory that already
    has a manifest (that is what ``resume=True`` is for).  Resumes take
    their plan and runner parameters from the manifest; ``params`` then
    acts as an override for host-bound knobs (``n_jobs``, timeouts) —
    task identity lives in the plan, so overrides cannot change *what*
    is computed, only how patiently.
    """
    rundir = Path(rundir)
    progress = progress or (lambda msg: None)
    stats = RunnerStats()
    error: Optional[str] = None

    with ResultStore(rundir, fsync=fsync) as store:
        if resume or verify_only:
            manifest = store.read_manifest()
            run_params = {
                **DEFAULT_PARAMS,
                **manifest.get("params", {}),
                **(params or {}),
            }
        else:
            if store.has_manifest():
                raise StoreError(
                    f"{rundir} already holds a sweep manifest; "
                    "use resume to continue it"
                )
            if not tasks:
                raise ValueError("a fresh sweep needs a non-empty task plan")
            run_params = {**DEFAULT_PARAMS, **(params or {})}
            manifest = _manifest_for(tasks, run_params)
            store.write_manifest(manifest)

        plan: dict[str, dict] = {t["fp"]: t["task"] for t in manifest["tasks"]}
        total = len(plan)

        if not verify_only:
            todo = [
                (fp, plan[fp])
                for fp in store.missing(list(plan), retry_quarantined)
            ]
            if todo:
                progress(
                    f"sweep: {total} planned, {len(store.results)} already "
                    f"durable, {len(todo)} to run"
                )

                def on_result(fp: str, task: dict, body: dict) -> None:
                    store.append_result(
                        {
                            "schema": RECORD_SCHEMA,
                            "fp": fp,
                            "task": task,
                            "result": body["result"],
                        }
                    )
                    progress(
                        f"[{len(store.results)}/{total}] {task['config']}"
                        f" x {task['workload_label']}"
                        f" [{task['fault_label']}/{task['mode']}] ok"
                    )

                def on_quarantine(fp: str, task: dict, failures: list) -> None:
                    store.append_quarantine(
                        {
                            "schema": QUARANTINE_SCHEMA,
                            "fp": fp,
                            "task": task,
                            "attempts": len(failures),
                            "failures": [f.as_dict() for f in failures],
                        }
                    )

                runner = SweepRunner(
                    functools.partial(
                        run_sweep_task,
                        cache_root=cache_root or str(rundir / "cache"),
                    ),
                    n_jobs=int(run_params["n_jobs"]),
                    timeout_s=float(run_params["timeout_s"]),
                    max_attempts=int(run_params["max_attempts"]),
                    backoff_base_s=float(run_params["backoff_base_s"]),
                    seed=int(run_params["seed"]),
                    heartbeat_timeout_s=float(run_params["heartbeat_timeout_s"]),
                    on_result=on_result,
                    on_quarantine=on_quarantine,
                    progress=progress,
                )
                try:
                    stats = runner.run(todo)
                except PoolExhaustedError as exc:
                    # everything durable so far is kept; report what we
                    # have and signal the caller to resume later
                    error = str(exc)
                    progress(f"sweep aborted: {exc}")

        report = build_sweep_report(store, manifest)
        report["runner"] = stats.as_dict()
        report_path = write_sweep_report(rundir, report)

    if error is not None:
        exit_code = 2
    elif not report["integrity"]["ok"] or report["quarantine"]:
        exit_code = 1
    else:
        exit_code = 0
    return SweepOutcome(
        report=report,
        report_path=report_path,
        stats=stats,
        exit_code=exit_code,
        error=error,
    )
