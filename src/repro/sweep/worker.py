"""The sweep task executor: one combo in, one pure result payload out.

``run_sweep_task`` is a module-level function of (payload, cache_root)
so it pickles into worker processes.  It rebuilds everything from the
payload alone — configuration by name, workload from its inlined
descriptor, fault schedule from its inlined dict — characterizes
through the shared :class:`~repro.core.tablecache.TableCache` (atomic
writes make concurrent workers safe; the fingerprint key dedupes the
expensive phase across every task sharing a configuration), evaluates,
and reduces the report to a JSON payload that is a **pure function of
the task**: simulated-time quantities only, no wall clocks, no worker
identity, no host paths.  That purity is what makes kill-resume
byte-identity achievable at all.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.methodology import Methodology
from ..fingerprint import workload_fingerprint
from ..obs.runreport import summarize_run
from .plan import descriptor_app, resolve_config

__all__ = ["run_sweep_task", "result_payload"]


def _used_cells(report) -> dict:
    """Byte-weighted used%% per (level, op) — the comparison surface."""
    out: dict[str, dict[str, float]] = {}
    for level in report.used.levels():
        for op in ("write", "read"):
            cell = report.used.cell(level, op)
            if cell is not None:
                out.setdefault(level, {})[op] = cell
    return out


def _faults_summary(f: Optional[dict]) -> Optional[dict]:
    """The deterministic core of a degraded-mode report."""
    if f is None:
        return None
    out = {
        "verdict": f.get("verdict"),
        "degraded_s": f.get("degraded_s"),
        "run_end_s": f.get("run_end_s"),
        "bandwidth_ratio": f.get("bandwidth_ratio", {}),
    }
    if f.get("data_loss"):
        out["data_loss"] = f["data_loss"]
    return out


def result_payload(report, app) -> dict:
    """Reduce one :class:`EvaluationReport` to the stored result dict."""
    result: dict[str, Any] = summarize_run(report)
    result["workload_fingerprint"] = workload_fingerprint(app)
    result["verdicts"] = {
        "write": report.write_bottleneck(),
        "read": report.read_bottleneck(),
    }
    result["used"] = _used_cells(report)
    faults = _faults_summary(report.faults)
    if faults is not None:
        result["faults"] = faults
    if report.sanitizer is not None:
        violations = report.sanitizer.get("violations", [])
        if violations:
            # a sanitizer violation is a failed task, not a result
            raise RuntimeError(
                f"sanitizer reported {len(violations)} violation(s): "
                f"{violations[0]}"
            )
        result["sanitized"] = True
    return result


def run_sweep_task(payload: dict, cache_root: Optional[str] = None) -> dict:
    """Execute one planned combination; returns the full record payload.

    The returned dict is exactly what the orchestrator appends to the
    WAL: ``{"schema", "fp"?, "task", "result"}`` — the orchestrator
    stamps ``fp`` from its plan, keeping workers unable to corrupt the
    identity they are keyed under.
    """
    task = payload
    char = task["char"]
    config = resolve_config(task["config"])
    name = task["config"]
    app = descriptor_app(task["workload"])
    faults = task.get("faults")
    if faults is not None:
        from ..faults import FaultSchedule

        faults = FaultSchedule.from_dict(faults)

    from ..simengine import analytic as _analytic

    prev_analytic = _analytic.ANALYTIC
    _analytic.ANALYTIC = task.get("mode", "exact") == "analytic"
    try:
        m = Methodology(
            {name: config},
            block_sizes=tuple(char["block_sizes"]),
            char_file_bytes=char.get("char_file_bytes"),
            ior_nprocs=char.get("ior_nprocs", 8),
            ior_file_bytes=char.get("ior_file_bytes"),
        )
        m.characterize(n_jobs=1, cache=cache_root)
        report = m.evaluate_single(
            name,
            app,
            n_jobs=1,
            phase_fastpath=bool(task.get("phase_fastpath", True)),
            sanitize=bool(task.get("sanitize", False)),
            faults=faults,
        )
    finally:
        _analytic.ANALYTIC = prev_analytic
    return {"task": task, "result": result_payload(report, app)}
