"""Append-only, CRC-framed JSONL result store — the sweep's WAL.

A fleet-scale sweep is only as good as its ability to survive its own
orchestrator: an O(10^3) run that loses everything to a SIGKILL at 90%
never gets rerun.  Every completed task therefore lands in an
append-only write-ahead file *before* the orchestrator acknowledges
it, framed so that any prefix of the file is a valid store:

``results.jsonl`` / ``quarantine.jsonl``
    One record per line: ``{"crc": "<8 hex>", "payload": {...}}``.
    The CRC is ``zlib.crc32`` over the *canonical JSON* bytes of the
    payload (:func:`repro.fingerprint.canonical_json`), so a record's
    frame is a pure function of its content — two runs producing the
    same payload write identical lines.  Appends are flushed and
    ``fsync``'d per record (the WAL property; ``fsync=False`` exists
    for tests), so a record either survives whole or was never
    acknowledged.

``manifest.json``
    The run's plan (every task payload plus its fingerprint) and the
    runner parameters, written atomically via temp file +
    ``os.replace``.  Resume needs nothing but the run directory.

Recovery on open mirrors a database WAL replay:

* a **torn tail** — the final line missing its newline, or failing to
  parse/CRC-check — is the signature of a crash mid-append; the file
  is truncated back to the last durable record and the lost
  fingerprint simply gets recomputed;
* a **corrupt interior record** (bit rot, hand editing) cannot be
  truncated away without losing good records after it, so it is
  dropped from the loaded view, counted, and its fingerprint
  recomputed — the re-appended record is byte-identical to what the
  corrupt line should have been;
* **duplicate fingerprints** keep the *first* durable record (later
  appends of the same fingerprint are byte-identical by construction;
  a mismatch is a determinism violation the verifier reports).
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from pathlib import Path
from typing import Any, Optional

from ..fingerprint import canonical_json

__all__ = [
    "RECORD_SCHEMA",
    "QUARANTINE_SCHEMA",
    "MANIFEST_SCHEMA",
    "StoreError",
    "ResultStore",
    "record_line",
    "parse_record",
]

log = logging.getLogger(__name__)

RECORD_SCHEMA = "repro.sweep-record/1"
QUARANTINE_SCHEMA = "repro.sweep-quarantine/1"
MANIFEST_SCHEMA = "repro.sweep-manifest/1"


class StoreError(Exception):
    """The run directory is unusable (not a sweep run, bad manifest)."""


def _crc(payload: Any) -> str:
    return f"{zlib.crc32(canonical_json(payload).encode('utf-8')) & 0xFFFFFFFF:08x}"


def record_line(payload: Any) -> str:
    """The exact line (with newline) a payload is stored as."""
    return json.dumps(
        {"crc": _crc(payload), "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    ) + "\n"


def parse_record(line: bytes) -> Optional[dict]:
    """Decode one stored line; ``None`` if it fails to parse or CRC."""
    try:
        rec = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(rec, dict) or "payload" not in rec:
        return None
    if rec.get("crc") != _crc(rec["payload"]):
        return None
    payload = rec["payload"]
    return payload if isinstance(payload, dict) else None


def _recover(path: Path) -> tuple[list[dict], int, int]:
    """Replay one WAL file: ``(payloads, truncated_bytes, corrupt)``.

    Truncates the file in place when the tail is torn (partial final
    line, or a final line that fails parse/CRC — both are what a crash
    mid-append leaves behind).  Interior corruption is dropped from
    the returned payloads and counted, never truncated.
    """
    if not path.exists():
        return [], 0, 0
    raw = path.read_bytes()
    payloads: list[dict] = []
    corrupt = 0
    durable_end = 0  # byte offset just past the last good record
    pos = 0
    bad_tail: list[tuple[int, bytes]] = []  # (start_offset, line) runs of bad lines
    while pos < len(raw):
        nl = raw.find(b"\n", pos)
        if nl == -1:
            break  # no newline: torn tail from here
        line = raw[pos : nl + 1]
        if line.strip():
            payload = parse_record(line)
            if payload is None:
                bad_tail.append((pos, line))
            else:
                # bad lines *before* a good one are interior corruption
                corrupt += len(bad_tail)
                bad_tail = []
                payloads.append(payload)
                durable_end = nl + 1
        pos = nl + 1
    # anything after the last good record — bad complete lines and/or
    # a newline-less fragment — is the torn tail
    truncated = len(raw) - durable_end
    if truncated:
        with path.open("r+b") as fh:
            fh.truncate(durable_end)
            fh.flush()
            os.fsync(fh.fileno())
        log.warning(
            "%s: truncated %d torn byte(s) after the last durable record",
            path.name,
            truncated,
        )
    if corrupt:
        log.warning(
            "%s: dropped %d corrupt interior record(s); their fingerprints "
            "will be recomputed",
            path.name,
            corrupt,
        )
    return payloads, truncated, corrupt


class ResultStore:
    """The per-run WAL pair (results + quarantine) and manifest."""

    RESULTS = "results.jsonl"
    QUARANTINE = "quarantine.jsonl"
    MANIFEST = "manifest.json"

    def __init__(self, rundir: "Path | str", fsync: bool = True):
        self.rundir = Path(rundir)
        self.rundir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: fingerprint -> result payload (first durable record wins)
        self.results: dict[str, dict] = {}
        #: fingerprint -> quarantine payload
        self.quarantine: dict[str, dict] = {}
        #: fingerprints whose later duplicate records differed from the
        #: first — a determinism violation surfaced by the verifier
        self.duplicate_mismatches: list[str] = []
        self.recovery = {"truncated_bytes": 0, "corrupt_records": 0}
        self._load(self.results_path, self.results)
        self._load(self.quarantine_path, self.quarantine)
        self._handles: dict[Path, Any] = {}

    # ------------------------------------------------------------------
    @property
    def results_path(self) -> Path:
        return self.rundir / self.RESULTS

    @property
    def quarantine_path(self) -> Path:
        return self.rundir / self.QUARANTINE

    @property
    def manifest_path(self) -> Path:
        return self.rundir / self.MANIFEST

    def _load(self, path: Path, into: dict[str, dict]) -> None:
        payloads, truncated, corrupt = _recover(path)
        self.recovery["truncated_bytes"] += truncated
        self.recovery["corrupt_records"] += corrupt
        for payload in payloads:
            fp = payload.get("fp")
            if not isinstance(fp, str):
                self.recovery["corrupt_records"] += 1
                continue
            if fp in into:
                if canonical_json(into[fp]) != canonical_json(payload):
                    self.duplicate_mismatches.append(fp)
                continue
            into[fp] = payload

    # ------------------------------------------------------------------
    def _append(self, path: Path, payload: dict) -> None:
        fh = self._handles.get(path)
        if fh is None:
            fh = path.open("ab")
            self._handles[path] = fh
        fh.write(record_line(payload).encode("utf-8"))
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())

    def append_result(self, payload: dict) -> None:
        """Durably record one completed task (idempotent per fp)."""
        fp = payload["fp"]
        if fp in self.results:
            if canonical_json(self.results[fp]) != canonical_json(payload):
                self.duplicate_mismatches.append(fp)
            return
        self._append(self.results_path, payload)
        self.results[fp] = payload

    def append_quarantine(self, payload: dict) -> None:
        """Durably record one poisoned task."""
        fp = payload["fp"]
        if fp in self.quarantine:
            return
        self._append(self.quarantine_path, payload)
        self.quarantine[fp] = payload

    def close(self) -> None:
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        """Atomically publish the run manifest (temp file + rename)."""
        text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        tmp = self.manifest_path.with_name(f".{self.MANIFEST}.{os.getpid()}.tmp")
        with tmp.open("w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> dict:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise StoreError(f"{self.rundir} has no {self.MANIFEST}; not a sweep run")
        except ValueError as exc:
            raise StoreError(f"unreadable {self.manifest_path}: {exc}")
        if not isinstance(manifest, dict) or manifest.get("schema") != MANIFEST_SCHEMA:
            raise StoreError(
                f"{self.manifest_path} is not a {MANIFEST_SCHEMA} document"
            )
        return manifest

    def has_manifest(self) -> bool:
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    def missing(self, plan_fps: "list[str]", retry_quarantined: bool = False) -> list[str]:
        """Plan fingerprints with no durable outcome yet, in plan order."""
        done = set(self.results)
        if not retry_quarantined:
            done |= set(self.quarantine)
        return [fp for fp in plan_fps if fp not in done]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ResultStore {str(self.rundir)!r} results={len(self.results)} "
            f"quarantine={len(self.quarantine)}>"
        )
