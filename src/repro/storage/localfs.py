"""Local (ext4-like) filesystem on top of a block array.

This is the "devices / local filesystem" level of the paper's I/O
path.  It combines:

* an extent-based allocator (files are laid out in large contiguous
  extents, as ext4's delayed allocation achieves in practice);
* the node's :class:`~repro.storage.cache.PageCache` with write-back,
  background flushing, dirty throttling and filesystem readahead;
* per-operation syscall and memcpy CPU costs;
* journalled metadata operations (create/unlink pay a journal write).

Writes are absorbed by the page cache and reach the device through
write-back.  Because the cache tracks *dirty bytes per segment*, the
flush cost of a sparsely-dirtied region degenerates to random
page-sized device writes while dense regions flush as large
sequential writes — so a small-strided workload throttles at the
array's random-write rate and a streaming one at its sequential rate,
with no per-workload special cases.  Reads miss to the device in
coalesced runs extended by a readahead window; files that are fully
resident are served from memory regardless of access pattern (the
effect behind the paper's >100% "used percentage" entries).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..simengine import Environment, Event
from ..hardware.node import Node
from ..hardware.raid import RAIDArray
from .base import IORequest, KiB, MiB
from .cache import CacheSpec, PageCache

__all__ = ["LocalFSSpec", "Inode", "LocalFS"]


@dataclass(frozen=True)
class LocalFSSpec:
    """Cost parameters of the filesystem implementation."""

    syscall_s: float = 1.4e-6  # per read()/write() entry
    open_s: float = 45e-6
    create_s: float = 220e-6  # includes journal record
    close_s: float = 15e-6
    unlink_s: float = 260e-6
    min_io_bytes: int = 4 * KiB  # page-granular device I/O
    readahead_bytes: int = 1 * MiB  # sequential readahead window
    extent_bytes: int = 8 * MiB  # allocation granularity
    journal_write_bytes: int = 8 * KiB
    #: fraction of node RAM available to the page cache
    cache_fraction: float = 0.85
    #: a flush run at least this dense writes the whole run sequentially
    dense_flush_threshold: float = 0.5


@dataclass
class Inode:
    """Namespace entry; data extents map file offsets to device offsets."""

    fileid: int
    path: str
    size: int = 0
    nlink: int = 1
    # extents: (file_offset, device_offset, length) — appended in file
    # order, so file offsets are contiguous from 0 and sorted
    extents: list[tuple[int, int, int]] = field(default_factory=list)

    def allocated_bytes(self) -> int:
        if not self.extents:
            return 0
        fo, _do, ln = self.extents[-1]
        return fo + ln

    def device_offset(self, file_offset: int) -> int:
        """Device byte address backing ``file_offset``."""
        i = bisect.bisect_right(self.extents, file_offset, key=lambda e: e[0]) - 1
        if i >= 0:
            fo, do, ln = self.extents[i]
            if fo <= file_offset < fo + ln:
                return do + (file_offset - fo)
        raise KeyError(f"offset {file_offset} beyond allocation of {self.path!r}")


@dataclass
class FSStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    opens: int = 0
    creates: int = 0
    flush_runs: int = 0


class LocalFS:
    """A mounted local filesystem instance on one node."""

    FLUSH_BATCH_SEGS = 64
    #: sparse requests touching more segments than this many cache
    #: capacities are charged arithmetically instead of per-segment
    OVERFLOW_FACTOR = 4

    def __init__(
        self,
        env: Environment,
        node: Node,
        array: RAIDArray,
        spec: LocalFSSpec | None = None,
        cache_spec: CacheSpec | None = None,
        name: str = "localfs",
    ):
        self.env = env
        self.node = node
        self.array = array
        self.spec = spec or LocalFSSpec()
        if cache_spec is None:
            cache_spec = CacheSpec(
                capacity_bytes=int(node.spec.ram_bytes * self.spec.cache_fraction)
            )
        self.cache = PageCache(cache_spec, name=f"{name}.cache")
        self.name = name
        self.stats = FSStats()
        self._inodes: dict[str, Inode] = {}
        self._by_id: dict[int, Inode] = {}
        self._next_fileid = 1
        self._alloc_cursor = 0
        self._flusher_running = False
        self._flush_waiters: list[Event] = []
        self._inode_locks: dict[int, object] = {}

    # ------------------------------------------------------------------
    # namespace operations (each returns an Event)
    # ------------------------------------------------------------------
    def create(self, path: str) -> Event:
        """Create (or truncate) a file; value is the :class:`Inode`."""
        return self.env.process(self._create(path), name=f"{self.name}.create")

    def _create(self, path):
        yield self.env.timeout(self.spec.create_s)
        yield self.array.submit(
            "write", self._journal_offset(), self.spec.journal_write_bytes
        )
        inode = self._inodes.get(path)
        if inode is None:
            inode = Inode(self._next_fileid, path)
            self._next_fileid += 1
            self._inodes[path] = inode
            self._by_id[inode.fileid] = inode
        else:
            inode.size = 0
            self.cache.drop_file(inode.fileid)
        self.stats.creates += 1
        return inode

    def open(self, path: str, create: bool = False) -> Event:
        """Open an existing file; value is the :class:`Inode`."""
        if path not in self._inodes:
            if create:
                return self.create(path)
            raise FileNotFoundError(path)
        inode = self._inodes[path]

        def _op():
            yield self.env.timeout(self.spec.open_s)
            self.stats.opens += 1
            return inode

        return self.env.process(_op(), name=f"{self.name}.open")

    def close(self, inode: Inode) -> Event:
        return self.env.timeout(self.spec.close_s, value=inode)

    def unlink(self, path: str) -> Event:
        inode = self._inodes.get(path)
        if inode is None:
            raise FileNotFoundError(path)

        def _op():
            yield self.env.timeout(self.spec.unlink_s)
            yield self.array.submit(
                "write", self._journal_offset(), self.spec.journal_write_bytes
            )
            self.cache.drop_file(inode.fileid)
            del self._inodes[path]
            del self._by_id[inode.fileid]
            return None

        return self.env.process(_op(), name=f"{self.name}.unlink")

    def stat(self, path: str) -> Inode:
        if path not in self._inodes:
            raise FileNotFoundError(path)
        return self._inodes[path]

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def paths(self) -> list[str]:
        return list(self._inodes)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def submit(self, inode: Inode, req: IORequest) -> Event:
        """Serve a data request; the event fires when it is *accepted*
        (writes: resident in cache under write-back; reads: data
        available in the caller's buffer)."""
        if req.op == "write":
            return self.env.process(self._write(inode, req), name=f"{self.name}.write")
        return self.env.process(self._read(inode, req), name=f"{self.name}.read")

    def submit_direct(self, inode: Inode, req: IORequest) -> Event:
        """MPI-IO access path; on a local filesystem it is the normal
        page-cached path (syscalls are already synchronous)."""
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, req.total_bytes)
        return self.submit(inode, req)

    def submit_serialized_write(self, inode: Inode, req: IORequest, per_op_s: float) -> Event:
        """Small synchronous writes under the per-inode mutex.

        NFS servers serialise writes to one file on the inode mutex;
        each operation additionally pays ``per_op_s`` of VFS/ext4
        service time.  This is the server-side path of ROMIO-style
        synchronous small strided writes (NAS BT-IO *simple*): the
        data still lands in the page cache (and flushes normally), but
        concurrent writers to a shared file make no aggregate progress
        beyond ``1 / per_op_s`` operations per second.
        """
        if req.op != "write":
            raise ValueError("submit_serialized_write is write-only")

        def _op():
            lock = self._inode_locks.get(inode.fileid)
            if lock is None:
                from ..simengine import Resource

                lock = self._inode_locks[inode.fileid] = Resource(
                    self.env, 1, name=f"{self.name}.ilock{inode.fileid}"
                )
            grant = lock.request()
            yield grant
            try:
                yield self.env.timeout(req.count * per_op_s)
                yield self.submit(inode, req)
            finally:
                if grant in lock.users:
                    lock.release(grant)
            return req.total_bytes

        return self.env.process(_op(), name=f"{self.name}.syncwrite")

    def absorb(self, inode: Inode, req: IORequest) -> int:
        """Apply a request's *state* side effects without simulating it.

        Used by the phase-replay fastpath: once a phase's per-occurrence
        timing is verified steady, remaining occurrences are charged
        analytically — but file growth, allocation and cache residency
        must still happen so that later (simulated) phases see the same
        filesystem state full replay would have left.  Advances no
        simulated time.  Absorbed writes land *clean*: a steady write
        phase's measured duration already includes its amortised flush
        cost, so the flusher is modelled as having kept up.
        """
        total = req.total_bytes
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, total)
        if req.op == "write":
            end = req.offset + req.span
            self._ensure_allocation(inode, end)
            inode.size = max(inode.size, end)
            self.stats.writes += req.count
            self.stats.bytes_written += total
        else:
            self.stats.reads += req.count
            self.stats.bytes_read += total
        if req.is_dense:
            span = req.span
            if req.op == "read":
                span = min(span, max(inode.size - req.offset, 0))
            for seg in self.cache.segments_of(req.offset, span):
                if not self.cache.touch(inode.fileid, seg):
                    # clean insert; dirty victims were already flushed
                    # analytically as part of the steady-state timing
                    self.cache.insert(inode.fileid, seg, 0)
        return total

    def state_token(self, inode: Inode, req: IORequest) -> tuple:
        """Coarse fingerprint of the cache state governing a request's
        service time, used as part of the replay phase key.

        A phase occurrence's duration depends not only on its geometry
        but on the regime the cache is in when it starts: whether the
        target range is resident (none / partial / full), and whether
        the cache is under background-flush or writer-throttle
        pressure.  Folding this into the key splits a drifting phase
        (cache still filling, flusher ramping up) into per-regime
        phases that each verify independently — a regime change after
        verification changes the key and forces re-simulation instead
        of extrapolating a stale steady value.
        """
        segs = self.cache.segments_of(req.offset, req.span)
        n = len(segs)
        if n == 0:
            res = 0
        else:
            # probing first/middle/last segments classifies the regime
            # in O(1); the token is a heuristic key component, so the
            # approximation only needs to be deterministic
            probes = sorted({segs[0], segs[n // 2], segs[-1]})
            hits = sum(1 for s in probes if self.cache.is_resident(inode.fileid, s))
            res = 0 if hits == 0 else (2 if hits == len(probes) else 1)
        return (res, self.cache.need_background_flush, self.cache.need_throttle)

    def reset(self) -> None:
        """Drop all namespace, cache and allocator state (warm reuse)."""
        self.cache.reset()
        self.stats = FSStats()
        self._inodes.clear()
        self._by_id.clear()
        self._next_fileid = 1
        self._alloc_cursor = 0
        self._flusher_running = False
        self._flush_waiters.clear()
        self._inode_locks.clear()

    def fsync(self, inode: Inode) -> Event:
        """Flush the file's dirty segments to the device."""
        return self.env.process(self._fsync(inode), name=f"{self.name}.fsync")

    def sync(self) -> Event:
        """Flush everything dirty and drain the array's cache."""
        return self.env.process(self._sync_all(), name=f"{self.name}.sync")

    # -- write -------------------------------------------------------------
    def _dirty_plan(self, req: IORequest) -> tuple[list[tuple[int, int]], int]:
        """(segment, dirty_bytes) contributions of a request, plus an
        arithmetic overflow remainder in bytes for huge sparse streams."""
        sb = self.cache.spec.segment_bytes
        cap = self.OVERFLOW_FACTOR * self.cache.spec.nsegments
        out: list[tuple[int, int]] = []
        if req.is_dense:
            start, span = req.offset, req.span
            for seg in self.cache.segments_of(start, span):
                lo = max(start, seg * sb)
                hi = min(start + span, (seg + 1) * sb)
                out.append((seg, hi - lo))
            return out, 0
        stride = req.effective_stride if req.stride != -1 else 7919 * self.spec.min_io_bytes
        if stride < sb:
            # Dirtiness spreads uniformly over the span.
            segs = list(self.cache.segments_of(req.offset, req.span))
            per = max(req.total_bytes // max(len(segs), 1), 1)
            return [(s, per) for s in segs[:cap]], max(0, (len(segs) - cap)) * per
        # One (partial) segment per operation.
        n = min(req.count, cap)
        segs = [(req.offset + k * stride) // sb for k in range(n)]
        rem = (req.count - n) * req.nbytes
        return [(s, req.nbytes) for s in segs], rem

    def _write(self, inode, req: IORequest):
        spec = self.spec
        total = req.total_bytes
        # CPU: syscalls + copy into the cache
        yield self.env.timeout(req.count * spec.syscall_s + self.node.memcpy_time(total))
        end = req.offset + req.span
        self._ensure_allocation(inode, end)
        self.stats.writes += req.count
        self.stats.bytes_written += total

        plan, overflow = self._dirty_plan(req)
        for seg, dirty in plan:
            if self.cache.need_throttle:
                yield from self._throttle()
            victims = self.cache.insert(
                inode.fileid, seg, dirty if self.cache.spec.write_back else 0
            )
            if not self.cache.spec.write_back:
                yield from self._flush_entries([(inode.fileid, seg, dirty)])
            if victims:
                yield from self._flush_entries(victims)
        if overflow:
            # Stream far larger than the cache: the excess hits the
            # device directly at the pattern's natural rate.
            nb = max(req.nbytes, spec.min_io_bytes)
            dev = inode.device_offset(0)
            yield self.array.submit("write", dev, nb, max(overflow // nb, 1), 7919 * nb, cached=False)
        if self.cache.need_background_flush:
            self._kick_flusher()
        inode.size = max(inode.size, end)
        return total

    # -- read --------------------------------------------------------------
    def _read(self, inode, req: IORequest):
        spec = self.spec
        total = req.total_bytes
        yield self.env.timeout(req.count * spec.syscall_s + self.node.memcpy_time(total))
        self.stats.reads += req.count
        self.stats.bytes_read += total

        if self.cache.file_fully_resident(inode.fileid, max(inode.size, 1)):
            span = min(req.span, max(inode.size - req.offset, 0))
            for seg in self.cache.segments_of(req.offset, span):
                self.cache.touch(inode.fileid, seg)
            return total
        if req.is_dense:
            yield from self._cached_read(inode, req)
        else:
            # Sparse cold reads: page-granular device I/O per operation.
            nb = max(req.nbytes, spec.min_io_bytes)
            dev = inode.device_offset(min(req.offset, max(inode.size - 1, 0)))
            stride = req.effective_stride if req.stride != -1 else 7919 * spec.min_io_bytes
            self.cache.stats.misses += req.count
            yield self.array.submit("read", dev, nb, req.count, stride)
        return total

    def _cached_read(self, inode, req: IORequest):
        sb = self.cache.spec.segment_bytes
        span = min(req.span, max(inode.size - req.offset, 0))
        segs = list(self.cache.segments_of(req.offset, span))
        miss_run: list[int] = []
        for seg in segs:
            if self.cache.touch(inode.fileid, seg):
                if miss_run:
                    yield from self._fill(inode, miss_run)
                    miss_run = []
            else:
                miss_run.append(seg)
        if miss_run:
            # sequential tail: extend by the readahead window
            ra_extra = self.spec.readahead_bytes // sb
            last = miss_run[-1]
            file_last_seg = max((inode.size - 1) // sb, 0)
            for k in range(1, ra_extra + 1):
                if last + k <= file_last_seg:
                    miss_run.append(last + k)
            yield from self._fill(inode, miss_run)

    def _fill(self, inode, segs: list[int]):
        """Read missing segments from the device and make them resident."""
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, _d in PageCache.coalesce(
            (inode.fileid, s, 0) for s in segs
        ):
            off = first * sb
            length = min(nsegs * sb, max(inode.size - off, sb))
            self._ensure_allocation(inode, off + length)
            dev = inode.device_offset(off)
            yield self.array.submit("read", dev, length)
            for s in range(first, first + nsegs):
                victims = self.cache.insert(fileid, s, 0)
                if victims:
                    yield from self._flush_entries(victims)

    # -- write-back machinery ------------------------------------------------
    def _journal_offset(self) -> int:
        # fixed journal region at the tail of the device
        return max(self.array.capacity_bytes - 128 * MiB, 0)

    def _ensure_allocation(self, inode: Inode, upto: int) -> None:
        have = inode.allocated_bytes()
        if upto <= have:
            return
        need = upto - have
        ext = self.spec.extent_bytes
        length = ((need + ext - 1) // ext) * ext
        usable = max(self.array.capacity_bytes - 256 * MiB, length)
        start = self._alloc_cursor % usable
        self._alloc_cursor = start + length
        inode.extents.append((have, start, length))

    def _flush_entries(self, entries):
        """Write dirty cache entries to the device and mark them clean.

        Runs that are densely dirty flush as one sequential write;
        sparse runs flush as scattered page-sized writes.
        """
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, dirty in PageCache.coalesce(entries):
            inode = self._by_id.get(fileid)
            if inode is None:
                for s in range(first, first + nsegs):
                    self.cache.mark_clean(fileid, s)
                continue
            off = first * sb
            self._ensure_allocation(inode, off + nsegs * sb)
            dev = inode.device_offset(off)
            density = dirty / (nsegs * sb)
            if density >= self.spec.dense_flush_threshold:
                yield self.array.submit("write", dev, nsegs * sb, cached=False)
            else:
                nb = self.spec.min_io_bytes
                nops = max(dirty // nb, 1)
                scatter = max((nsegs * sb) // nops, nb)
                yield self.array.submit("write", dev, nb, nops, scatter, cached=False)
            for s in range(first, first + nsegs):
                self.cache.mark_clean(fileid, s)
            self.stats.flush_runs += 1

    def _kick_flusher(self) -> None:
        if not self._flusher_running:
            self._flusher_running = True
            self.env.process(self._flusher(), name=f"{self.name}.flusher")

    def _flusher(self):
        while self.cache.need_background_flush:
            batch = self.cache.dirty_segments(limit=self.FLUSH_BATCH_SEGS)
            if not batch:
                break
            yield from self._flush_entries(batch)
            waiters, self._flush_waiters = self._flush_waiters, []
            for w in waiters:
                w.succeed()
        self._flusher_running = False
        waiters, self._flush_waiters = self._flush_waiters, []
        for w in waiters:
            w.succeed()

    def _throttle(self):
        """Block the writer until the flusher drains below the dirty limit."""
        while self.cache.need_throttle:
            self._kick_flusher()
            ev = self.env.event()
            self._flush_waiters.append(ev)
            yield ev

    def _fsync(self, inode):
        yield self.env.timeout(self.spec.syscall_s)
        entries = self.cache.dirty_segments(limit=None, fileid=inode.fileid)
        yield from self._flush_entries(entries)
        yield self.array.submit(
            "write", self._journal_offset(), self.spec.journal_write_bytes
        )
        return None

    def _sync_all(self):
        entries = self.cache.dirty_segments(limit=None)
        yield from self._flush_entries(entries)
        yield self.array.flush()
        return None
