"""Local (ext4-like) filesystem on top of a block array.

This is the "devices / local filesystem" level of the paper's I/O
path.  It combines:

* an extent-based allocator (files are laid out in large contiguous
  extents, as ext4's delayed allocation achieves in practice);
* the node's :class:`~repro.storage.cache.PageCache` with write-back,
  background flushing, dirty throttling and filesystem readahead;
* per-operation syscall and memcpy CPU costs;
* journalled metadata operations (create/unlink pay a journal write).

Writes are absorbed by the page cache and reach the device through
write-back.  Because the cache tracks *dirty bytes per segment*, the
flush cost of a sparsely-dirtied region degenerates to random
page-sized device writes while dense regions flush as large
sequential writes — so a small-strided workload throttles at the
array's random-write rate and a streaming one at its sequential rate,
with no per-workload special cases.  Reads miss to the device in
coalesced runs extended by a readahead window; files that are fully
resident are served from memory regardless of access pattern (the
effect behind the paper's >100% "used percentage" entries).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..simengine import Environment, Event, FlatOp, Resource, Timeout
from ..simengine import resources as _kernel
from ..hardware.node import Node
from ..hardware.raid import RAIDArray
from .base import IORequest, KiB, MiB
from .cache import CacheSpec, PageCache

__all__ = ["LocalFSSpec", "Inode", "LocalFS"]


@dataclass(frozen=True)
class LocalFSSpec:
    """Cost parameters of the filesystem implementation."""

    syscall_s: float = 1.4e-6  # per read()/write() entry
    open_s: float = 45e-6
    create_s: float = 220e-6  # includes journal record
    close_s: float = 15e-6
    unlink_s: float = 260e-6
    min_io_bytes: int = 4 * KiB  # page-granular device I/O
    readahead_bytes: int = 1 * MiB  # sequential readahead window
    extent_bytes: int = 8 * MiB  # allocation granularity
    journal_write_bytes: int = 8 * KiB
    #: fraction of node RAM available to the page cache
    cache_fraction: float = 0.85
    #: a flush run at least this dense writes the whole run sequentially
    dense_flush_threshold: float = 0.5


@dataclass
class Inode:
    """Namespace entry; data extents map file offsets to device offsets."""

    fileid: int
    path: str
    size: int = 0
    nlink: int = 1
    # extents: (file_offset, device_offset, length) — appended in file
    # order, so file offsets are contiguous from 0 and sorted
    extents: list[tuple[int, int, int]] = field(default_factory=list)

    def allocated_bytes(self) -> int:
        if not self.extents:
            return 0
        fo, _do, ln = self.extents[-1]
        return fo + ln

    def device_offset(self, file_offset: int) -> int:
        """Device byte address backing ``file_offset``."""
        i = bisect.bisect_right(self.extents, file_offset, key=lambda e: e[0]) - 1
        if i >= 0:
            fo, do, ln = self.extents[i]
            if fo <= file_offset < fo + ln:
                return do + (file_offset - fo)
        raise KeyError(f"offset {file_offset} beyond allocation of {self.path!r}")


@dataclass
class FSStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    opens: int = 0
    creates: int = 0
    flush_runs: int = 0


class LocalFS:
    """A mounted local filesystem instance on one node."""

    FLUSH_BATCH_SEGS = 64
    #: sparse requests touching more segments than this many cache
    #: capacities are charged arithmetically instead of per-segment
    OVERFLOW_FACTOR = 4

    def __init__(
        self,
        env: Environment,
        node: Node,
        array: RAIDArray,
        spec: LocalFSSpec | None = None,
        cache_spec: CacheSpec | None = None,
        name: str = "localfs",
    ):
        self.env = env
        self.node = node
        self.array = array
        self.spec = spec or LocalFSSpec()
        if cache_spec is None:
            cache_spec = CacheSpec(
                capacity_bytes=int(node.spec.ram_bytes * self.spec.cache_fraction)
            )
        self.cache = PageCache(cache_spec, name=f"{name}.cache")
        self.name = name
        self.stats = FSStats()
        self._inodes: dict[str, Inode] = {}
        self._by_id: dict[int, Inode] = {}
        self._next_fileid = 1
        self._alloc_cursor = 0
        self._flusher_running = False
        self._flush_waiters: list[Event] = []
        self._inode_locks: dict[int, object] = {}

    # ------------------------------------------------------------------
    # namespace operations (each returns an Event)
    # ------------------------------------------------------------------
    def create(self, path: str) -> Event:
        """Create (or truncate) a file; value is the :class:`Inode`."""
        if _kernel.FS_FAST:
            return _LocalCreate(self, path).result
        return self.env.process(self._create(path), name=f"{self.name}.create")

    def _create(self, path):  # simlint: ignore[generator-serve]
        yield self.env.timeout(self.spec.create_s)
        yield self.array.submit(
            "write", self._journal_offset(), self.spec.journal_write_bytes
        )
        inode = self._inodes.get(path)
        if inode is None:
            inode = Inode(self._next_fileid, path)
            self._next_fileid += 1
            self._inodes[path] = inode
            self._by_id[inode.fileid] = inode
        else:
            inode.size = 0
            self.cache.drop_file(inode.fileid)
        self.stats.creates += 1
        return inode

    def open(self, path: str, create: bool = False) -> Event:
        """Open an existing file; value is the :class:`Inode`."""
        if path not in self._inodes:
            if create:
                return self.create(path)
            raise FileNotFoundError(path)
        inode = self._inodes[path]
        if _kernel.FS_FAST:
            return _LocalOpen(self, inode).result

        def _op():  # simlint: ignore[generator-serve]
            yield self.env.timeout(self.spec.open_s)
            self.stats.opens += 1
            return inode

        return self.env.process(_op(), name=f"{self.name}.open")

    def close(self, inode: Inode) -> Event:
        return self.env.timeout(self.spec.close_s, value=inode)

    def unlink(self, path: str) -> Event:
        inode = self._inodes.get(path)
        if inode is None:
            raise FileNotFoundError(path)
        if _kernel.FS_FAST:
            return _LocalUnlink(self, path, inode).result

        def _op():  # simlint: ignore[generator-serve]
            yield self.env.timeout(self.spec.unlink_s)
            yield self.array.submit(
                "write", self._journal_offset(), self.spec.journal_write_bytes
            )
            self.cache.drop_file(inode.fileid)
            del self._inodes[path]
            del self._by_id[inode.fileid]
            return None

        return self.env.process(_op(), name=f"{self.name}.unlink")

    def stat(self, path: str) -> Inode:
        if path not in self._inodes:
            raise FileNotFoundError(path)
        return self._inodes[path]

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def paths(self) -> list[str]:
        return list(self._inodes)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def submit(self, inode: Inode, req: IORequest) -> Event:
        """Serve a data request; the event fires when it is *accepted*
        (writes: resident in cache under write-back; reads: data
        available in the caller's buffer)."""
        if _kernel.FS_FAST:
            if req.op == "write":
                return _LocalWrite(self, inode, req).result
            return _LocalRead(self, inode, req).result
        if req.op == "write":
            return self.env.process(self._write(inode, req), name=f"{self.name}.write")
        return self.env.process(self._read(inode, req), name=f"{self.name}.read")

    def submit_direct(self, inode: Inode, req: IORequest) -> Event:
        """MPI-IO access path; on a local filesystem it is the normal
        page-cached path (syscalls are already synchronous)."""
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, req.total_bytes)
        return self.submit(inode, req)

    def submit_serialized_write(self, inode: Inode, req: IORequest, per_op_s: float) -> Event:
        """Small synchronous writes under the per-inode mutex.

        NFS servers serialise writes to one file on the inode mutex;
        each operation additionally pays ``per_op_s`` of VFS/ext4
        service time.  This is the server-side path of ROMIO-style
        synchronous small strided writes (NAS BT-IO *simple*): the
        data still lands in the page cache (and flushes normally), but
        concurrent writers to a shared file make no aggregate progress
        beyond ``1 / per_op_s`` operations per second.
        """
        if req.op != "write":
            raise ValueError("submit_serialized_write is write-only")
        if _kernel.FS_FAST:
            return _LocalSerializedWrite(self, inode, req, per_op_s).result

        def _op():  # simlint: ignore[generator-serve]
            lock = self._ilock(inode)
            grant = lock.request()
            yield grant
            try:
                yield self.env.timeout(req.count * per_op_s)
                yield self.submit(inode, req)
            finally:
                if grant in lock.users:
                    lock.release(grant)
            return req.total_bytes

        return self.env.process(_op(), name=f"{self.name}.syncwrite")

    def _ilock(self, inode: Inode) -> Resource:
        lock = self._inode_locks.get(inode.fileid)
        if lock is None:
            lock = self._inode_locks[inode.fileid] = Resource(
                self.env, 1, name=f"{self.name}.ilock{inode.fileid}"
            )
        return lock

    def absorb(self, inode: Inode, req: IORequest) -> int:
        """Apply a request's *state* side effects without simulating it.

        Used by the phase-replay fastpath: once a phase's per-occurrence
        timing is verified steady, remaining occurrences are charged
        analytically — but file growth, allocation and cache residency
        must still happen so that later (simulated) phases see the same
        filesystem state full replay would have left.  Advances no
        simulated time.  Absorbed writes land *clean*: a steady write
        phase's measured duration already includes its amortised flush
        cost, so the flusher is modelled as having kept up.
        """
        total = req.total_bytes
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, total)
        if req.op == "write":
            end = req.offset + req.span
            self._ensure_allocation(inode, end)
            inode.size = max(inode.size, end)
            self.stats.writes += req.count
            self.stats.bytes_written += total
        else:
            self.stats.reads += req.count
            self.stats.bytes_read += total
        if req.is_dense:
            span = req.span
            if req.op == "read":
                span = min(span, max(inode.size - req.offset, 0))
            # misses land clean; dirty victims were already flushed
            # analytically as part of the steady-state timing
            self.cache.touch_or_insert_clean(
                inode.fileid, self.cache.segments_of(req.offset, span)
            )
        return total

    def state_token(self, inode: Inode, req: IORequest) -> tuple:
        """Coarse fingerprint of the cache state governing a request's
        service time, used as part of the replay phase key.

        A phase occurrence's duration depends not only on its geometry
        but on the regime the cache is in when it starts: whether the
        target range is resident (none / partial / full), and whether
        the cache is under background-flush or writer-throttle
        pressure.  Folding this into the key splits a drifting phase
        (cache still filling, flusher ramping up) into per-regime
        phases that each verify independently — a regime change after
        verification changes the key and forces re-simulation instead
        of extrapolating a stale steady value.
        """
        segs = self.cache.segments_of(req.offset, req.span)
        n = len(segs)
        if n == 0:
            res = 0
        else:
            # probing first/middle/last segments classifies the regime
            # in O(1); the token is a heuristic key component, so the
            # approximation only needs to be deterministic
            probes = sorted({segs[0], segs[n // 2], segs[-1]})
            hits = sum(1 for s in probes if self.cache.is_resident(inode.fileid, s))
            res = 0 if hits == 0 else (2 if hits == len(probes) else 1)
        return (res, self.cache.need_background_flush, self.cache.need_throttle)

    def reset(self) -> None:
        """Drop all namespace, cache and allocator state (warm reuse)."""
        self.cache.reset()
        self.stats = FSStats()
        self._inodes.clear()
        self._by_id.clear()
        self._next_fileid = 1
        self._alloc_cursor = 0
        self._flusher_running = False
        self._flush_waiters.clear()
        self._inode_locks.clear()

    def fsync(self, inode: Inode) -> Event:
        """Flush the file's dirty segments to the device."""
        if _kernel.FS_FAST:
            return _LocalFsync(self, inode).result
        return self.env.process(self._fsync(inode), name=f"{self.name}.fsync")

    def sync(self) -> Event:
        """Flush everything dirty and drain the array's cache."""
        return self.env.process(self._sync_all(), name=f"{self.name}.sync")

    # -- write -------------------------------------------------------------
    def _dirty_plan(self, req: IORequest) -> tuple[list[tuple[int, int]], int]:
        """(segment, dirty_bytes) contributions of a request, plus an
        arithmetic overflow remainder in bytes for huge sparse streams."""
        sb = self.cache.spec.segment_bytes
        cap = self.OVERFLOW_FACTOR * self.cache.spec.nsegments
        out: list[tuple[int, int]] = []
        if req.is_dense:
            start, span = req.offset, req.span
            for seg in self.cache.segments_of(start, span):
                lo = max(start, seg * sb)
                hi = min(start + span, (seg + 1) * sb)
                out.append((seg, hi - lo))
            return out, 0
        stride = req.effective_stride if req.stride != -1 else 7919 * self.spec.min_io_bytes
        if stride < sb:
            # Dirtiness spreads uniformly over the span.
            segs = list(self.cache.segments_of(req.offset, req.span))
            per = max(req.total_bytes // max(len(segs), 1), 1)
            return [(s, per) for s in segs[:cap]], max(0, (len(segs) - cap)) * per
        # One (partial) segment per operation.
        n = min(req.count, cap)
        segs = [(req.offset + k * stride) // sb for k in range(n)]
        rem = (req.count - n) * req.nbytes
        return [(s, req.nbytes) for s in segs], rem

    def _write(self, inode, req: IORequest):  # simlint: ignore[generator-serve]
        spec = self.spec
        total = req.total_bytes
        # CPU: syscalls + copy into the cache
        yield self.env.timeout(req.count * spec.syscall_s + self.node.memcpy_time(total))
        end = req.offset + req.span
        self._ensure_allocation(inode, end)
        self.stats.writes += req.count
        self.stats.bytes_written += total

        plan, overflow = self._dirty_plan(req)
        if self.cache.spec.write_back:
            i = 0
            while i < len(plan):
                # absorb the throttle-free, flush-free prefix in one call
                i += self.cache.insert_dirty_run(inode.fileid, plan, i)
                if i >= len(plan):
                    break
                seg, dirty = plan[i]
                if self.cache.need_throttle:
                    yield from self._throttle()
                victims = self.cache.insert(inode.fileid, seg, dirty)
                if victims:
                    yield from self._flush_entries(victims)
                i += 1
        else:
            for seg, dirty in plan:
                if self.cache.need_throttle:
                    yield from self._throttle()
                victims = self.cache.insert(inode.fileid, seg, 0)
                yield from self._flush_entries([(inode.fileid, seg, dirty)])
                if victims:
                    yield from self._flush_entries(victims)
        if overflow:
            # Stream far larger than the cache: the excess hits the
            # device directly at the pattern's natural rate.
            nb = max(req.nbytes, spec.min_io_bytes)
            dev = inode.device_offset(0)
            yield self.array.submit("write", dev, nb, max(overflow // nb, 1), 7919 * nb, cached=False)
        if self.cache.need_background_flush:
            self._kick_flusher()
        inode.size = max(inode.size, end)
        return total

    # -- read --------------------------------------------------------------
    def _read(self, inode, req: IORequest):  # simlint: ignore[generator-serve]
        spec = self.spec
        total = req.total_bytes
        yield self.env.timeout(req.count * spec.syscall_s + self.node.memcpy_time(total))
        self.stats.reads += req.count
        self.stats.bytes_read += total

        if req.offset >= inode.size:
            # read at/past EOF (e.g. a never-written file): POSIX
            # returns short/zero without touching the device
            return total
        if self.cache.file_fully_resident(inode.fileid, max(inode.size, 1)):
            span = min(req.span, max(inode.size - req.offset, 0))
            self.cache.touch_run(inode.fileid, self.cache.segments_of(req.offset, span))
            return total
        if req.is_dense:
            yield from self._cached_read(inode, req)
        else:
            # Sparse cold reads: page-granular device I/O per operation.
            nb = max(req.nbytes, spec.min_io_bytes)
            dev = inode.device_offset(min(req.offset, max(inode.size - 1, 0)))
            stride = req.effective_stride if req.stride != -1 else 7919 * spec.min_io_bytes
            self.cache.stats.misses += req.count
            yield self.array.submit("read", dev, nb, req.count, stride)
        return total

    def _cached_read(self, inode, req: IORequest):  # simlint: ignore[generator-serve]
        sb = self.cache.spec.segment_bytes
        span = min(req.span, max(inode.size - req.offset, 0))
        segs = list(self.cache.segments_of(req.offset, span))
        miss_run: list[int] = []
        for seg in segs:
            if self.cache.touch(inode.fileid, seg):
                if miss_run:
                    yield from self._fill(inode, miss_run)
                    miss_run = []
            else:
                miss_run.append(seg)
        if miss_run:
            # sequential tail: extend by the readahead window
            ra_extra = self.spec.readahead_bytes // sb
            last = miss_run[-1]
            file_last_seg = max((inode.size - 1) // sb, 0)
            for k in range(1, ra_extra + 1):
                if last + k <= file_last_seg:
                    miss_run.append(last + k)
            yield from self._fill(inode, miss_run)

    def _fill(self, inode, segs: list[int]):  # simlint: ignore[generator-serve]
        """Read missing segments from the device and make them resident."""
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, _d in PageCache.coalesce(
            (inode.fileid, s, 0) for s in segs
        ):
            off = first * sb
            length = min(nsegs * sb, max(inode.size - off, sb))
            self._ensure_allocation(inode, off + length)
            dev = inode.device_offset(off)
            yield self.array.submit("read", dev, length)
            s, end = first, first + nsegs
            while s < end:
                s += self.cache.insert_clean_run(fileid, s, end - s)
                if s >= end:
                    break
                victims = self.cache.insert(fileid, s, 0)
                s += 1
                if victims:
                    yield from self._flush_entries(victims)

    # -- write-back machinery ------------------------------------------------
    def _journal_offset(self) -> int:
        # fixed journal region at the tail of the device
        return max(self.array.capacity_bytes - 128 * MiB, 0)

    def _ensure_allocation(self, inode: Inode, upto: int) -> None:
        have = inode.allocated_bytes()
        if upto <= have:
            return
        need = upto - have
        ext = self.spec.extent_bytes
        length = ((need + ext - 1) // ext) * ext
        usable = max(self.array.capacity_bytes - 256 * MiB, length)
        start = self._alloc_cursor % usable
        self._alloc_cursor = start + length
        inode.extents.append((have, start, length))

    def _flush_entries(self, entries):  # simlint: ignore[generator-serve]
        """Write dirty cache entries to the device and mark them clean.

        Runs that are densely dirty flush as one sequential write;
        sparse runs flush as scattered page-sized writes.
        """
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, dirty in PageCache.coalesce(entries):
            inode = self._by_id.get(fileid)
            if inode is None:
                for s in range(first, first + nsegs):
                    self.cache.mark_clean(fileid, s)
                continue
            off = first * sb
            self._ensure_allocation(inode, off + nsegs * sb)
            dev = inode.device_offset(off)
            density = dirty / (nsegs * sb)
            if density >= self.spec.dense_flush_threshold:
                yield self.array.submit("write", dev, nsegs * sb, cached=False)
            else:
                nb = self.spec.min_io_bytes
                nops = max(dirty // nb, 1)
                scatter = max((nsegs * sb) // nops, nb)
                yield self.array.submit("write", dev, nb, nops, scatter, cached=False)
            for s in range(first, first + nsegs):
                self.cache.mark_clean(fileid, s)
            self.stats.flush_runs += 1

    def _kick_flusher(self) -> None:
        if not self._flusher_running:
            self._flusher_running = True
            if _kernel.FS_FAST:
                _LocalFlusher(self)
            else:
                self.env.process(self._flusher(), name=f"{self.name}.flusher")

    def _flusher(self):  # simlint: ignore[generator-serve]
        while self.cache.need_background_flush:
            batch = self.cache.dirty_segments(limit=self.FLUSH_BATCH_SEGS)
            if not batch:
                break
            yield from self._flush_entries(batch)
            waiters, self._flush_waiters = self._flush_waiters, []
            for w in waiters:
                w.succeed()
        self._flusher_running = False
        waiters, self._flush_waiters = self._flush_waiters, []
        for w in waiters:
            w.succeed()

    def _throttle(self):  # simlint: ignore[generator-serve]
        """Block the writer until the flusher drains below the dirty limit."""
        while self.cache.need_throttle:
            self._kick_flusher()
            ev = self.env.event()
            self._flush_waiters.append(ev)
            yield ev

    def _fsync(self, inode):  # simlint: ignore[generator-serve]
        yield self.env.timeout(self.spec.syscall_s)
        entries = self.cache.dirty_segments(limit=None, fileid=inode.fileid)
        yield from self._flush_entries(entries)
        yield self.array.submit(
            "write", self._journal_offset(), self.spec.journal_write_bytes
        )
        return None

    def _sync_all(self):  # simlint: ignore[generator-serve]
        entries = self.cache.dirty_segments(limit=None)
        yield from self._flush_entries(entries)
        yield self.array.flush()
        return None


# ----------------------------------------------------------------------
# flat service paths (REPRO_NO_FSFAST falls back to the generators)
# ----------------------------------------------------------------------
class _FlatFlush:
    """Flat counterpart of :meth:`LocalFS._flush_entries`.

    Sub-flows have no calendar footprint of their own (they replace a
    ``yield from``): they borrow the parent op's :meth:`FlatOp._await`
    and call ``k()`` when the flow completes.
    """

    __slots__ = ("fs", "op", "runs", "i", "k")

    def __init__(self, fs, op, entries, k):
        self.fs = fs
        self.op = op
        self.runs = list(PageCache.coalesce(entries))
        self.i = 0
        self.k = k
        self._next()

    def _next(self, _v=None):
        fs = self.fs
        sb = fs.cache.spec.segment_bytes
        runs = self.runs
        while self.i < len(runs):
            fileid, first, nsegs, dirty = runs[self.i]
            inode = fs._by_id.get(fileid)
            if inode is None:
                for s in range(first, first + nsegs):
                    fs.cache.mark_clean(fileid, s)
                self.i += 1
                continue
            off = first * sb
            fs._ensure_allocation(inode, off + nsegs * sb)
            dev = inode.device_offset(off)
            density = dirty / (nsegs * sb)
            if density >= fs.spec.dense_flush_threshold:
                ev = fs.array.submit("write", dev, nsegs * sb, cached=False)
            else:
                nb = fs.spec.min_io_bytes
                nops = max(dirty // nb, 1)
                scatter = max((nsegs * sb) // nops, nb)
                ev = fs.array.submit("write", dev, nb, nops, scatter, cached=False)
            self.op._await(ev, self._written)
            return
        self.k()

    def _written(self, _v):
        fs = self.fs
        fileid, first, nsegs, _d = self.runs[self.i]
        for s in range(first, first + nsegs):
            fs.cache.mark_clean(fileid, s)
        fs.stats.flush_runs += 1
        self.i += 1
        self._next()


class _FlatThrottle:
    """Flat counterpart of :meth:`LocalFS._throttle`."""

    __slots__ = ("fs", "op", "k")

    def __init__(self, fs, op, k):
        self.fs = fs
        self.op = op
        self.k = k
        self._check()

    def _check(self, _v=None):
        fs = self.fs
        if fs.cache.need_throttle:
            fs._kick_flusher()
            ev = Event(fs.env)
            fs._flush_waiters.append(ev)
            self.op._await(ev, self._check)
        else:
            self.k()


class _FlatFill:
    """Flat counterpart of :meth:`LocalFS._fill`."""

    __slots__ = ("fs", "op", "inode", "runs", "i", "s", "k")

    def __init__(self, fs, op, inode, segs, k):
        self.fs = fs
        self.op = op
        self.inode = inode
        self.runs = list(PageCache.coalesce((inode.fileid, s, 0) for s in segs))
        self.i = 0
        self.s = 0
        self.k = k
        self._next()

    def _next(self, _v=None):
        fs = self.fs
        sb = fs.cache.spec.segment_bytes
        if self.i >= len(self.runs):
            self.k()
            return
        _fileid, first, nsegs, _d = self.runs[self.i]
        inode = self.inode
        off = first * sb
        length = min(nsegs * sb, max(inode.size - off, sb))
        fs._ensure_allocation(inode, off + length)
        dev = inode.device_offset(off)
        self.s = first
        self.op._await(fs.array.submit("read", dev, length), self._insert_loop)

    def _insert_loop(self, _v=None):
        fs = self.fs
        fileid, first, nsegs, _d = self.runs[self.i]
        end = first + nsegs
        while self.s < end:
            self.s += fs.cache.insert_clean_run(fileid, self.s, end - self.s)
            if self.s >= end:
                break
            victims = fs.cache.insert(fileid, self.s, 0)
            self.s += 1
            if victims:
                _FlatFlush(fs, self.op, victims, self._insert_loop)
                return
        self.i += 1
        self._next()


class _LocalWrite(FlatOp):
    """Flat counterpart of :meth:`LocalFS._write`."""

    __slots__ = ("fs", "inode", "req", "total", "_plan", "_overflow", "_i", "_stage", "_victims")

    def __init__(self, fs, inode, req):
        self.fs = fs
        self.inode = inode
        self.req = req
        super().__init__(fs.env)

    def _start(self, event):
        fs = self.fs
        req = self.req
        total = self.total = req.total_bytes
        self._await(
            Timeout(self.env, req.count * fs.spec.syscall_s + fs.node.memcpy_time(total)),
            self._after_cpu,
        )

    def _after_cpu(self, _v):
        fs = self.fs
        req = self.req
        end = req.offset + req.span
        fs._ensure_allocation(self.inode, end)
        fs.stats.writes += req.count
        fs.stats.bytes_written += self.total
        self._plan, self._overflow = fs._dirty_plan(req)
        self._i = 0
        self._stage = 0
        self._victims = ()
        self._plan_step()

    def _plan_step(self, _v=None):
        fs = self.fs
        cache = fs.cache
        plan = self._plan
        fileid = self.inode.fileid
        write_back = cache.spec.write_back
        while self._i < len(plan):
            st = self._stage
            if st == 0 and write_back:
                # absorb the throttle-free, flush-free prefix in one call
                self._i += cache.insert_dirty_run(fileid, plan, self._i)
                if self._i >= len(plan):
                    break
            seg, dirty = plan[self._i]
            if st == 0:
                if cache.need_throttle:
                    self._stage = 1
                    _FlatThrottle(fs, self, self._plan_step)
                    return
                st = 1
            if st == 1:
                self._victims = cache.insert(
                    fileid, seg, dirty if cache.spec.write_back else 0
                )
                if not cache.spec.write_back:
                    self._stage = 2
                    _FlatFlush(fs, self, [(fileid, seg, dirty)], self._plan_step)
                    return
                st = 2
            if st == 2:
                victims = self._victims
                if victims:
                    self._victims = ()
                    self._stage = 3
                    _FlatFlush(fs, self, victims, self._plan_step)
                    return
            self._i += 1
            self._stage = 0
        self._after_plan()

    def _after_plan(self):
        fs = self.fs
        if self._overflow:
            req = self.req
            nb = max(req.nbytes, fs.spec.min_io_bytes)
            dev = self.inode.device_offset(0)
            self._await(
                fs.array.submit(
                    "write", dev, nb, max(self._overflow // nb, 1), 7919 * nb, cached=False
                ),
                self._after_overflow,
            )
            return
        self._after_overflow(None)

    def _after_overflow(self, _v):
        fs = self.fs
        if fs.cache.need_background_flush:
            fs._kick_flusher()
        inode = self.inode
        req = self.req
        inode.size = max(inode.size, req.offset + req.span)
        self._finish(self.total)


class _LocalRead(FlatOp):
    """Flat counterpart of :meth:`LocalFS._read` (incl. ``_cached_read``)."""

    __slots__ = ("fs", "inode", "req", "total", "_segs", "_si", "_miss")

    def __init__(self, fs, inode, req):
        self.fs = fs
        self.inode = inode
        self.req = req
        super().__init__(fs.env)

    def _start(self, event):
        fs = self.fs
        req = self.req
        total = self.total = req.total_bytes
        self._await(
            Timeout(self.env, req.count * fs.spec.syscall_s + fs.node.memcpy_time(total)),
            self._after_cpu,
        )

    def _after_cpu(self, _v):
        fs = self.fs
        req = self.req
        inode = self.inode
        spec = fs.spec
        fs.stats.reads += req.count
        fs.stats.bytes_read += self.total

        if req.offset >= inode.size:
            # read at/past EOF: POSIX short/zero read, no device work
            self._finish(self.total)
            return
        if fs.cache.file_fully_resident(inode.fileid, max(inode.size, 1)):
            span = min(req.span, max(inode.size - req.offset, 0))
            fs.cache.touch_run(inode.fileid, fs.cache.segments_of(req.offset, span))
            self._finish(self.total)
            return
        if req.is_dense:
            span = min(req.span, max(inode.size - req.offset, 0))
            self._segs = list(fs.cache.segments_of(req.offset, span))
            self._si = 0
            self._miss = []
            self._scan()
            return
        nb = max(req.nbytes, spec.min_io_bytes)
        dev = inode.device_offset(min(req.offset, max(inode.size - 1, 0)))
        stride = req.effective_stride if req.stride != -1 else 7919 * spec.min_io_bytes
        fs.cache.stats.misses += req.count
        self._await(fs.array.submit("read", dev, nb, req.count, stride), self._sparse_done)

    def _sparse_done(self, _v):
        self._finish(self.total)

    def _scan(self, _v=None):
        fs = self.fs
        inode = self.inode
        segs = self._segs
        while self._si < len(segs):
            seg = segs[self._si]
            self._si += 1
            if fs.cache.touch(inode.fileid, seg):
                if self._miss:
                    miss, self._miss = self._miss, []
                    _FlatFill(fs, self, inode, miss, self._scan)
                    return
            else:
                self._miss.append(seg)
        miss = self._miss
        if miss:
            sb = fs.cache.spec.segment_bytes
            ra_extra = fs.spec.readahead_bytes // sb
            last = miss[-1]
            file_last_seg = max((inode.size - 1) // sb, 0)
            for k in range(1, ra_extra + 1):
                if last + k <= file_last_seg:
                    miss.append(last + k)
            self._miss = []
            _FlatFill(fs, self, inode, miss, self._fills_done)
            return
        self._finish(self.total)

    def _fills_done(self, _v=None):
        self._finish(self.total)


class _LocalFlusher(FlatOp):
    """Flat counterpart of the background :meth:`LocalFS._flusher`."""

    __slots__ = ("fs",)

    def __init__(self, fs):
        self.fs = fs
        super().__init__(fs.env)

    def _start(self, event):
        self._loop()

    def _loop(self, _v=None):
        fs = self.fs
        while fs.cache.need_background_flush:
            batch = fs.cache.dirty_segments(limit=fs.FLUSH_BATCH_SEGS)
            if not batch:
                break
            _FlatFlush(fs, self, batch, self._batch_done)
            return
        fs._flusher_running = False
        waiters, fs._flush_waiters = fs._flush_waiters, []
        for w in waiters:
            w.succeed()
        self._finish(None)

    def _batch_done(self, _v=None):
        fs = self.fs
        waiters, fs._flush_waiters = fs._flush_waiters, []
        for w in waiters:
            w.succeed()
        self._loop()


class _LocalFsync(FlatOp):
    """Flat counterpart of :meth:`LocalFS._fsync`."""

    __slots__ = ("fs", "inode")

    def __init__(self, fs, inode):
        self.fs = fs
        self.inode = inode
        super().__init__(fs.env)

    def _start(self, event):
        self._await(Timeout(self.env, self.fs.spec.syscall_s), self._after_cpu)

    def _after_cpu(self, _v):
        fs = self.fs
        entries = fs.cache.dirty_segments(limit=None, fileid=self.inode.fileid)
        _FlatFlush(fs, self, entries, self._flushed)

    def _flushed(self, _v=None):
        fs = self.fs
        self._await(
            fs.array.submit("write", fs._journal_offset(), fs.spec.journal_write_bytes),
            self._journaled,
        )

    def _journaled(self, _v):
        self._finish(None)


class _LocalCreate(FlatOp):
    """Flat counterpart of :meth:`LocalFS._create`."""

    __slots__ = ("fs", "path")

    def __init__(self, fs, path):
        self.fs = fs
        self.path = path
        super().__init__(fs.env)

    def _start(self, event):
        self._await(Timeout(self.env, self.fs.spec.create_s), self._after_cpu)

    def _after_cpu(self, _v):
        fs = self.fs
        self._await(
            fs.array.submit("write", fs._journal_offset(), fs.spec.journal_write_bytes),
            self._journaled,
        )

    def _journaled(self, _v):
        fs = self.fs
        inode = fs._inodes.get(self.path)
        if inode is None:
            inode = Inode(fs._next_fileid, self.path)
            fs._next_fileid += 1
            fs._inodes[self.path] = inode
            fs._by_id[inode.fileid] = inode
        else:
            inode.size = 0
            fs.cache.drop_file(inode.fileid)
        fs.stats.creates += 1
        self._finish(inode)


class _LocalOpen(FlatOp):
    """Flat counterpart of the one-yield open op."""

    __slots__ = ("fs", "inode")

    def __init__(self, fs, inode):
        self.fs = fs
        self.inode = inode
        super().__init__(fs.env)

    def _start(self, event):
        self._await(Timeout(self.env, self.fs.spec.open_s), self._opened)

    def _opened(self, _v):
        self.fs.stats.opens += 1
        self._finish(self.inode)


class _LocalUnlink(FlatOp):
    """Flat counterpart of the unlink op."""

    __slots__ = ("fs", "path", "inode")

    def __init__(self, fs, path, inode):
        self.fs = fs
        self.path = path
        self.inode = inode
        super().__init__(fs.env)

    def _start(self, event):
        self._await(Timeout(self.env, self.fs.spec.unlink_s), self._after_cpu)

    def _after_cpu(self, _v):
        fs = self.fs
        self._await(
            fs.array.submit("write", fs._journal_offset(), fs.spec.journal_write_bytes),
            self._journaled,
        )

    def _journaled(self, _v):
        fs = self.fs
        fs.cache.drop_file(self.inode.fileid)
        del fs._inodes[self.path]
        del fs._by_id[self.inode.fileid]
        self._finish(None)


class _LocalSerializedWrite(FlatOp):
    """Flat counterpart of :meth:`LocalFS.submit_serialized_write`."""

    __slots__ = ("fs", "inode", "req", "per_op_s", "_lock", "_grant")

    def __init__(self, fs, inode, req, per_op_s):
        self.fs = fs
        self.inode = inode
        self.req = req
        self.per_op_s = per_op_s
        self._lock = None
        self._grant = None
        super().__init__(fs.env)

    def _start(self, event):
        lock = self._lock = self.fs._ilock(self.inode)
        grant = self._grant = lock.request()  # simlint: ignore[resource-release]
        self._await(grant, self._locked)

    def _locked(self, _v):
        self._await(Timeout(self.env, self.req.count * self.per_op_s), self._after_cpu)

    def _after_cpu(self, _v):
        self._await(self.fs.submit(self.inode, self.req), self._written)

    def _written(self, _v):
        self._release()
        self._finish(self.req.total_bytes)

    def _release(self):
        grant = self._grant
        if grant is not None and grant in self._lock.users:
            self._lock.release(grant)

    def _cleanup(self):
        # the generator's ``finally``
        self._release()
