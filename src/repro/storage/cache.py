"""OS page-cache model.

Tracks residency and dirtiness of file data at *segment* granularity
(default 1 MiB) with LRU replacement.  Each resident segment carries a
count of **dirty bytes**, so the flush cost of a sparsely-dirtied
segment (a few 4 KiB pages scattered in it) differs from a fully
dirty one — sparse write streams therefore throttle at the device's
random-write rate while dense streams throttle at its sequential
rate, with no workload-specific special cases.

The cache itself is pure bookkeeping — it advances no simulated time;
the owning filesystem charges memcpy costs and performs the
write-back I/O for the dirty victims that eviction hands back.

"State and placement of buffer/cache" is one of the paper's
configurable factors: the same class serves as the local filesystem's
page cache, the NFS client cache and the NFS server cache, sized by
each node's RAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .base import MiB

__all__ = ["CacheSpec", "PageCache", "CacheStats"]


@dataclass(frozen=True)
class CacheSpec:
    """Sizing and write-back policy of a page cache."""

    capacity_bytes: int
    segment_bytes: int = 1 * MiB
    #: writers are throttled while dirty bytes exceed this fraction
    dirty_ratio: float = 0.40
    #: background write-back starts above this fraction
    background_ratio: float = 0.10
    write_back: bool = True

    def __post_init__(self):
        if self.capacity_bytes <= 0 or self.segment_bytes <= 0:
            raise ValueError("capacity and segment size must be positive")
        if not 0.0 < self.background_ratio <= self.dirty_ratio <= 1.0:
            raise ValueError("need 0 < background_ratio <= dirty_ratio <= 1")

    @property
    def nsegments(self) -> int:
        return max(1, self.capacity_bytes // self.segment_bytes)

    @property
    def dirty_limit_bytes(self) -> int:
        return int(self.capacity_bytes * self.dirty_ratio)

    @property
    def background_limit_bytes(self) -> int:
        return int(self.capacity_bytes * self.background_ratio)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU segment cache over (file-id, segment-number) keys."""

    def __init__(self, spec: CacheSpec, name: str = "pagecache"):
        self.spec = spec
        self.name = name
        # key -> dirty byte count (0 == clean); order == recency (last = MRU)
        self._segs: dict[tuple[int, int], int] = {}
        # dirty keys only, in the same relative order they hold in _segs,
        # so the flusher's oldest-first walk never scans clean entries
        self._dirty: dict[tuple[int, int], int] = {}
        self._dirty_total = 0
        self._file_resident: dict[int, int] = {}  # fileid -> resident seg count
        self._sb = spec.segment_bytes
        self._nsegments = spec.nsegments
        self.stats = CacheStats()

    # -- geometry helpers -------------------------------------------------
    def segments_of(self, offset: int, nbytes: int) -> range:
        """Segment numbers covering the byte range."""
        sb = self.spec.segment_bytes
        if nbytes <= 0:
            return range(0)
        return range(offset // sb, (offset + nbytes - 1) // sb + 1)

    # -- state queries -----------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return len(self._segs) * self.spec.segment_bytes

    @property
    def dirty_bytes(self) -> int:
        return self._dirty_total

    @property
    def need_throttle(self) -> bool:
        return self._dirty_total > self.spec.dirty_limit_bytes

    @property
    def need_background_flush(self) -> bool:
        return self._dirty_total > self.spec.background_limit_bytes

    def is_resident(self, fileid: int, seg: int) -> bool:
        return (fileid, seg) in self._segs

    def dirty_amount(self, fileid: int, seg: int) -> int:
        return self._segs.get((fileid, seg), 0)

    def file_resident_segments(self, fileid: int) -> int:
        return self._file_resident.get(fileid, 0)

    def file_fully_resident(self, fileid: int, file_bytes: int) -> bool:
        """True when every segment of the file is cached."""
        sb = self.spec.segment_bytes
        nsegs = (file_bytes + sb - 1) // sb
        return nsegs > 0 and self.file_resident_segments(fileid) >= nsegs

    # -- mutation -----------------------------------------------------------
    def touch(self, fileid: int, seg: int) -> bool:
        """Record an access; returns True on hit (and refreshes LRU)."""
        key = (fileid, seg)
        segs = self._segs
        if key in segs:
            val = segs.pop(key)
            segs[key] = val
            if val:
                dirty = self._dirty
                dirty[key] = dirty.pop(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(
        self, fileid: int, seg: int, dirty_bytes: int = 0
    ) -> list[tuple[int, int, int]]:
        """Make a segment resident with ``dirty_bytes`` newly dirty.

        Returns evicted dirty victims as ``(fileid, seg, dirty_bytes)``
        tuples; the caller must write those back to the backing store
        (and charge the time for it).  Clean victims vanish silently.
        """
        sb = self._sb
        if dirty_bytes > sb:
            dirty_bytes = sb
        key = (fileid, seg)
        segs = self._segs
        victims: list[tuple[int, int, int]] = []
        if key in segs:
            old = segs.pop(key)
            new = old + dirty_bytes
            if new > sb:
                new = sb
            segs[key] = new
            self._dirty_total += new - old
            if new:
                dirty = self._dirty
                dirty.pop(key, None)
                dirty[key] = new
            return victims
        while len(segs) >= self._nsegments:
            vkey = next(iter(segs))
            vdirty = segs.pop(vkey)
            self._file_resident[vkey[0]] -= 1
            self.stats.evictions += 1
            if vdirty:
                self._dirty_total -= vdirty
                self.stats.dirty_evictions += 1
                del self._dirty[vkey]
                victims.append((vkey[0], vkey[1], vdirty))
        segs[key] = dirty_bytes
        if dirty_bytes:
            self._dirty[key] = dirty_bytes
            self._dirty_total += dirty_bytes
        self._file_resident[fileid] = self._file_resident.get(fileid, 0) + 1
        return victims

    def touch_run(self, fileid: int, seg_range: Iterable[int]) -> None:
        """Record a run of accesses; equivalent to :meth:`touch` per
        segment (LRU refresh, statistics) without a method call each."""
        segs = self._segs
        dirty = self._dirty
        stats = self.stats
        for s in seg_range:
            key = (fileid, s)
            old = segs.pop(key, None)
            if old is None:
                stats.misses += 1
                continue
            segs[key] = old
            if old:
                dirty[key] = dirty.pop(key)
            stats.hits += 1

    def insert_clean_run(self, fileid: int, first: int, nsegs: int) -> int:
        """Batch-insert a clean run, stopping before the first segment
        whose insertion would evict a *dirty* victim.

        Equivalent to ``insert(fileid, s, 0)`` for each absorbed
        segment — same LRU order, same (clean) eviction order, same
        statistics.  Returns how many leading segments were absorbed;
        the caller handles the next one with per-segment :meth:`insert`
        so its dirty victims flush at the right simulated time.
        """
        segs = self._segs
        dirty = self._dirty
        nmax = self._nsegments
        file_resident = self._file_resident
        stats = self.stats
        done = 0
        for s in range(first, first + nsegs):
            key = (fileid, s)
            old = segs.pop(key, None)
            if old is not None:
                segs[key] = old
                if old:
                    dirty[key] = dirty.pop(key)
                done += 1
                continue
            while len(segs) >= nmax:
                vkey = next(iter(segs))
                if segs[vkey]:
                    return done  # dirty victim: leave it to insert()
                del segs[vkey]
                file_resident[vkey[0]] -= 1
                stats.evictions += 1
            segs[key] = 0
            file_resident[fileid] = file_resident.get(fileid, 0) + 1
            done += 1
        return done

    def insert_dirty_run(
        self, fileid: int, entries, start: int = 0
    ) -> int:
        """Absorb consecutive ``(seg, dirty_bytes)`` write-plan entries,
        stopping before the first that needs the writer throttled or
        would evict a dirty victim.

        Equivalent to the per-entry ``need_throttle`` check plus
        :meth:`insert` for each absorbed entry; returns how many were
        absorbed from ``entries[start:]``.  The caller resumes its
        per-segment throttle/insert/flush machinery at the entry where
        the batch stopped.
        """
        segs = self._segs
        dirty = self._dirty
        sb = self._sb
        nmax = self._nsegments
        limit = self.spec.dirty_limit_bytes
        file_resident = self._file_resident
        stats = self.stats
        done = 0
        for i in range(start, len(entries)):
            if self._dirty_total > limit:
                break
            seg, dbytes = entries[i]
            if dbytes > sb:
                dbytes = sb
            key = (fileid, seg)
            old = segs.pop(key, None)
            if old is not None:
                new = old + dbytes
                if new > sb:
                    new = sb
                segs[key] = new
                self._dirty_total += new - old
                if new:
                    dirty.pop(key, None)
                    dirty[key] = new
                done += 1
                continue
            blocked = False
            while len(segs) >= nmax:
                vkey = next(iter(segs))
                if segs[vkey]:
                    blocked = True  # dirty victim: leave it to insert()
                    break
                del segs[vkey]
                file_resident[vkey[0]] -= 1
                stats.evictions += 1
            if blocked:
                break
            segs[key] = dbytes
            if dbytes:
                dirty[key] = dbytes
                self._dirty_total += dbytes
            file_resident[fileid] = file_resident.get(fileid, 0) + 1
            done += 1
        return done

    def touch_or_insert_clean(self, fileid: int, seg_range: Iterable[int]) -> None:
        """Serve-path access walk: touch each segment, making misses
        resident clean and silently dropping any dirty victims (the
        caller accounts their write-back analytically).

        Equivalent to ``touch(fileid, s) or insert(fileid, s, 0)`` per
        segment — including LRU order, eviction order and statistics —
        without two method calls and a victims list per segment.
        """
        segs = self._segs
        dirty = self._dirty
        stats = self.stats
        nmax = self._nsegments
        file_resident = self._file_resident
        for s in seg_range:
            key = (fileid, s)
            old = segs.pop(key, None)
            if old is not None:
                segs[key] = old
                if old:
                    dirty[key] = dirty.pop(key)
                stats.hits += 1
                continue
            stats.misses += 1
            while len(segs) >= nmax:
                vkey = next(iter(segs))
                vdirty = segs.pop(vkey)
                file_resident[vkey[0]] -= 1
                stats.evictions += 1
                if vdirty:
                    self._dirty_total -= vdirty
                    stats.dirty_evictions += 1
                    del dirty[vkey]
            segs[key] = 0
            file_resident[fileid] = file_resident.get(fileid, 0) + 1

    def mark_clean(self, fileid: int, seg: int) -> None:
        key = (fileid, seg)
        amount = self._segs.get(key, 0)
        if amount:
            self._segs[key] = 0
            self._dirty_total -= amount
            del self._dirty[key]

    def dirty_segments(
        self, limit: int | None = None, fileid: int | None = None
    ) -> list[tuple[int, int, int]]:
        """Oldest-first dirty entries ``(fileid, seg, dirty_bytes)``."""
        out = []
        for (f, s), dirty in self._dirty.items():
            if fileid is None or f == fileid:
                out.append((f, s, dirty))
                if limit is not None and len(out) >= limit:
                    break
        return out

    def reset(self) -> None:
        """Empty the cache and zero the statistics (warm reuse)."""
        self._segs.clear()
        self._dirty.clear()
        self._dirty_total = 0
        self._file_resident.clear()
        self.stats = CacheStats()

    def drop_file(self, fileid: int) -> int:
        """Invalidate every segment of a file (unlink); returns count dropped."""
        keys = [k for k in self._segs if k[0] == fileid]
        for k in keys:
            self._dirty_total -= self._segs.pop(k)
            self._dirty.pop(k, None)
        if fileid in self._file_resident:
            self._file_resident[fileid] = 0
        return len(keys)

    @staticmethod
    def coalesce(
        entries: Iterable[tuple[int, int, int]]
    ) -> Iterator[tuple[int, int, int, int]]:
        """Group ``(fileid, seg, dirty)`` into runs.

        Yields ``(fileid, first_seg, nsegs, dirty_bytes_in_run)``;
        adjacent segments of the same file merge so write-back can issue
        large contiguous device writes when the run is densely dirty.
        """
        run_file = run_start = run_len = run_dirty = None
        for fileid, seg, dirty in sorted(entries):
            if run_file == fileid and seg == run_start + run_len:
                run_len += 1
                run_dirty += dirty
            else:
                if run_file is not None:
                    yield (run_file, run_start, run_len, run_dirty)
                run_file, run_start, run_len, run_dirty = fileid, seg, 1, dirty
        if run_file is not None:
            yield (run_file, run_start, run_len, run_dirty)
