"""Storage stack: page cache, local filesystem, NFS, VFS."""

from .base import AccessMode, AccessType, IORequest, classify_mode, KiB, MiB, GiB
from .cache import CacheSpec, CacheStats, PageCache
from .localfs import Inode, LocalFS, LocalFSSpec
from .nfs import NFSMount, NFSServer, NFSSpec
from .vfs import FileHandle, VFS

__all__ = [
    "AccessMode",
    "AccessType",
    "IORequest",
    "classify_mode",
    "KiB",
    "MiB",
    "GiB",
    "CacheSpec",
    "CacheStats",
    "PageCache",
    "Inode",
    "LocalFS",
    "LocalFSSpec",
    "NFSMount",
    "NFSServer",
    "NFSSpec",
    "FileHandle",
    "VFS",
]
