"""Network filesystem (NFS-like) client/server model.

This is the "I/O node (global filesystem)" level of the paper's I/O
path: on both of the paper's clusters a front-end node exports a
RAID-backed ext4 filesystem over NFS to all compute nodes.

The model captures the pieces that determine the paper's NFS-level
numbers:

* every operation is an **RPC** over the data network — a request
  message, a server-side service (thread pool + the server's own
  :class:`~repro.storage.localfs.LocalFS`, with *its* page cache and
  RAID write-back behind it) and a reply message;
* bulk data moves in ``rsize``/``wsize`` chunks with a bounded slot
  table, so large transfers pipeline and approach wire speed while
  small strided operations pay per-RPC latency — the contrast behind
  BT-IO *full* vs *simple*;
* the **client-side page cache** absorbs dense writes (write-back,
  flushed on close/fsync with a COMMIT) and caches read data, so a
  re-read of a file smaller than client RAM never touches the wire
  (the paper's >100% used-percentage readings);
* many clients contend on the server's network link, thread pool,
  page cache and disks — the emergent many-to-one bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simengine import Environment, Event, FlatOp, Resource, Timeout, Wake
from ..simengine import resources as _kernel
from ..hardware.network import Network
from ..hardware.node import Node
from .base import IORequest, KiB, MiB
from .cache import CacheSpec, PageCache
from .localfs import Inode, LocalFS

__all__ = ["NFSSpec", "NFSServer", "NFSMount"]


@dataclass(frozen=True)
class NFSSpec:
    """Protocol and mount parameters."""

    rsize: int = 256 * KiB
    wsize: int = 256 * KiB
    rpc_header_bytes: int = 160
    #: concurrent in-flight RPCs per mount (Linux slot table)
    slot_table: int = 16
    server_threads: int = 8
    server_rpc_cpu_s: float = 18e-6  # per-RPC service CPU
    client_rpc_cpu_s: float = 9e-6
    getattr_s: float = 30e-6
    #: server-side VFS/ext4 service per small synchronous write — these
    #: serialise on the file's inode mutex (drives BT-IO "simple")
    server_small_op_s: float = 120e-6
    #: COMMIT flushes the server file durably (async exports skip it)
    commit_durable: bool = True
    #: fraction of client RAM used for the NFS data cache
    client_cache_fraction: float = 0.5
    #: RPC timeout before the first retransmission (mount option
    #: ``timeo``, here in seconds; Linux default 600 deciseconds over
    #: TCP — shortened to the UDP-era default so stalls are visible at
    #: simulated-run scale)
    timeo_s: float = 1.1
    #: retransmissions before a *major timeout* ("server not
    #: responding"); hard mounts then start over, so a stalled server
    #: slows clients down but never hangs them
    retrans: int = 3


@dataclass
class NFSStats:
    rpcs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    commits: int = 0
    #: RPC requests re-sent after a timeout (stalled/unresponsive server)
    retransmits: int = 0
    #: exhausted retrans cycles ("nfs: server ... not responding")
    major_timeouts: int = 0


class NFSServer:
    """The I/O node: exports one :class:`LocalFS` over a network."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        export: LocalFS,
        network: Network,
        spec: NFSSpec | None = None,
        name: str = "nfsd",
    ):
        self.env = env
        self.node = node
        self.export = export
        self.network = network
        self.spec = spec or NFSSpec()
        self.name = name
        self.threads = Resource(env, capacity=self.spec.server_threads, name=f"{name}.threads")
        self.stats = NFSStats()
        #: absolute simulated time until which the server is stalled
        #: (fault injection; see :meth:`stall`)
        self.stall_until = 0.0

    def stall(self, duration_s: float) -> None:
        """Wedge the server for ``duration_s`` seconds from now.

        Models an I/O-node brown-out (reboot, thrashing, hung export):
        granted nfsd threads sit on the wedged backend, the thread pool
        backs up, and clients retransmit until service resumes.
        """
        self.stall_until = max(self.stall_until, self.env.now + duration_s)

    @property
    def stalled(self) -> bool:
        return self.env.now < self.stall_until

    def service_op(self, work_event_factory, rpc_count: int = 1) -> Event:
        """Thread-pool service as an event (see :meth:`service`)."""
        if _kernel.FS_FAST:
            return _ServerService(self, work_event_factory, rpc_count).result
        return self.env.process(self.service(work_event_factory, rpc_count))

    def service(self, work_event_factory, rpc_count: int = 1):  # simlint: ignore[generator-serve]
        """Hold a server thread while performing backend work.

        ``work_event_factory`` is a zero-argument callable returning the
        backend event (e.g. a LocalFS submit) — created *after* the
        thread is granted, as real nfsd threads do.  Returns the backend
        event's value.
        """
        result = None
        req = self.threads.request()
        yield req
        try:
            if self.env.now < self.stall_until:
                # stalled: the granted thread sits on the wedged
                # backend until service resumes
                yield self.env.wake_at(self.stall_until)
            yield self.env.timeout(self.spec.server_rpc_cpu_s * rpc_count)
            ev = work_event_factory()
            if ev is not None:
                result = yield ev
        finally:
            if req in self.threads.users:
                self.threads.release(req)
        self.stats.rpcs += rpc_count
        return result

    def reset(self) -> None:
        """Forget thread-pool, stall and statistics state (warm reuse)."""
        self.threads.reset()
        self.stats = NFSStats()
        self.stall_until = 0.0


class NFSMount:
    """A client mount of an :class:`NFSServer` export on one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        server: NFSServer,
        spec: NFSSpec | None = None,
        cache_spec: CacheSpec | None = None,
        name: str = "",
    ):
        self.env = env
        self.node = node
        self.server = server
        self.spec = spec or server.spec
        if cache_spec is None:
            cache_spec = CacheSpec(
                capacity_bytes=int(node.spec.ram_bytes * self.spec.client_cache_fraction)
            )
        self.cache = PageCache(cache_spec, name=f"{name or node.name}.nfscache")
        self.name = name or f"nfs@{node.name}"
        self.stats = NFSStats()
        self.network = server.network

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, path: str) -> Event:
        return self._meta_op(lambda: self.server.export.create(path))

    def open(self, path: str, create: bool = False) -> Event:
        if create and not self.server.export.exists(path):
            return self.create(path)
        return self._meta_op(lambda: self.server.export.open(path))

    def close(self, inode: Inode) -> Event:
        """Close-to-open consistency: flush dirty data, then COMMIT."""
        if _kernel.FS_FAST:
            return _FlatCommit(self, inode, close=True).result
        return self.env.process(self._close(inode), name=f"{self.name}.close")

    def unlink(self, path: str) -> Event:
        def _inval():
            if self.server.export.exists(path):
                self.cache.drop_file(self.server.export.stat(path).fileid)
            return self.server.export.unlink(path)

        return self._meta_op(_inval)

    def _meta_op(self, backend_factory) -> Event:
        if _kernel.FS_FAST:
            return _FlatMetaRpc(self, backend_factory).result
        return self.env.process(self._meta_rpc(backend_factory))

    def stat(self, path: str) -> Inode:
        return self.server.export.stat(path)

    def exists(self, path: str) -> bool:
        return self.server.export.exists(path)

    def fsync(self, inode: Inode) -> Event:
        if _kernel.FS_FAST:
            return _FlatCommit(self, inode, close=False).result
        return self.env.process(self._commit(inode), name=f"{self.name}.fsync")

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def submit(self, inode: Inode, req: IORequest) -> Event:
        if _kernel.FS_FAST:
            if req.op == "write":
                return _NFSWrite(self, inode, req).result
            return _NFSRead(self, inode, req).result
        if req.op == "write":
            return self.env.process(self._write(inode, req), name=f"{self.name}.write")
        return self.env.process(self._read(inode, req), name=f"{self.name}.read")

    def submit_direct(self, inode: Inode, req: IORequest) -> Event:
        """Uncached, synchronous access — how MPI-IO (ROMIO) drives NFS.

        ROMIO disables NFS client caching to get shared-file
        consistency, so every operation is a wire round trip:

        * dense requests still pipeline their ``rsize``/``wsize`` chunks
          inside one call (the data of a single large MPI write fills
          the slot table);
        * sparse requests serialise — each small strided operation pays
          a full RTT plus server service before the next can start,
          which is the behaviour behind the paper's NAS BT-IO *simple*
          results.
        """
        if _kernel.FS_FAST:
            return _FlatDirect(self, inode, req).result
        return self.env.process(self._direct(inode, req), name=f"{self.name}.direct")

    def absorb(self, inode: Inode, req: IORequest) -> int:
        """Apply a direct request's state side effects analytically.

        The MPI-IO path is uncached on the client, so the state that
        matters lives server-side: delegate to the export's
        :meth:`~repro.storage.localfs.LocalFS.absorb` (file growth,
        allocation, server cache residency) and account the wire bytes.
        Advances no simulated time.
        """
        total = self.server.export.absorb(inode, req)
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, total)
        if req.op == "write":
            self.stats.bytes_sent += total
        else:
            self.stats.bytes_received += total
        return total

    def state_token(self, inode: Inode, req: IORequest) -> tuple:
        """Cache-regime fingerprint for the replay phase key.

        The MPI-IO direct path bypasses the client cache, so the state
        that governs a request's service time is the server export's
        — delegate to it (see
        :meth:`~repro.storage.localfs.LocalFS.state_token`).
        """
        return self.server.export.state_token(inode, req)

    def reset(self) -> None:
        """Drop client-cache and statistics state (warm reuse)."""
        self.cache.reset()
        self.stats = NFSStats()

    def _direct(self, inode: Inode, req: IORequest):  # simlint: ignore[generator-serve]
        spec = self.spec
        total = req.total_bytes
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, total)
        yield self.env.timeout(
            req.count * spec.client_rpc_cpu_s + self.node.memcpy_time(total)
        )
        if req.op == "write":
            self.stats.bytes_sent += total
        else:
            self.stats.bytes_received += total

        if req.is_dense:
            chunk = spec.wsize if req.op == "write" else spec.rsize
            nrpc = max((total + chunk - 1) // chunk, 1)

            def server_window(w, idx):
                sub = IORequest(req.op, req.offset + idx * chunk, chunk, count=w)
                return self.server.export.submit(inode, sub)

            if req.op == "write":
                yield from self._stream(nrpc, chunk, 8, server_window)
                inode.size = max(inode.size, req.offset + req.span)
            else:
                yield from self._stream(nrpc, 8, chunk, server_window)
            return total

        # Sparse: strictly synchronous per-operation round trips.  With
        # no pipelining the total is the sum of the per-stage times, so
        # each stage is charged once in bulk.
        yield self.env.timeout(req.count * 2 * self.network.spec.latency_s)
        send_payload = req.nbytes if req.op == "write" else 8
        reply_payload = 8 if req.op == "write" else req.nbytes
        yield self.network.transfer(
            self.node.name,
            self.server.node.name,
            send_payload + spec.rpc_header_bytes,
            count=req.count,
        )
        if self.server.stalled:
            yield from self._retransmit_while_stalled(send_payload, req.count)
        if req.op == "write":
            backend = lambda: self.server.export.submit_serialized_write(
                inode, req, self.spec.server_small_op_s
            )
        else:
            backend = lambda: self.server.export.submit(inode, req)
        yield self.env.process(self.server.service(backend, rpc_count=req.count))
        yield self.network.transfer(
            self.server.node.name,
            self.node.name,
            reply_payload + spec.rpc_header_bytes,
            count=req.count,
        )
        self.stats.rpcs += req.count
        if req.op == "write":
            inode.size = max(inode.size, req.offset + req.span)
        return total

    # -- RPC plumbing -------------------------------------------------------
    def _retransmit_while_stalled(self, payload_bytes: int, count: int = 1):  # simlint: ignore[generator-serve]
        """Client-side RPC timeout handling against a stalled server.

        Called after a request hit the wire while the server is wedged
        (``server.stall_until``): wait ``timeo``, re-send the request
        bytes, back off exponentially; after ``retrans`` unanswered
        re-sends log a *major timeout* and start over (hard-mount
        semantics — bounded slowdown, never a hang).  The loop never
        sleeps past the stall window, so the reply path resumes as soon
        as the server does.

        Jitter (±10% of each backoff step) comes from the seeded
        ``env.rng`` streams installed by the fault injector; with no
        registry installed the backoff is exact — either way the run
        is deterministic for a fixed seed.
        """
        spec = self.spec
        stall_end = self.server.stall_until
        delay = spec.timeo_s
        attempt = 0
        rng = self.env.rng
        while self.env.now + delay < stall_end:
            yield self.env.timeout(delay)
            wire = (payload_bytes + spec.rpc_header_bytes) * count
            yield self.network.transfer(
                self.node.name,
                self.server.node.name,
                payload_bytes + spec.rpc_header_bytes,
                count=count,
            )
            self.stats.retransmits += count
            san = self.env.sanitizer
            if san is not None:
                san.note_retransmit(wire)
            attempt += 1
            if attempt >= spec.retrans:
                self.stats.major_timeouts += 1
                attempt = 0
                delay = spec.timeo_s
            else:
                delay *= 2.0
            if rng is not None:
                jitter = rng.stream(f"nfs.retrans.{self.name}").random()
                delay *= 0.9 + 0.2 * float(jitter)

    def _meta_rpc(self, backend_factory):  # simlint: ignore[generator-serve]
        yield self.env.timeout(self.spec.getattr_s + self.spec.client_rpc_cpu_s)
        yield self.network.transfer(
            self.node.name, self.server.node.name, self.spec.rpc_header_bytes
        )
        if self.server.stalled:
            yield from self._retransmit_while_stalled(0)
        result = yield self.env.process(self.server.service(backend_factory))
        yield self.network.transfer(
            self.server.node.name, self.node.name, self.spec.rpc_header_bytes
        )
        self.stats.rpcs += 1
        return result

    def _stream(self, count, send_bytes_per_rpc, reply_bytes_per_rpc, server_window_factory):  # simlint: ignore[generator-serve]
        """Pipelined RPC stream: windows of RPCs move over the network
        while the server digests earlier windows; fires when all replies
        are in."""
        window = max(self.spec.slot_table, count // 64)
        done: list[Event] = []
        sent = 0
        while sent < count:
            w = min(window, count - sent)
            yield self.network.transfer(
                self.node.name,
                self.server.node.name,
                send_bytes_per_rpc + self.spec.rpc_header_bytes,
                count=w,
            )
            if self.server.stalled:
                yield from self._retransmit_while_stalled(send_bytes_per_rpc, w)
            done.append(
                self.env.process(
                    self._server_window(w, sent, reply_bytes_per_rpc, server_window_factory)
                )
            )
            sent += w
        if done:
            yield self.env.all_of(done)
        self.stats.rpcs += count

    def _server_window(self, w, start_index, reply_bytes_per_rpc, server_window_factory):  # simlint: ignore[generator-serve]
        yield self.env.process(
            self.server.service(lambda: server_window_factory(w, start_index), rpc_count=w)
        )
        yield self.network.transfer(
            self.server.node.name,
            self.node.name,
            reply_bytes_per_rpc + self.spec.rpc_header_bytes,
            count=w,
        )

    # -- write ---------------------------------------------------------------
    def _write(self, inode: Inode, req: IORequest):  # simlint: ignore[generator-serve]
        spec = self.spec
        total = req.total_bytes
        yield self.env.timeout(
            req.count * spec.client_rpc_cpu_s + self.node.memcpy_time(total)
        )
        self.stats.bytes_sent += total

        sb = self.cache.spec.segment_bytes
        if req.is_dense:
            # Absorb into the client cache; write-back flushes in wsize
            # chunks.  Evicted dirty victims flush synchronously.
            end = req.offset + req.span
            plan = [
                (seg, min(end, (seg + 1) * sb) - max(req.offset, seg * sb))
                for seg in self.cache.segments_of(req.offset, req.span)
            ]
            i = 0
            while i < len(plan):
                # absorb the throttle-free, flush-free prefix in one call
                i += self.cache.insert_dirty_run(inode.fileid, plan, i)
                if i >= len(plan):
                    break
                seg, dirty = plan[i]
                if self.cache.need_throttle:
                    yield from self._flush_some(inode)
                victims = self.cache.insert(inode.fileid, seg, dirty)
                if victims:
                    yield from self._flush_victims(victims)
                i += 1
            inode_end = req.offset + req.span
            if inode_end > inode.size:
                inode.size = inode_end  # size pushed at next flush/commit
            return total
        # Sparse stream: one WRITE RPC per operation, pipelined.
        stride = req.effective_stride if req.stride != -1 else 7919 * 4096

        def server_window(w, idx):
            sub = IORequest(
                "write", req.offset + idx * stride, req.nbytes, count=w, stride=req.stride
            )
            return self.server.export.submit(inode, sub)

        yield from self._stream(req.count, req.nbytes, 8, server_window)
        end = req.offset + req.span
        inode.size = max(inode.size, end)
        return total

    def _flush_victims(self, victims):  # simlint: ignore[generator-serve]
        yield from self._push_entries(victims)

    def _flush_some(self, inode):  # simlint: ignore[generator-serve]
        """Drain roughly a quarter of the dirty set (throttling writers)."""
        batch = self.cache.dirty_segments(limit=max(self.cache.spec.nsegments // 4, 8))
        yield from self._push_entries(batch)

    def _push_entries(self, entries):  # simlint: ignore[generator-serve]
        """Send dirty cache runs to the server as wsize-chunked streams."""
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, dirty in PageCache.coalesce(entries):
            inode = self._inode_by_id(fileid)
            run_bytes = nsegs * sb
            density = dirty / run_bytes
            if inode is None:
                for s in range(first, first + nsegs):
                    self.cache.mark_clean(fileid, s)
                continue
            if density >= 0.5:
                nrpc = max(run_bytes // self.spec.wsize, 1)

                def server_window(w, idx, _inode=inode, _first=first):
                    sub = IORequest(
                        "write",
                        _first * sb + idx * self.spec.wsize,
                        self.spec.wsize,
                        count=w,
                    )
                    return self.server.export.submit(_inode, sub)

                yield from self._stream(nrpc, self.spec.wsize, 8, server_window)
            else:
                # sparsely dirty run: page-sized WRITE RPCs
                nb = 4 * KiB
                nrpc = max(dirty // nb, 1)
                scatter = max(run_bytes // nrpc, nb)

                def server_window(w, idx, _inode=inode, _first=first, _sc=scatter):
                    sub = IORequest(
                        "write", _first * sb + idx * _sc, nb, count=w, stride=_sc
                    )
                    return self.server.export.submit(_inode, sub)

                yield from self._stream(nrpc, nb, 8, server_window)
            for s in range(first, first + nsegs):
                self.cache.mark_clean(fileid, s)

    def _inode_by_id(self, fileid):
        return self.server.export._by_id.get(fileid)

    # -- read ----------------------------------------------------------------
    def _read(self, inode: Inode, req: IORequest):  # simlint: ignore[generator-serve]
        spec = self.spec
        total = req.total_bytes
        yield self.env.timeout(
            req.count * spec.client_rpc_cpu_s + self.node.memcpy_time(total)
        )
        self.stats.bytes_received += total

        if self.cache.file_fully_resident(inode.fileid, max(inode.size, 1)):
            span = min(req.span, max(inode.size - req.offset, 0))
            self.cache.touch_run(inode.fileid, self.cache.segments_of(req.offset, span))
            return total
        if req.is_dense:
            yield from self._dense_read(inode, req)
            return total
        # Sparse cold reads: one READ RPC per op.
        stride = req.effective_stride if req.stride != -1 else 7919 * 4096

        def server_window(w, idx):
            sub = IORequest(
                "read", req.offset + idx * stride, req.nbytes, count=w, stride=req.stride
            )
            return self.server.export.submit(inode, sub)

        yield from self._stream(req.count, 8, req.nbytes, server_window)
        return total

    def _dense_read(self, inode: Inode, req: IORequest):  # simlint: ignore[generator-serve]
        sb = self.cache.spec.segment_bytes
        span = min(req.span, max(inode.size - req.offset, 0))
        miss_run: list[int] = []
        for seg in self.cache.segments_of(req.offset, span):
            if self.cache.touch(inode.fileid, seg):
                if miss_run:
                    yield from self._fetch(inode, miss_run)
                    miss_run = []
            else:
                miss_run.append(seg)
        if miss_run:
            yield from self._fetch(inode, miss_run)

    def _fetch(self, inode: Inode, segs: list[int]):  # simlint: ignore[generator-serve]
        """READ-RPC a run of segments from the server into the cache."""
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, _d in PageCache.coalesce((inode.fileid, s, 0) for s in segs):
            run_bytes = min(nsegs * sb, max(inode.size - first * sb, sb))
            nrpc = max(run_bytes // self.spec.rsize, 1)

            def server_window(w, idx, _first=first):
                sub = IORequest(
                    "read", _first * sb + idx * self.spec.rsize, self.spec.rsize, count=w
                )
                return self.server.export.submit(inode, sub)

            yield from self._stream(nrpc, 8, self.spec.rsize, server_window)
            s, end = first, first + nsegs
            while s < end:
                s += self.cache.insert_clean_run(fileid, s, end - s)
                if s >= end:
                    break
                victims = self.cache.insert(fileid, s, 0)
                s += 1
                if victims:
                    yield from self._push_entries(victims)

    # -- consistency ----------------------------------------------------------
    def _close(self, inode: Inode):  # simlint: ignore[generator-serve]
        yield from self._commit(inode)
        yield self.env.timeout(self.spec.client_rpc_cpu_s)
        return inode

    def _commit(self, inode: Inode):  # simlint: ignore[generator-serve]
        entries = self.cache.dirty_segments(limit=None, fileid=inode.fileid)
        if entries:
            yield from self._push_entries(entries)
        yield self.network.transfer(
            self.node.name, self.server.node.name, self.spec.rpc_header_bytes
        )
        if self.spec.commit_durable:
            yield self.env.process(
                self.server.service(lambda: self.server.export.fsync(inode))
            )
        else:
            yield self.env.process(self.server.service(lambda: None))
        yield self.network.transfer(
            self.server.node.name, self.node.name, self.spec.rpc_header_bytes
        )
        self.stats.commits += 1
        return None


# ----------------------------------------------------------------------
# flat service paths (REPRO_NO_FSFAST falls back to the generators)
# ----------------------------------------------------------------------
class _ServerService(FlatOp):
    """Flat counterpart of :meth:`NFSServer.service`."""

    __slots__ = ("srv", "factory", "rpc_count", "_req")

    def __init__(self, srv, factory, rpc_count):
        self.srv = srv
        self.factory = factory
        self.rpc_count = rpc_count
        self._req = None
        super().__init__(srv.env)

    def _start(self, event):
        req = self._req = self.srv.threads.request()  # simlint: ignore[resource-release]
        self._await(req, self._thread)

    def _thread(self, _v):
        env = self.env
        srv = self.srv
        if env._now < srv.stall_until:
            self._await(Wake(env, srv.stall_until), self._unstalled)
        else:
            self._unstalled(None)

    def _unstalled(self, _v):
        self._await(
            Timeout(self.env, self.srv.spec.server_rpc_cpu_s * self.rpc_count),
            self._cpu_done,
        )

    def _cpu_done(self, _v):
        ev = self.factory()
        if ev is not None:
            self._await(ev, self._backend_done)
        else:
            self._backend_done(None)

    def _backend_done(self, value):
        self._release()
        self.srv.stats.rpcs += self.rpc_count
        self._finish(value)

    def _release(self):
        req = self._req
        if req is not None and req in self.srv.threads.users:
            self.srv.threads.release(req)

    def _cleanup(self):
        # the generator's ``finally``
        self._release()


class _FlatRetransmit:
    """Flat counterpart of :meth:`NFSMount._retransmit_while_stalled`."""

    __slots__ = ("m", "op", "payload", "count", "k", "delay", "attempt", "stall_end", "_wire")

    def __init__(self, m, op, payload_bytes, count, k):
        self.m = m
        self.op = op
        self.payload = payload_bytes
        self.count = count
        self.k = k
        self.stall_end = m.server.stall_until
        self.delay = m.spec.timeo_s
        self.attempt = 0
        self._tick()

    def _tick(self, _v=None):
        m = self.m
        if m.env._now + self.delay < self.stall_end:
            self.op._await(Timeout(m.env, self.delay), self._resend)
            return
        self.k()

    def _resend(self, _v):
        m = self.m
        spec = m.spec
        self._wire = (self.payload + spec.rpc_header_bytes) * self.count
        self.op._await(
            m.network.transfer(
                m.node.name,
                m.server.node.name,
                self.payload + spec.rpc_header_bytes,
                count=self.count,
            ),
            self._sent,
        )

    def _sent(self, _v):
        m = self.m
        spec = m.spec
        m.stats.retransmits += self.count
        san = m.env.sanitizer
        if san is not None:
            san.note_retransmit(self._wire)
        self.attempt += 1
        if self.attempt >= spec.retrans:
            m.stats.major_timeouts += 1
            self.attempt = 0
            self.delay = spec.timeo_s
        else:
            self.delay *= 2.0
        rng = m.env.rng
        if rng is not None:
            jitter = rng.stream(f"nfs.retrans.{m.name}").random()
            self.delay *= 0.9 + 0.2 * float(jitter)
        self._tick()


class _FlatServerWindow(FlatOp):
    """Flat counterpart of :meth:`NFSMount._server_window`."""

    __slots__ = ("m", "w", "start_index", "reply_b", "factory")

    def __init__(self, m, w, start_index, reply_b, factory):
        self.m = m
        self.w = w
        self.start_index = start_index
        self.reply_b = reply_b
        self.factory = factory
        super().__init__(m.env)

    def _start(self, event):
        m = self.m
        self._await(
            _ServerService(
                m.server, lambda: self.factory(self.w, self.start_index), self.w
            ).result,
            self._served,
        )

    def _served(self, _v):
        m = self.m
        self._await(
            m.network.transfer(
                m.server.node.name,
                m.node.name,
                self.reply_b + m.spec.rpc_header_bytes,
                count=self.w,
            ),
            self._replied,
        )

    def _replied(self, _v):
        self._finish(None)


class _FlatStream:
    """Flat counterpart of :meth:`NFSMount._stream`."""

    __slots__ = ("m", "op", "count", "send_b", "reply_b", "factory", "k", "window", "sent", "done", "_w")

    def __init__(self, m, op, count, send_b, reply_b, factory, k):
        self.m = m
        self.op = op
        self.count = count
        self.send_b = send_b
        self.reply_b = reply_b
        self.factory = factory
        self.k = k
        self.window = max(m.spec.slot_table, count // 64)
        self.sent = 0
        self.done = []
        self._send_next()

    def _send_next(self, _v=None):
        m = self.m
        if self.sent < self.count:
            w = self._w = min(self.window, self.count - self.sent)
            self.op._await(
                m.network.transfer(
                    m.node.name,
                    m.server.node.name,
                    self.send_b + m.spec.rpc_header_bytes,
                    count=w,
                ),
                self._sent_window,
            )
            return
        if self.done:
            self.op._await(m.env.all_of(self.done), self._all_done)
            return
        m.stats.rpcs += self.count
        self.k()

    def _sent_window(self, _v):
        m = self.m
        if m.server.stalled:
            _FlatRetransmit(m, self.op, self.send_b, self._w, self._spawn_window)
            return
        self._spawn_window()

    def _spawn_window(self, _v=None):
        w = self._w
        self.done.append(
            _FlatServerWindow(self.m, w, self.sent, self.reply_b, self.factory).result
        )
        self.sent += w
        self._send_next()

    def _all_done(self, _v):
        self.m.stats.rpcs += self.count
        self.k()


class _FlatPush:
    """Flat counterpart of :meth:`NFSMount._push_entries`."""

    __slots__ = ("m", "op", "runs", "i", "k")

    def __init__(self, m, op, entries, k):
        self.m = m
        self.op = op
        self.runs = list(PageCache.coalesce(entries))
        self.i = 0
        self.k = k
        self._next()

    def _next(self, _v=None):
        m = self.m
        sb = m.cache.spec.segment_bytes
        runs = self.runs
        while self.i < len(runs):
            fileid, first, nsegs, dirty = runs[self.i]
            inode = m._inode_by_id(fileid)
            run_bytes = nsegs * sb
            density = dirty / run_bytes
            if inode is None:
                for s in range(first, first + nsegs):
                    m.cache.mark_clean(fileid, s)
                self.i += 1
                continue
            if density >= 0.5:
                nrpc = max(run_bytes // m.spec.wsize, 1)

                def server_window(w, idx, _m=m, _inode=inode, _first=first, _sb=sb):
                    sub = IORequest(
                        "write",
                        _first * _sb + idx * _m.spec.wsize,
                        _m.spec.wsize,
                        count=w,
                    )
                    return _m.server.export.submit(_inode, sub)

                _FlatStream(m, self.op, nrpc, m.spec.wsize, 8, server_window, self._streamed)
            else:
                # sparsely dirty run: page-sized WRITE RPCs
                nb = 4 * KiB
                nrpc = max(dirty // nb, 1)
                scatter = max(run_bytes // nrpc, nb)

                def server_window(w, idx, _m=m, _inode=inode, _first=first, _sc=scatter, _sb=sb, _nb=nb):
                    sub = IORequest(
                        "write", _first * _sb + idx * _sc, _nb, count=w, stride=_sc
                    )
                    return _m.server.export.submit(_inode, sub)

                _FlatStream(m, self.op, nrpc, nb, 8, server_window, self._streamed)
            return
        self.k()

    def _streamed(self, _v=None):
        m = self.m
        fileid, first, nsegs, _d = self.runs[self.i]
        for s in range(first, first + nsegs):
            m.cache.mark_clean(fileid, s)
        self.i += 1
        self._next()


class _FlatFetch(object):
    """Flat counterpart of :meth:`NFSMount._fetch`."""

    __slots__ = ("m", "op", "inode", "runs", "i", "s", "k")

    def __init__(self, m, op, inode, segs, k):
        self.m = m
        self.op = op
        self.inode = inode
        self.runs = list(PageCache.coalesce((inode.fileid, s, 0) for s in segs))
        self.i = 0
        self.s = 0
        self.k = k
        self._next()

    def _next(self, _v=None):
        m = self.m
        sb = m.cache.spec.segment_bytes
        if self.i >= len(self.runs):
            self.k()
            return
        _fileid, first, nsegs, _d = self.runs[self.i]
        inode = self.inode
        run_bytes = min(nsegs * sb, max(inode.size - first * sb, sb))
        nrpc = max(run_bytes // m.spec.rsize, 1)

        def server_window(w, idx, _m=m, _inode=inode, _first=first, _sb=sb):
            sub = IORequest(
                "read", _first * _sb + idx * _m.spec.rsize, _m.spec.rsize, count=w
            )
            return _m.server.export.submit(_inode, sub)

        self.s = first
        _FlatStream(m, self.op, nrpc, 8, m.spec.rsize, server_window, self._insert_loop)

    def _insert_loop(self, _v=None):
        m = self.m
        fileid, first, nsegs, _d = self.runs[self.i]
        end = first + nsegs
        while self.s < end:
            self.s += m.cache.insert_clean_run(fileid, self.s, end - self.s)
            if self.s >= end:
                break
            victims = m.cache.insert(fileid, self.s, 0)
            self.s += 1
            if victims:
                _FlatPush(m, self.op, victims, self._insert_loop)
                return
        self.i += 1
        self._next()


class _FlatDirect(FlatOp):
    """Flat counterpart of :meth:`NFSMount._direct`."""

    __slots__ = ("m", "inode", "req", "total")

    def __init__(self, m, inode, req):
        self.m = m
        self.inode = inode
        self.req = req
        super().__init__(m.env)

    def _start(self, event):
        m = self.m
        req = self.req
        total = self.total = req.total_bytes
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(m, req.op, total)
        self._await(
            Timeout(
                self.env,
                req.count * m.spec.client_rpc_cpu_s + m.node.memcpy_time(total),
            ),
            self._after_cpu,
        )

    def _after_cpu(self, _v):
        m = self.m
        req = self.req
        spec = m.spec
        total = self.total
        if req.op == "write":
            m.stats.bytes_sent += total
        else:
            m.stats.bytes_received += total

        if req.is_dense:
            chunk = spec.wsize if req.op == "write" else spec.rsize
            nrpc = max((total + chunk - 1) // chunk, 1)
            inode = self.inode

            def server_window(w, idx, _m=m, _req=req, _chunk=chunk, _inode=inode):
                sub = IORequest(_req.op, _req.offset + idx * _chunk, _chunk, count=w)
                return _m.server.export.submit(_inode, sub)

            if req.op == "write":
                _FlatStream(m, self, nrpc, chunk, 8, server_window, self._dense_done)
            else:
                _FlatStream(m, self, nrpc, 8, chunk, server_window, self._dense_done)
            return
        # Sparse: strictly synchronous per-operation round trips.
        self._await(
            Timeout(self.env, req.count * 2 * m.network.spec.latency_s),
            self._after_latency,
        )

    def _dense_done(self, _v=None):
        req = self.req
        if req.op == "write":
            inode = self.inode
            inode.size = max(inode.size, req.offset + req.span)
        self._finish(self.total)

    def _after_latency(self, _v):
        m = self.m
        req = self.req
        send_payload = req.nbytes if req.op == "write" else 8
        self._await(
            m.network.transfer(
                m.node.name,
                m.server.node.name,
                send_payload + m.spec.rpc_header_bytes,
                count=req.count,
            ),
            self._after_send,
        )

    def _after_send(self, _v):
        m = self.m
        req = self.req
        if m.server.stalled:
            send_payload = req.nbytes if req.op == "write" else 8
            _FlatRetransmit(m, self, send_payload, req.count, self._service)
            return
        self._service()

    def _service(self, _v=None):
        m = self.m
        req = self.req
        inode = self.inode
        if req.op == "write":
            backend = lambda: m.server.export.submit_serialized_write(
                inode, req, m.spec.server_small_op_s
            )
        else:
            backend = lambda: m.server.export.submit(inode, req)
        self._await(m.server.service_op(backend, rpc_count=req.count), self._after_service)

    def _after_service(self, _v):
        m = self.m
        req = self.req
        reply_payload = 8 if req.op == "write" else req.nbytes
        self._await(
            m.network.transfer(
                m.server.node.name,
                m.node.name,
                reply_payload + m.spec.rpc_header_bytes,
                count=req.count,
            ),
            self._after_reply,
        )

    def _after_reply(self, _v):
        m = self.m
        req = self.req
        m.stats.rpcs += req.count
        if req.op == "write":
            inode = self.inode
            inode.size = max(inode.size, req.offset + req.span)
        self._finish(self.total)


class _FlatMetaRpc(FlatOp):
    """Flat counterpart of :meth:`NFSMount._meta_rpc`."""

    __slots__ = ("m", "factory", "_result")

    def __init__(self, m, factory):
        self.m = m
        self.factory = factory
        self._result = None
        super().__init__(m.env)

    def _start(self, event):
        m = self.m
        self._await(
            Timeout(self.env, m.spec.getattr_s + m.spec.client_rpc_cpu_s),
            self._after_cpu,
        )

    def _after_cpu(self, _v):
        m = self.m
        self._await(
            m.network.transfer(m.node.name, m.server.node.name, m.spec.rpc_header_bytes),
            self._after_send,
        )

    def _after_send(self, _v):
        m = self.m
        if m.server.stalled:
            _FlatRetransmit(m, self, 0, 1, self._service)
            return
        self._service()

    def _service(self, _v=None):
        m = self.m
        self._await(m.server.service_op(self.factory), self._after_service)

    def _after_service(self, result):
        m = self.m
        self._result = result
        self._await(
            m.network.transfer(m.server.node.name, m.node.name, m.spec.rpc_header_bytes),
            self._after_reply,
        )

    def _after_reply(self, _v):
        self.m.stats.rpcs += 1
        self._finish(self._result)


class _NFSWrite(FlatOp):
    """Flat counterpart of :meth:`NFSMount._write`."""

    __slots__ = ("m", "inode", "req", "total", "_segs", "_si", "_stage")

    def __init__(self, m, inode, req):
        self.m = m
        self.inode = inode
        self.req = req
        super().__init__(m.env)

    def _start(self, event):
        m = self.m
        req = self.req
        total = self.total = req.total_bytes
        self._await(
            Timeout(
                self.env,
                req.count * m.spec.client_rpc_cpu_s + m.node.memcpy_time(total),
            ),
            self._after_cpu,
        )

    def _after_cpu(self, _v):
        m = self.m
        req = self.req
        m.stats.bytes_sent += self.total
        if req.is_dense:
            sb = m.cache.spec.segment_bytes
            end = req.offset + req.span
            self._segs = [
                (seg, min(end, (seg + 1) * sb) - max(req.offset, seg * sb))
                for seg in m.cache.segments_of(req.offset, req.span)
            ]
            self._si = 0
            self._stage = 0
            self._seg_loop()
            return
        # Sparse stream: one WRITE RPC per operation, pipelined.
        stride = req.effective_stride if req.stride != -1 else 7919 * 4096
        inode = self.inode

        def server_window(w, idx, _m=m, _req=req, _stride=stride, _inode=inode):
            sub = IORequest(
                "write", _req.offset + idx * _stride, _req.nbytes, count=w, stride=_req.stride
            )
            return _m.server.export.submit(_inode, sub)

        _FlatStream(m, self, req.count, req.nbytes, 8, server_window, self._sparse_done)

    def _sparse_done(self, _v=None):
        req = self.req
        inode = self.inode
        inode.size = max(inode.size, req.offset + req.span)
        self._finish(self.total)

    def _seg_loop(self, _v=None):
        m = self.m
        plan = self._segs
        fileid = self.inode.fileid
        while self._si < len(plan):
            st = self._stage
            if st == 0:
                # absorb the throttle-free, flush-free prefix in one call
                self._si += m.cache.insert_dirty_run(fileid, plan, self._si)
                if self._si >= len(plan):
                    break
                if m.cache.need_throttle:
                    self._stage = 1
                    batch = m.cache.dirty_segments(
                        limit=max(m.cache.spec.nsegments // 4, 8)
                    )
                    _FlatPush(m, self, batch, self._seg_loop)
                    return
                st = 1
            if st == 1:
                seg, dirty = plan[self._si]
                victims = m.cache.insert(fileid, seg, dirty)
                if victims:
                    self._stage = 2
                    _FlatPush(m, self, victims, self._seg_loop)
                    return
            self._si += 1
            self._stage = 0
        inode = self.inode
        inode_end = self.req.offset + self.req.span
        if inode_end > inode.size:
            inode.size = inode_end  # size pushed at next flush/commit
        self._finish(self.total)


class _NFSRead(FlatOp):
    """Flat counterpart of :meth:`NFSMount._read` (incl. ``_dense_read``)."""

    __slots__ = ("m", "inode", "req", "total", "_segs", "_si", "_miss")

    def __init__(self, m, inode, req):
        self.m = m
        self.inode = inode
        self.req = req
        super().__init__(m.env)

    def _start(self, event):
        m = self.m
        req = self.req
        total = self.total = req.total_bytes
        self._await(
            Timeout(
                self.env,
                req.count * m.spec.client_rpc_cpu_s + m.node.memcpy_time(total),
            ),
            self._after_cpu,
        )

    def _after_cpu(self, _v):
        m = self.m
        req = self.req
        inode = self.inode
        m.stats.bytes_received += self.total

        if m.cache.file_fully_resident(inode.fileid, max(inode.size, 1)):
            span = min(req.span, max(inode.size - req.offset, 0))
            m.cache.touch_run(inode.fileid, m.cache.segments_of(req.offset, span))
            self._finish(self.total)
            return
        if req.is_dense:
            span = min(req.span, max(inode.size - req.offset, 0))
            self._segs = list(m.cache.segments_of(req.offset, span))
            self._si = 0
            self._miss = []
            self._scan()
            return
        # Sparse cold reads: one READ RPC per op.
        stride = req.effective_stride if req.stride != -1 else 7919 * 4096

        def server_window(w, idx, _m=m, _req=req, _stride=stride, _inode=inode):
            sub = IORequest(
                "read", _req.offset + idx * _stride, _req.nbytes, count=w, stride=_req.stride
            )
            return _m.server.export.submit(_inode, sub)

        _FlatStream(m, self, req.count, 8, req.nbytes, server_window, self._sparse_done)

    def _sparse_done(self, _v=None):
        self._finish(self.total)

    def _scan(self, _v=None):
        m = self.m
        inode = self.inode
        segs = self._segs
        while self._si < len(segs):
            seg = segs[self._si]
            self._si += 1
            if m.cache.touch(inode.fileid, seg):
                if self._miss:
                    miss, self._miss = self._miss, []
                    _FlatFetch(m, self, inode, miss, self._scan)
                    return
            else:
                self._miss.append(seg)
        if self._miss:
            miss, self._miss = self._miss, []
            _FlatFetch(m, self, inode, miss, self._fetch_done)
            return
        self._finish(self.total)

    def _fetch_done(self, _v=None):
        self._finish(self.total)


class _FlatCommit(FlatOp):
    """Flat counterpart of :meth:`NFSMount._commit` / ``_close``."""

    __slots__ = ("m", "inode", "close")

    def __init__(self, m, inode, close):
        self.m = m
        self.inode = inode
        self.close = close
        super().__init__(m.env)

    def _start(self, event):
        m = self.m
        entries = m.cache.dirty_segments(limit=None, fileid=self.inode.fileid)
        if entries:
            _FlatPush(m, self, entries, self._pushed)
            return
        self._pushed()

    def _pushed(self, _v=None):
        m = self.m
        self._await(
            m.network.transfer(m.node.name, m.server.node.name, m.spec.rpc_header_bytes),
            self._sent,
        )

    def _sent(self, _v):
        m = self.m
        inode = self.inode
        if m.spec.commit_durable:
            factory = lambda: m.server.export.fsync(inode)
        else:
            factory = lambda: None
        self._await(m.server.service_op(factory), self._served)

    def _served(self, _v):
        m = self.m
        self._await(
            m.network.transfer(m.server.node.name, m.node.name, m.spec.rpc_header_bytes),
            self._replied,
        )

    def _replied(self, _v):
        m = self.m
        m.stats.commits += 1
        if self.close:
            self._await(Timeout(self.env, m.spec.client_rpc_cpu_s), self._closed)
            return
        self._finish(None)

    def _closed(self, _v):
        self._finish(self.inode)
