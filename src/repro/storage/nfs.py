"""Network filesystem (NFS-like) client/server model.

This is the "I/O node (global filesystem)" level of the paper's I/O
path: on both of the paper's clusters a front-end node exports a
RAID-backed ext4 filesystem over NFS to all compute nodes.

The model captures the pieces that determine the paper's NFS-level
numbers:

* every operation is an **RPC** over the data network — a request
  message, a server-side service (thread pool + the server's own
  :class:`~repro.storage.localfs.LocalFS`, with *its* page cache and
  RAID write-back behind it) and a reply message;
* bulk data moves in ``rsize``/``wsize`` chunks with a bounded slot
  table, so large transfers pipeline and approach wire speed while
  small strided operations pay per-RPC latency — the contrast behind
  BT-IO *full* vs *simple*;
* the **client-side page cache** absorbs dense writes (write-back,
  flushed on close/fsync with a COMMIT) and caches read data, so a
  re-read of a file smaller than client RAM never touches the wire
  (the paper's >100% used-percentage readings);
* many clients contend on the server's network link, thread pool,
  page cache and disks — the emergent many-to-one bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simengine import Environment, Event, Resource
from ..hardware.network import Network
from ..hardware.node import Node
from .base import IORequest, KiB, MiB
from .cache import CacheSpec, PageCache
from .localfs import Inode, LocalFS

__all__ = ["NFSSpec", "NFSServer", "NFSMount"]


@dataclass(frozen=True)
class NFSSpec:
    """Protocol and mount parameters."""

    rsize: int = 256 * KiB
    wsize: int = 256 * KiB
    rpc_header_bytes: int = 160
    #: concurrent in-flight RPCs per mount (Linux slot table)
    slot_table: int = 16
    server_threads: int = 8
    server_rpc_cpu_s: float = 18e-6  # per-RPC service CPU
    client_rpc_cpu_s: float = 9e-6
    getattr_s: float = 30e-6
    #: server-side VFS/ext4 service per small synchronous write — these
    #: serialise on the file's inode mutex (drives BT-IO "simple")
    server_small_op_s: float = 120e-6
    #: COMMIT flushes the server file durably (async exports skip it)
    commit_durable: bool = True
    #: fraction of client RAM used for the NFS data cache
    client_cache_fraction: float = 0.5
    #: RPC timeout before the first retransmission (mount option
    #: ``timeo``, here in seconds; Linux default 600 deciseconds over
    #: TCP — shortened to the UDP-era default so stalls are visible at
    #: simulated-run scale)
    timeo_s: float = 1.1
    #: retransmissions before a *major timeout* ("server not
    #: responding"); hard mounts then start over, so a stalled server
    #: slows clients down but never hangs them
    retrans: int = 3


@dataclass
class NFSStats:
    rpcs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    commits: int = 0
    #: RPC requests re-sent after a timeout (stalled/unresponsive server)
    retransmits: int = 0
    #: exhausted retrans cycles ("nfs: server ... not responding")
    major_timeouts: int = 0


class NFSServer:
    """The I/O node: exports one :class:`LocalFS` over a network."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        export: LocalFS,
        network: Network,
        spec: NFSSpec | None = None,
        name: str = "nfsd",
    ):
        self.env = env
        self.node = node
        self.export = export
        self.network = network
        self.spec = spec or NFSSpec()
        self.name = name
        self.threads = Resource(env, capacity=self.spec.server_threads, name=f"{name}.threads")
        self.stats = NFSStats()
        #: absolute simulated time until which the server is stalled
        #: (fault injection; see :meth:`stall`)
        self.stall_until = 0.0

    def stall(self, duration_s: float) -> None:
        """Wedge the server for ``duration_s`` seconds from now.

        Models an I/O-node brown-out (reboot, thrashing, hung export):
        granted nfsd threads sit on the wedged backend, the thread pool
        backs up, and clients retransmit until service resumes.
        """
        self.stall_until = max(self.stall_until, self.env.now + duration_s)

    @property
    def stalled(self) -> bool:
        return self.env.now < self.stall_until

    def service(self, work_event_factory, rpc_count: int = 1):
        """Hold a server thread while performing backend work.

        ``work_event_factory`` is a zero-argument callable returning the
        backend event (e.g. a LocalFS submit) — created *after* the
        thread is granted, as real nfsd threads do.  Returns the backend
        event's value.
        """
        result = None
        req = self.threads.request()
        yield req
        try:
            if self.env.now < self.stall_until:
                # stalled: the granted thread sits on the wedged
                # backend until service resumes
                yield self.env.wake_at(self.stall_until)
            yield self.env.timeout(self.spec.server_rpc_cpu_s * rpc_count)
            ev = work_event_factory()
            if ev is not None:
                result = yield ev
        finally:
            if req in self.threads.users:
                self.threads.release(req)
        self.stats.rpcs += rpc_count
        return result

    def reset(self) -> None:
        """Forget thread-pool, stall and statistics state (warm reuse)."""
        self.threads.reset()
        self.stats = NFSStats()
        self.stall_until = 0.0


class NFSMount:
    """A client mount of an :class:`NFSServer` export on one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        server: NFSServer,
        spec: NFSSpec | None = None,
        cache_spec: CacheSpec | None = None,
        name: str = "",
    ):
        self.env = env
        self.node = node
        self.server = server
        self.spec = spec or server.spec
        if cache_spec is None:
            cache_spec = CacheSpec(
                capacity_bytes=int(node.spec.ram_bytes * self.spec.client_cache_fraction)
            )
        self.cache = PageCache(cache_spec, name=f"{name or node.name}.nfscache")
        self.name = name or f"nfs@{node.name}"
        self.stats = NFSStats()
        self.network = server.network

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, path: str) -> Event:
        return self.env.process(self._meta_rpc(lambda: self.server.export.create(path)))

    def open(self, path: str, create: bool = False) -> Event:
        if create and not self.server.export.exists(path):
            return self.create(path)
        return self.env.process(self._meta_rpc(lambda: self.server.export.open(path)))

    def close(self, inode: Inode) -> Event:
        """Close-to-open consistency: flush dirty data, then COMMIT."""
        return self.env.process(self._close(inode), name=f"{self.name}.close")

    def unlink(self, path: str) -> Event:
        def _inval():
            if self.server.export.exists(path):
                self.cache.drop_file(self.server.export.stat(path).fileid)
            return self.server.export.unlink(path)

        return self.env.process(self._meta_rpc(_inval))

    def stat(self, path: str) -> Inode:
        return self.server.export.stat(path)

    def exists(self, path: str) -> bool:
        return self.server.export.exists(path)

    def fsync(self, inode: Inode) -> Event:
        return self.env.process(self._commit(inode), name=f"{self.name}.fsync")

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def submit(self, inode: Inode, req: IORequest) -> Event:
        if req.op == "write":
            return self.env.process(self._write(inode, req), name=f"{self.name}.write")
        return self.env.process(self._read(inode, req), name=f"{self.name}.read")

    def submit_direct(self, inode: Inode, req: IORequest) -> Event:
        """Uncached, synchronous access — how MPI-IO (ROMIO) drives NFS.

        ROMIO disables NFS client caching to get shared-file
        consistency, so every operation is a wire round trip:

        * dense requests still pipeline their ``rsize``/``wsize`` chunks
          inside one call (the data of a single large MPI write fills
          the slot table);
        * sparse requests serialise — each small strided operation pays
          a full RTT plus server service before the next can start,
          which is the behaviour behind the paper's NAS BT-IO *simple*
          results.
        """
        return self.env.process(self._direct(inode, req), name=f"{self.name}.direct")

    def absorb(self, inode: Inode, req: IORequest) -> int:
        """Apply a direct request's state side effects analytically.

        The MPI-IO path is uncached on the client, so the state that
        matters lives server-side: delegate to the export's
        :meth:`~repro.storage.localfs.LocalFS.absorb` (file growth,
        allocation, server cache residency) and account the wire bytes.
        Advances no simulated time.
        """
        total = self.server.export.absorb(inode, req)
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, total)
        if req.op == "write":
            self.stats.bytes_sent += total
        else:
            self.stats.bytes_received += total
        return total

    def state_token(self, inode: Inode, req: IORequest) -> tuple:
        """Cache-regime fingerprint for the replay phase key.

        The MPI-IO direct path bypasses the client cache, so the state
        that governs a request's service time is the server export's
        — delegate to it (see
        :meth:`~repro.storage.localfs.LocalFS.state_token`).
        """
        return self.server.export.state_token(inode, req)

    def reset(self) -> None:
        """Drop client-cache and statistics state (warm reuse)."""
        self.cache.reset()
        self.stats = NFSStats()

    def _direct(self, inode: Inode, req: IORequest):
        spec = self.spec
        total = req.total_bytes
        san = self.env.sanitizer
        if san is not None:
            san.account_fs(self, req.op, total)
        yield self.env.timeout(
            req.count * spec.client_rpc_cpu_s + self.node.memcpy_time(total)
        )
        if req.op == "write":
            self.stats.bytes_sent += total
        else:
            self.stats.bytes_received += total

        if req.is_dense:
            chunk = spec.wsize if req.op == "write" else spec.rsize
            nrpc = max((total + chunk - 1) // chunk, 1)

            def server_window(w, idx):
                sub = IORequest(req.op, req.offset + idx * chunk, chunk, count=w)
                return self.server.export.submit(inode, sub)

            if req.op == "write":
                yield from self._stream(nrpc, chunk, 8, server_window)
                inode.size = max(inode.size, req.offset + req.span)
            else:
                yield from self._stream(nrpc, 8, chunk, server_window)
            return total

        # Sparse: strictly synchronous per-operation round trips.  With
        # no pipelining the total is the sum of the per-stage times, so
        # each stage is charged once in bulk.
        yield self.env.timeout(req.count * 2 * self.network.spec.latency_s)
        send_payload = req.nbytes if req.op == "write" else 8
        reply_payload = 8 if req.op == "write" else req.nbytes
        yield self.network.transfer(
            self.node.name,
            self.server.node.name,
            send_payload + spec.rpc_header_bytes,
            count=req.count,
        )
        if self.server.stalled:
            yield from self._retransmit_while_stalled(send_payload, req.count)
        if req.op == "write":
            backend = lambda: self.server.export.submit_serialized_write(
                inode, req, self.spec.server_small_op_s
            )
        else:
            backend = lambda: self.server.export.submit(inode, req)
        yield self.env.process(self.server.service(backend, rpc_count=req.count))
        yield self.network.transfer(
            self.server.node.name,
            self.node.name,
            reply_payload + spec.rpc_header_bytes,
            count=req.count,
        )
        self.stats.rpcs += req.count
        if req.op == "write":
            inode.size = max(inode.size, req.offset + req.span)
        return total

    # -- RPC plumbing -------------------------------------------------------
    def _retransmit_while_stalled(self, payload_bytes: int, count: int = 1):
        """Client-side RPC timeout handling against a stalled server.

        Called after a request hit the wire while the server is wedged
        (``server.stall_until``): wait ``timeo``, re-send the request
        bytes, back off exponentially; after ``retrans`` unanswered
        re-sends log a *major timeout* and start over (hard-mount
        semantics — bounded slowdown, never a hang).  The loop never
        sleeps past the stall window, so the reply path resumes as soon
        as the server does.

        Jitter (±10% of each backoff step) comes from the seeded
        ``env.rng`` streams installed by the fault injector; with no
        registry installed the backoff is exact — either way the run
        is deterministic for a fixed seed.
        """
        spec = self.spec
        stall_end = self.server.stall_until
        delay = spec.timeo_s
        attempt = 0
        rng = self.env.rng
        while self.env.now + delay < stall_end:
            yield self.env.timeout(delay)
            wire = (payload_bytes + spec.rpc_header_bytes) * count
            yield self.network.transfer(
                self.node.name,
                self.server.node.name,
                payload_bytes + spec.rpc_header_bytes,
                count=count,
            )
            self.stats.retransmits += count
            san = self.env.sanitizer
            if san is not None:
                san.note_retransmit(wire)
            attempt += 1
            if attempt >= spec.retrans:
                self.stats.major_timeouts += 1
                attempt = 0
                delay = spec.timeo_s
            else:
                delay *= 2.0
            if rng is not None:
                jitter = rng.stream(f"nfs.retrans.{self.name}").random()
                delay *= 0.9 + 0.2 * float(jitter)

    def _meta_rpc(self, backend_factory):
        yield self.env.timeout(self.spec.getattr_s + self.spec.client_rpc_cpu_s)
        yield self.network.transfer(
            self.node.name, self.server.node.name, self.spec.rpc_header_bytes
        )
        if self.server.stalled:
            yield from self._retransmit_while_stalled(0)
        result = yield self.env.process(self.server.service(backend_factory))
        yield self.network.transfer(
            self.server.node.name, self.node.name, self.spec.rpc_header_bytes
        )
        self.stats.rpcs += 1
        return result

    def _stream(self, count, send_bytes_per_rpc, reply_bytes_per_rpc, server_window_factory):
        """Pipelined RPC stream: windows of RPCs move over the network
        while the server digests earlier windows; fires when all replies
        are in."""
        window = max(self.spec.slot_table, count // 64)
        done: list[Event] = []
        sent = 0
        while sent < count:
            w = min(window, count - sent)
            yield self.network.transfer(
                self.node.name,
                self.server.node.name,
                send_bytes_per_rpc + self.spec.rpc_header_bytes,
                count=w,
            )
            if self.server.stalled:
                yield from self._retransmit_while_stalled(send_bytes_per_rpc, w)
            done.append(
                self.env.process(
                    self._server_window(w, sent, reply_bytes_per_rpc, server_window_factory)
                )
            )
            sent += w
        if done:
            yield self.env.all_of(done)
        self.stats.rpcs += count

    def _server_window(self, w, start_index, reply_bytes_per_rpc, server_window_factory):
        yield self.env.process(
            self.server.service(lambda: server_window_factory(w, start_index), rpc_count=w)
        )
        yield self.network.transfer(
            self.server.node.name,
            self.node.name,
            reply_bytes_per_rpc + self.spec.rpc_header_bytes,
            count=w,
        )

    # -- write ---------------------------------------------------------------
    def _write(self, inode: Inode, req: IORequest):
        spec = self.spec
        total = req.total_bytes
        yield self.env.timeout(
            req.count * spec.client_rpc_cpu_s + self.node.memcpy_time(total)
        )
        self.stats.bytes_sent += total

        sb = self.cache.spec.segment_bytes
        if req.is_dense:
            # Absorb into the client cache; write-back flushes in wsize
            # chunks.  Evicted dirty victims flush synchronously.
            for seg in self.cache.segments_of(req.offset, req.span):
                if self.cache.need_throttle:
                    yield from self._flush_some(inode)
                lo = max(req.offset, seg * sb)
                hi = min(req.offset + req.span, (seg + 1) * sb)
                victims = self.cache.insert(inode.fileid, seg, hi - lo)
                if victims:
                    yield from self._flush_victims(victims)
            inode_end = req.offset + req.span
            if inode_end > inode.size:
                inode.size = inode_end  # size pushed at next flush/commit
            return total
        # Sparse stream: one WRITE RPC per operation, pipelined.
        stride = req.effective_stride if req.stride != -1 else 7919 * 4096

        def server_window(w, idx):
            sub = IORequest(
                "write", req.offset + idx * stride, req.nbytes, count=w, stride=req.stride
            )
            return self.server.export.submit(inode, sub)

        yield from self._stream(req.count, req.nbytes, 8, server_window)
        end = req.offset + req.span
        inode.size = max(inode.size, end)
        return total

    def _flush_victims(self, victims):
        yield from self._push_entries(victims)

    def _flush_some(self, inode):
        """Drain roughly a quarter of the dirty set (throttling writers)."""
        batch = self.cache.dirty_segments(limit=max(self.cache.spec.nsegments // 4, 8))
        yield from self._push_entries(batch)

    def _push_entries(self, entries):
        """Send dirty cache runs to the server as wsize-chunked streams."""
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, dirty in PageCache.coalesce(entries):
            inode = self._inode_by_id(fileid)
            run_bytes = nsegs * sb
            density = dirty / run_bytes
            if inode is None:
                for s in range(first, first + nsegs):
                    self.cache.mark_clean(fileid, s)
                continue
            if density >= 0.5:
                nrpc = max(run_bytes // self.spec.wsize, 1)

                def server_window(w, idx, _inode=inode, _first=first):
                    sub = IORequest(
                        "write",
                        _first * sb + idx * self.spec.wsize,
                        self.spec.wsize,
                        count=w,
                    )
                    return self.server.export.submit(_inode, sub)

                yield from self._stream(nrpc, self.spec.wsize, 8, server_window)
            else:
                # sparsely dirty run: page-sized WRITE RPCs
                nb = 4 * KiB
                nrpc = max(dirty // nb, 1)
                scatter = max(run_bytes // nrpc, nb)

                def server_window(w, idx, _inode=inode, _first=first, _sc=scatter):
                    sub = IORequest(
                        "write", _first * sb + idx * _sc, nb, count=w, stride=_sc
                    )
                    return self.server.export.submit(_inode, sub)

                yield from self._stream(nrpc, nb, 8, server_window)
            for s in range(first, first + nsegs):
                self.cache.mark_clean(fileid, s)

    def _inode_by_id(self, fileid):
        return self.server.export._by_id.get(fileid)

    # -- read ----------------------------------------------------------------
    def _read(self, inode: Inode, req: IORequest):
        spec = self.spec
        total = req.total_bytes
        yield self.env.timeout(
            req.count * spec.client_rpc_cpu_s + self.node.memcpy_time(total)
        )
        self.stats.bytes_received += total

        if self.cache.file_fully_resident(inode.fileid, max(inode.size, 1)):
            span = min(req.span, max(inode.size - req.offset, 0))
            for seg in self.cache.segments_of(req.offset, span):
                self.cache.touch(inode.fileid, seg)
            return total
        if req.is_dense:
            yield from self._dense_read(inode, req)
            return total
        # Sparse cold reads: one READ RPC per op.
        stride = req.effective_stride if req.stride != -1 else 7919 * 4096

        def server_window(w, idx):
            sub = IORequest(
                "read", req.offset + idx * stride, req.nbytes, count=w, stride=req.stride
            )
            return self.server.export.submit(inode, sub)

        yield from self._stream(req.count, 8, req.nbytes, server_window)
        return total

    def _dense_read(self, inode: Inode, req: IORequest):
        sb = self.cache.spec.segment_bytes
        span = min(req.span, max(inode.size - req.offset, 0))
        miss_run: list[int] = []
        for seg in self.cache.segments_of(req.offset, span):
            if self.cache.touch(inode.fileid, seg):
                if miss_run:
                    yield from self._fetch(inode, miss_run)
                    miss_run = []
            else:
                miss_run.append(seg)
        if miss_run:
            yield from self._fetch(inode, miss_run)

    def _fetch(self, inode: Inode, segs: list[int]):
        """READ-RPC a run of segments from the server into the cache."""
        sb = self.cache.spec.segment_bytes
        for fileid, first, nsegs, _d in PageCache.coalesce((inode.fileid, s, 0) for s in segs):
            run_bytes = min(nsegs * sb, max(inode.size - first * sb, sb))
            nrpc = max(run_bytes // self.spec.rsize, 1)

            def server_window(w, idx, _first=first):
                sub = IORequest(
                    "read", _first * sb + idx * self.spec.rsize, self.spec.rsize, count=w
                )
                return self.server.export.submit(inode, sub)

            yield from self._stream(nrpc, 8, self.spec.rsize, server_window)
            for s in range(first, first + nsegs):
                victims = self.cache.insert(fileid, s, 0)
                if victims:
                    yield from self._push_entries(victims)

    # -- consistency ----------------------------------------------------------
    def _close(self, inode: Inode):
        yield from self._commit(inode)
        yield self.env.timeout(self.spec.client_rpc_cpu_s)
        return inode

    def _commit(self, inode: Inode):
        entries = self.cache.dirty_segments(limit=None, fileid=inode.fileid)
        if entries:
            yield from self._push_entries(entries)
        yield self.network.transfer(
            self.node.name, self.server.node.name, self.spec.rpc_header_bytes
        )
        if self.spec.commit_durable:
            yield self.env.process(
                self.server.service(lambda: self.server.export.fsync(inode))
            )
        else:
            yield self.env.process(self.server.service(lambda: None))
        yield self.network.transfer(
            self.server.node.name, self.node.name, self.spec.rpc_header_bytes
        )
        self.stats.commits += 1
        return None
