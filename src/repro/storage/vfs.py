"""Per-node VFS: mount table and file handles.

Gives workloads one uniform, path-based API over whichever
filesystems a node mounts (its local ext4-like FS, an NFS mount of
the I/O node, ...).  Longest-prefix mount resolution, like a real
mount table.
"""

from __future__ import annotations

from typing import Optional, Union

from ..simengine import Environment, Event, FlatOp
from ..simengine import resources as _kernel
from .base import IORequest
from .localfs import Inode, LocalFS
from .nfs import NFSMount

__all__ = ["VFS", "FileHandle"]

Filesystem = Union[LocalFS, NFSMount]


class FileHandle:
    """An open file; thin convenience over ``fs.submit``.

    Tracks a cursor so workloads can mix positional and streaming
    access, and counts the operations it carried (used by the tracer).
    """

    def __init__(self, vfs: "VFS", fs: Filesystem, inode: Inode, path: str):
        self.vfs = vfs
        self.fs = fs
        self.inode = inode
        self.path = path
        self.pos = 0
        self.closed = False

    # -- positional ----------------------------------------------------
    def pread(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._submit(IORequest("read", offset, nbytes, count, stride))

    def pwrite(self, offset: int, nbytes: int, count: int = 1, stride: Optional[int] = None) -> Event:
        return self._submit(IORequest("write", offset, nbytes, count, stride))

    # -- streaming -----------------------------------------------------
    def read(self, nbytes: int, count: int = 1) -> Event:
        ev = self.pread(self.pos, nbytes, count)
        self.pos += nbytes * count
        return ev

    def write(self, nbytes: int, count: int = 1) -> Event:
        ev = self.pwrite(self.pos, nbytes, count)
        self.pos += nbytes * count
        return ev

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise ValueError("negative seek")
        self.pos = offset

    def _submit(self, req: IORequest) -> Event:
        if self.closed:
            raise ValueError(f"I/O on closed file {self.path!r}")
        return self.fs.submit(self.inode, req)

    def fsync(self) -> Event:
        return self.fs.fsync(self.inode)

    def close(self) -> Event:
        self.closed = True
        return self.fs.close(self.inode)

    @property
    def size(self) -> int:
        return self.inode.size


class VFS:
    """A node's mount table."""

    def __init__(self, env: Environment, name: str = "vfs"):
        self.env = env
        self.name = name
        self._mounts: dict[str, Filesystem] = {}

    def mount(self, prefix: str, fs: Filesystem) -> None:
        if not prefix.startswith("/"):
            raise ValueError("mount prefix must be absolute")
        prefix = prefix.rstrip("/") or "/"
        if prefix in self._mounts:
            raise ValueError(f"{prefix!r} already mounted")
        self._mounts[prefix] = fs

    def resolve(self, path: str) -> Filesystem:
        """Longest-prefix match of ``path`` against the mount table."""
        if not path.startswith("/"):
            raise ValueError("paths must be absolute")
        best = None
        best_len = -1
        for prefix, fs in self._mounts.items():
            if path == prefix or path.startswith(prefix if prefix == "/" else prefix + "/"):
                if len(prefix) > best_len:
                    best, best_len = fs, len(prefix)
        if best is None:
            raise FileNotFoundError(f"no filesystem mounted for {path!r}")
        return best

    def mounts(self) -> dict[str, Filesystem]:
        return dict(self._mounts)

    # -- convenience ----------------------------------------------------
    def open(self, path: str, create: bool = False) -> Event:
        """Open (optionally creating); event value is a :class:`FileHandle`."""
        fs = self.resolve(path)
        if _kernel.FS_FAST:
            return _VFSOpen(self, fs, path, create=create).result

        def _op():  # simlint: ignore[generator-serve]
            inode = yield fs.open(path, create=create)
            return FileHandle(self, fs, inode, path)

        return self.env.process(_op(), name=f"{self.name}.open")

    def create(self, path: str) -> Event:
        fs = self.resolve(path)
        if _kernel.FS_FAST:
            return _VFSOpen(self, fs, path, create=None).result

        def _op():  # simlint: ignore[generator-serve]
            inode = yield fs.create(path)
            return FileHandle(self, fs, inode, path)

        return self.env.process(_op(), name=f"{self.name}.create")

    def unlink(self, path: str) -> Event:
        return self.resolve(path).unlink(path)

    def exists(self, path: str) -> bool:
        try:
            return self.resolve(path).exists(path)
        except FileNotFoundError:
            return False

    def stat(self, path: str) -> Inode:
        return self.resolve(path).stat(path)


class _VFSOpen(FlatOp):
    """Flat counterpart of the :meth:`VFS.open` / :meth:`VFS.create`
    wrapper processes (``create=None`` means the create path)."""

    __slots__ = ("vfs", "fs", "path", "create")

    def __init__(self, vfs, fs, path, create):
        self.vfs = vfs
        self.fs = fs
        self.path = path
        self.create = create
        super().__init__(vfs.env)

    def _start(self, event):
        if self.create is None:
            self._await(self.fs.create(self.path), self._opened)
        else:
            self._await(self.fs.open(self.path, create=self.create), self._opened)

    def _opened(self, inode):
        self._finish(FileHandle(self.vfs, self.fs, inode, self.path))
