"""Common vocabulary of the storage stack.

Defines the request geometry shared by every level of the I/O path
(I/O library → global filesystem → local filesystem → devices), and
the access-mode taxonomy the paper's performance tables use
(sequential / strided / random, Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = [
    "AccessMode",
    "AccessType",
    "IORequest",
    "classify_mode",
    "KiB",
    "MiB",
    "GiB",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


class AccessMode(str, Enum):
    """Spatial pattern of a request stream (paper Table I, AccessesMode)."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"


class AccessType(str, Enum):
    """Whether the data lives on node-local or globally shared storage."""

    LOCAL = "local"
    GLOBAL = "global"


@dataclass(frozen=True)
class IORequest:
    """A (possibly bulk) file request.

    ``count`` operations of ``nbytes`` each, the k-th at
    ``offset + k * stride``.  ``stride=None`` means contiguous
    (``stride == nbytes``); ``stride=-1`` marks a *random* pattern whose
    offsets are scattered over the file (cost-modelled, not enumerated).
    """

    op: str  # "read" | "write"
    offset: int
    nbytes: int
    count: int = 1
    stride: Optional[int] = None

    def __post_init__(self):
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.offset < 0 or self.nbytes < 0 or self.count < 1:
            raise ValueError("invalid request geometry")

    @property
    def total_bytes(self) -> int:
        return self.nbytes * self.count

    @property
    def effective_stride(self) -> int:
        return self.nbytes if self.stride is None else self.stride

    @property
    def mode(self) -> AccessMode:
        return classify_mode(self.nbytes, self.count, self.stride)

    @property
    def span(self) -> int:
        """Bytes between the first and last byte touched (dense span)."""
        if self.stride == -1:
            return self.total_bytes
        s = self.effective_stride
        return s * (self.count - 1) + self.nbytes

    @property
    def is_dense(self) -> bool:
        """True when the request covers its span without holes."""
        return self.count == 1 or self.effective_stride == self.nbytes


def classify_mode(nbytes: int, count: int, stride: Optional[int]) -> AccessMode:
    """Access-mode taxonomy used by the performance tables."""
    if stride == -1:
        return AccessMode.RANDOM
    if count == 1 or stride is None or stride == nbytes:
        return AccessMode.SEQUENTIAL
    return AccessMode.STRIDED
