"""Text timeline rendering of I/O traces.

The paper uses Jumpshot/MPE screenshots (Figs. 8 and 16) to show the
repetitive I/O behaviour of NAS BT-IO and MADbench2; this module
renders the equivalent as a per-rank ASCII Gantt strip — reads,
writes and gaps in distinct glyphs — so examples and tests can assert
the phase structure visually and programmatically.
"""

from __future__ import annotations

from .events import IOEvent

__all__ = ["render_timeline", "GLYPHS"]

GLYPHS = {"write": "W", "read": "R", "both": "#", "idle": "."}


def render_timeline(
    events: list[IOEvent],
    width: int = 100,
    ranks: list[int] | None = None,
) -> str:
    """Render a per-rank strip chart of ``width`` time buckets.

    Each bucket shows ``W`` when only writes were active for that rank,
    ``R`` for reads, ``#`` for both, ``.`` for no I/O.
    """
    if not events:
        return "(no I/O events)"
    t0 = min(e.t_start for e in events)
    t1 = max(e.t_end for e in events)
    span = max(t1 - t0, 1e-12)
    if ranks is None:
        ranks = sorted({e.rank for e in events})
    # bucket -> set of ops, per rank
    grid: dict[int, list[set]] = {r: [set() for _ in range(width)] for r in ranks}
    for e in events:
        if e.rank not in grid or e.op not in ("read", "write"):
            continue
        b0 = int((e.t_start - t0) / span * (width - 1))
        b1 = int((e.t_end - t0) / span * (width - 1))
        for b in range(b0, b1 + 1):
            grid[e.rank][b].add(e.op)
    lines = [f"timeline: {span:.3f}s across {width} buckets ('W'=write 'R'=read '#'=both)"]
    label_w = max(len(f"rank {r}") for r in ranks)
    for r in ranks:
        cells = []
        for ops in grid[r]:
            if ops == {"write"}:
                cells.append(GLYPHS["write"])
            elif ops == {"read"}:
                cells.append(GLYPHS["read"])
            elif ops:
                cells.append(GLYPHS["both"])
            else:
                cells.append(GLYPHS["idle"])
        lines.append(f"{f'rank {r}':>{label_w}} |{''.join(cells)}|")
    return "\n".join(lines)
