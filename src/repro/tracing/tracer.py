"""PAS2P-style I/O tracer.

Collects the :class:`~repro.tracing.events.IOEvent` stream of an MPI
run (the simulated analogue of preloading ``libpas2p_io.so``) and
answers the characterization queries of the paper's application
phase: operation counts and sizes per operation type (Tables II, V,
VIII), I/O time, transfer rates and IOPs per rank and globally.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .events import IOEvent

__all__ = ["IOTracer", "TraceSummary"]


@dataclass
class TraceSummary:
    """Aggregate characterization of a traced run (one operation type)."""

    op: str
    n_ops: int = 0
    total_bytes: int = 0
    total_time: float = 0.0
    block_sizes: dict[int, int] = field(default_factory=dict)  # nbytes -> op count

    @property
    def iops(self) -> float:
        return self.n_ops / self.total_time if self.total_time > 0 else 0.0

    @property
    def bandwidth(self) -> float:
        return self.total_bytes / self.total_time if self.total_time > 0 else 0.0

    @property
    def dominant_block(self) -> int:
        """The block size carrying the most operations."""
        if not self.block_sizes:
            return 0
        return max(self.block_sizes, key=lambda k: self.block_sizes[k])


class IOTracer:
    """Per-rank event capture with aggregate queries.

    ``world_size`` is the MPI world the capture belongs to, recorded
    when the tracer is wired into a world (``System.world`` /
    ``MPIWorld``).  It makes :attr:`nranks` and the per-rank averages
    (:meth:`io_time`) correct even when some ranks perform no I/O —
    counting only ranks *with events* silently drops idle ranks.
    """

    def __init__(self, world_size: Optional[int] = None):
        self.events: list[IOEvent] = []
        self._by_rank: dict[int, list[IOEvent]] = defaultdict(list)
        self.world_size: Optional[int] = world_size

    # -- capture -----------------------------------------------------------
    def record(self, rank: int, event: IOEvent) -> None:
        self.events.append(event)
        self._by_rank[rank].append(event)

    def set_world_size(self, nprocs: int) -> None:
        """Declare the world size at wiring time.

        A tracer reused across several worlds (e.g. one capture over a
        multi-job run) keeps the largest declared size.
        """
        self.world_size = max(self.world_size or 0, nprocs)

    def clear(self) -> None:
        self.events.clear()
        self._by_rank.clear()
        self.world_size = None

    # -- queries ------------------------------------------------------------
    @property
    def nranks(self) -> int:
        """Ranks in the capture: the declared world size when known,
        else the count of ranks that produced events."""
        if self.world_size is not None:
            return self.world_size
        return len(self._by_rank)

    def rank_events(self, rank: int) -> list[IOEvent]:
        return list(self._by_rank.get(rank, []))

    def ops(self, op: Optional[str] = None, rank: Optional[int] = None) -> list[IOEvent]:
        evs: Iterable[IOEvent] = self.events if rank is None else self._by_rank.get(rank, [])
        return [e for e in evs if op is None or e.op == op]

    def count_ops(self, op: str) -> int:
        """Total individual operations (bulk events expand by count)."""
        return sum(e.count for e in self.events if e.op == op)

    def summary(self, op: str) -> TraceSummary:
        s = TraceSummary(op=op)
        for e in self.events:
            if e.op != op:
                continue
            s.n_ops += e.count
            s.total_bytes += e.total_bytes
            s.total_time += e.duration
            s.block_sizes[e.nbytes] = s.block_sizes.get(e.nbytes, 0) + e.count
        return s

    def io_time(self, rank: Optional[int] = None) -> float:
        """Total time spent inside I/O calls.

        Per-rank I/O intervals may overlap across ranks; the paper's
        "I/O time" is the per-process sum averaged over ranks (each
        process observes its own blocking time).
        """
        if rank is not None:
            return sum(e.duration for e in self._by_rank.get(rank, []))
        if self.nranks == 0:
            return 0.0
        # average over the whole world, not only ranks with events —
        # idle ranks observe zero blocking time but still count
        return sum(
            sum(e.duration for e in evs) for evs in self._by_rank.values()
        ) / self.nranks

    def wall_io_span(self) -> float:
        """Wall-clock span from first I/O start to last I/O end."""
        if not self.events:
            return 0.0
        return max(e.t_end for e in self.events) - min(e.t_start for e in self.events)

    def transfer_rate(self, op: Optional[str] = None) -> float:
        """Aggregate achieved rate (bytes moved / wall span of those events)."""
        evs = [e for e in self.events if op is None or e.op == op]
        if not evs:
            return 0.0
        span = max(e.t_end for e in evs) - min(e.t_start for e in evs)
        total = sum(e.total_bytes for e in evs)
        return total / span if span > 0 else 0.0

    def block_size_table(self, op: str) -> dict[int, int]:
        """nbytes -> number of individual operations (paper Tables II/V/VIII)."""
        return dict(self.summary(op).block_sizes)
