"""Trace record types captured by the PAS2P-style I/O tracer.

The paper extends the PAS2P tracing tool with the MPI-2 I/O
primitives (``libpas2p_io.so`` preloaded into the application); the
simulated equivalent is a stream of :class:`IOEvent` records emitted
by the MPI-IO layer, one per I/O call, carrying enough geometry to
recover the application's access pattern, phases and weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage.base import AccessMode, classify_mode

__all__ = ["IOEvent", "PhaseEvent"]


@dataclass(frozen=True)
class IOEvent:
    """One MPI-IO call by one rank."""

    rank: int
    op: str  # "read" | "write" | "open" | "close" | "sync"
    offset: int
    nbytes: int
    count: int
    stride: Optional[int]
    t_start: float
    t_end: float
    path: str
    collective: bool = False

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def total_bytes(self) -> int:
        return self.nbytes * self.count

    @property
    def mode(self) -> AccessMode:
        return classify_mode(self.nbytes, self.count, self.stride)

    @property
    def bandwidth(self) -> float:
        """Achieved transfer rate in bytes/second (0 for instant events)."""
        d = self.duration
        return self.total_bytes / d if d > 0 else 0.0

    def signature(self) -> tuple:
        """Pattern signature used by phase detection (geometry, not time)."""
        return (self.op, self.nbytes, self.count, self.mode.value, self.path)

    def replay_key(self, phase_epoch: int = 0) -> tuple:
        """The independent-I/O key the phase-replay accelerator uses
        for this event's geometry.

        Mirrors the geometry prefix of ``MPIFile._phase_key``: the
        :meth:`signature` geometry plus the issuing rank and its
        barrier epoch (so repetitions of the same pattern in different
        barrier-delimited program phases — MADbench2's S vs W writes —
        stay distinct phases), with the raw stride instead of the
        classified mode.  Offsets are deliberately absent: successive
        occurrences of an appending phase land at different offsets but
        share the key.  The live replay key carries one extra trailing
        element — the filesystem's ``state_token`` (cache-residency /
        flush regime) — which only exists during simulation, so it is
        omitted here.
        """
        return (
            self.rank,
            phase_epoch,
            self.path,
            self.op,
            self.nbytes,
            self.count,
            self.stride if self.stride is not None else 0,
        )


@dataclass(frozen=True)
class PhaseEvent:
    """A detected application I/O phase (a repeated access pattern)."""

    phase_id: int
    op: str
    signature: tuple
    occurrences: int
    total_bytes: int
    total_time: float
    ranks: int

    @property
    def weight(self) -> float:
        """Fraction of traced I/O time spent in this phase (set by the
        detector via total_time normalisation)."""
        return self.total_time
