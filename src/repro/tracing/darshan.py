"""Darshan-style trace summaries and portable trace files.

The paper's related work (Carns et al., [7][8]) characterizes
petascale I/O with Darshan: compact per-file, per-rank counters
rather than full event logs.  This module provides the equivalent
view over an :class:`~repro.tracing.tracer.IOTracer` capture, plus a
CSV round-trip so traces can be saved, shipped and re-analysed
without re-running a simulation.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Optional

from ..units import fmt_bytes
from .events import IOEvent
from .tracer import IOTracer

__all__ = ["FileRecord", "DarshanReport", "build_report", "events_to_csv", "events_from_csv"]


@dataclass
class FileRecord:
    """Darshan-like per-file counters."""

    path: str
    ranks: set = field(default_factory=set)
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0
    max_offset: int = 0
    collective_ops: int = 0
    independent_ops: int = 0
    size_histogram: dict[str, int] = field(default_factory=dict)

    #: Darshan's access-size buckets
    BUCKETS = (
        ("0-100", 0, 100),
        ("100-1K", 100, 1024),
        ("1K-10K", 1024, 10240),
        ("10K-100K", 10240, 102400),
        ("100K-1M", 102400, 1 << 20),
        ("1M-4M", 1 << 20, 4 << 20),
        ("4M+", 4 << 20, float("inf")),
    )

    def add(self, e: IOEvent) -> None:
        self.ranks.add(e.rank)
        if e.op == "read":
            self.reads += e.count
            self.bytes_read += e.total_bytes
            self.read_time_s += e.duration
        elif e.op == "write":
            self.writes += e.count
            self.bytes_written += e.total_bytes
            self.write_time_s += e.duration
        # extent of a strided bulk op: the last of `count` transfers
        # starts at offset + (count-1)*stride and covers nbytes — using
        # count*stride would overstate the file extent whenever
        # stride > nbytes (replay specs would allocate oversized files)
        if e.stride is not None:
            extent = e.offset + (e.count - 1) * e.stride + e.nbytes
        else:
            extent = e.offset + e.count * e.nbytes
        self.max_offset = max(self.max_offset, extent)
        if e.collective:
            self.collective_ops += e.count
        else:
            self.independent_ops += e.count
        for name, lo, hi in self.BUCKETS:
            if lo <= e.nbytes < hi:
                self.size_histogram[name] = self.size_histogram.get(name, 0) + e.count
                break

    @property
    def shared(self) -> bool:
        return len(self.ranks) > 1

    @property
    def dominant_bucket(self) -> Optional[str]:
        if not self.size_histogram:
            return None
        return max(self.size_histogram, key=lambda k: self.size_histogram[k])


@dataclass
class DarshanReport:
    """Whole-run summary: one record per file plus global counters."""

    files: dict[str, FileRecord] = field(default_factory=dict)
    nranks: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(f.bytes_read + f.bytes_written for f in self.files.values())

    @property
    def shared_files(self) -> list[str]:
        return [p for p, f in self.files.items() if f.shared]

    def render(self) -> str:
        lines = [f"darshan-style summary: {len(self.files)} file(s), {self.nranks} rank(s)"]
        for path, f in sorted(self.files.items()):
            lines.append(
                f"  {path} [{'shared' if f.shared else 'unique'}]"
                f" reads={f.reads} ({fmt_bytes(f.bytes_read)})"
                f" writes={f.writes} ({fmt_bytes(f.bytes_written)})"
                f" dominant access={f.dominant_bucket}"
                f" collective={f.collective_ops}/{f.collective_ops + f.independent_ops}"
            )
        return "\n".join(lines)


def build_report(tracer: IOTracer) -> DarshanReport:
    """Fold an event capture into per-file counters."""
    report = DarshanReport(nranks=tracer.nranks)
    for e in tracer.events:
        rec = report.files.get(e.path)
        if rec is None:
            rec = report.files[e.path] = FileRecord(path=e.path)
        rec.add(e)
    return report


# ----------------------------------------------------------------------
# portable trace files
# ----------------------------------------------------------------------
_FIELDS = ("rank", "op", "offset", "nbytes", "count", "stride", "t_start", "t_end", "path", "collective")

#: leading metadata line of a portable trace; carries what the event
#: rows cannot (the MPI world size, so idle ranks survive round trips)
_META_PREFIX = "#repro-trace"
_META_VERSION = 1


def events_to_csv(tracer: IOTracer) -> str:
    """Serialise the event stream (offsets/times exact, text-portable).

    The first line is a ``#repro-trace`` metadata comment recording the
    format version and the capture's world size; the CSV header and
    rows follow.  :func:`events_from_csv` also accepts plain headerless
    captures without the metadata line.
    """
    buf = io.StringIO()
    buf.write(f"{_META_PREFIX} v{_META_VERSION} world_size={tracer.nranks}\n")
    w = csv.writer(buf)
    w.writerow(_FIELDS)
    for e in tracer.events:
        w.writerow([
            e.rank, e.op, e.offset, e.nbytes, e.count,
            "" if e.stride is None else e.stride,
            repr(e.t_start), repr(e.t_end), e.path, int(e.collective),
        ])
    return buf.getvalue()


def events_from_csv(text: str) -> IOTracer:
    """Rebuild a tracer from :func:`events_to_csv` output."""
    world_size: Optional[int] = None
    lines = text.splitlines(keepends=True)
    body = 0
    while body < len(lines) and lines[body].startswith("#"):
        line = lines[body].strip()
        if line.startswith(_META_PREFIX):
            for token in line.split():
                if token.startswith("world_size="):
                    world_size = int(token.partition("=")[2])
        body += 1
    tracer = IOTracer(world_size=world_size)
    for rec in csv.DictReader(io.StringIO("".join(lines[body:]))):
        ev = IOEvent(
            rank=int(rec["rank"]),
            op=rec["op"],
            offset=int(rec["offset"]),
            nbytes=int(rec["nbytes"]),
            count=int(rec["count"]),
            stride=None if rec["stride"] == "" else int(rec["stride"]),
            t_start=float(rec["t_start"]),
            t_end=float(rec["t_end"]),
            path=rec["path"],
            collective=bool(int(rec["collective"])),
        )
        tracer.record(ev.rank, ev)
    return tracer
