"""PAS2P-style application I/O tracing, phase detection and timelines."""

from .darshan import build_report, DarshanReport, events_from_csv, events_to_csv, FileRecord
from .events import IOEvent, PhaseEvent
from .ingest import (
    IngestError,
    load_trace,
    load_trace_workload,
    report_to_spec,
    trace_coverage,
    trace_to_spec,
)
from .phases import PhaseDetector, detect_phases
from .timeline import render_timeline
from .tracer import IOTracer, TraceSummary

__all__ = [
    "build_report",
    "DarshanReport",
    "events_from_csv",
    "events_to_csv",
    "FileRecord",
    "IngestError",
    "load_trace",
    "load_trace_workload",
    "report_to_spec",
    "trace_coverage",
    "trace_to_spec",
    "IOEvent",
    "PhaseEvent",
    "PhaseDetector",
    "detect_phases",
    "render_timeline",
    "IOTracer",
    "TraceSummary",
]
