"""Application I/O phase detection.

The paper (§III-A2) extends PAS2P: "we propose to identify the
significant phases with an access pattern and their weights.  Due to
the fact that scientific applications show a repetitive behavior, m
phases will exist in the application."

The detector groups the per-rank event stream into *phases* by
pattern similarity: consecutive events whose signature (operation,
block size, access mode, file) matches — allowing interleaved
communication gaps — belong to one phase occurrence; occurrences with
equal signatures are the repetitions of the same phase.  Each phase
gets a *weight*: its share of total I/O time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from .events import IOEvent, PhaseEvent

__all__ = ["PhaseDetector", "detect_phases"]


@dataclass
class _Accumulator:
    occurrences: int = 0
    total_bytes: int = 0
    total_time: float = 0.0
    ranks: set = None

    def __post_init__(self):
        if self.ranks is None:
            self.ranks = set()


class PhaseDetector:
    """Similarity-based phase extraction from an event stream."""

    def __init__(self, gap_tolerance_s: float = float("inf")):
        #: maximum silent gap inside one phase occurrence; the default
        #: merges by signature only (the paper's per-pattern view)
        self.gap_tolerance_s = gap_tolerance_s

    def detect(self, events: list[IOEvent]) -> list[PhaseEvent]:
        """Group events into phases; returns phases ordered by first
        appearance, each with occurrence count and weight basis."""
        if not events:
            return []
        ordered = sorted(events, key=lambda e: (e.t_start, e.rank))
        # First pass: split each rank's stream into occurrences.
        per_rank: dict[int, list[IOEvent]] = defaultdict(list)
        for e in ordered:
            per_rank[e.rank].append(e)

        acc: dict[tuple, _Accumulator] = {}
        first_seen: dict[tuple, float] = {}
        for rank, evs in per_rank.items():
            prev_sig = None
            prev_end = None
            for e in evs:
                sig = e.signature()
                new_occurrence = (
                    sig != prev_sig
                    or (prev_end is not None and e.t_start - prev_end > self.gap_tolerance_s)
                )
                a = acc.get(sig)
                if a is None:
                    a = acc[sig] = _Accumulator()
                    first_seen[sig] = e.t_start
                if new_occurrence:
                    a.occurrences += 1
                a.total_bytes += e.total_bytes
                a.total_time += e.duration
                a.ranks.add(rank)
                prev_sig, prev_end = sig, e.t_end
        phases = []
        for i, sig in enumerate(sorted(acc, key=lambda s: first_seen[s])):
            a = acc[sig]
            phases.append(
                PhaseEvent(
                    phase_id=i,
                    op=sig[0],
                    signature=sig,
                    occurrences=a.occurrences,
                    total_bytes=a.total_bytes,
                    total_time=a.total_time,
                    ranks=len(a.ranks),
                )
            )
        return phases

    def occurrence_spans(
        self, events: list[IOEvent]
    ) -> dict[tuple, list[tuple[float, float]]]:
        """Per-signature list of occurrence time spans.

        Each span is the ``(t_start, t_end)`` envelope of one
        occurrence, split by the same rules as :meth:`detect` (rank
        stream, signature change, ``gap_tolerance_s``).  Spans from
        different ranks stay separate occurrences; the list is ordered
        by span start.  This is what the replay accelerator
        extrapolates over — the per-occurrence envelope is exactly the
        duration it verifies for steadiness — and what the edge-case
        tests inspect.
        """
        if not events:
            return {}
        ordered = sorted(events, key=lambda e: (e.t_start, e.rank))
        per_rank: dict[int, list[IOEvent]] = defaultdict(list)
        for e in ordered:
            per_rank[e.rank].append(e)
        spans: dict[tuple, list[tuple[float, float]]] = defaultdict(list)
        for rank, evs in per_rank.items():
            prev_sig = None
            prev_end = None
            cur: Optional[list[float]] = None
            for e in evs:
                sig = e.signature()
                new_occurrence = (
                    sig != prev_sig
                    or (prev_end is not None and e.t_start - prev_end > self.gap_tolerance_s)
                )
                if new_occurrence:
                    if cur is not None:
                        spans[prev_sig].append((cur[0], cur[1]))
                    cur = [e.t_start, e.t_end]
                else:
                    cur[1] = max(cur[1], e.t_end)
                prev_sig, prev_end = sig, e.t_end
            if cur is not None:
                spans[prev_sig].append((cur[0], cur[1]))
        return {sig: sorted(sp) for sig, sp in spans.items()}

    @staticmethod
    def weights(phases: list[PhaseEvent]) -> dict[int, float]:
        """phase_id -> fraction of total I/O time (the PAS2P weight)."""
        total = sum(p.total_time for p in phases)
        if total <= 0:
            n = len(phases)
            return {p.phase_id: 1.0 / n for p in phases} if n else {}
        return {p.phase_id: p.total_time / total for p in phases}


def detect_phases(events: list[IOEvent], gap_tolerance_s: float = float("inf")) -> list[PhaseEvent]:
    """Convenience wrapper over :class:`PhaseDetector`."""
    return PhaseDetector(gap_tolerance_s).detect(events)
