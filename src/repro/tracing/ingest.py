"""Trace ingestion: portable trace files folded back into workloads.

The paper's methodology characterizes an application from its traced
I/O behavior; this module closes the loop by turning captured traces
back into *runnable* workloads, so every imported trace is a new
evaluation scenario for free (ROADMAP item 2, after the
Directly-Follows-Graph replay approach in PAPERS.md):

* :func:`load_trace` reads the portable ``events_to_csv`` format
  (Darshan-style per-event rows plus a world-size header).
* :func:`trace_to_spec` folds the event stream through
  :class:`~repro.tracing.phases.PhaseDetector` grouping into a
  :class:`~repro.workloads.synthetic.SyntheticSpec` phase program —
  geometry (block size, bulk count, stride), per-rank repetitions,
  collective flags and layout (shared vs file-per-process) are all
  recovered from the events.
* :func:`report_to_spec` builds a *representative* spec from the
  compressed per-file counters of a :class:`~repro.tracing.darshan.
  DarshanReport` — lossier than event replay, but works from the
  summary alone.
* :func:`load_trace_workload` wires a trace file straight into an
  evaluation-ready application.

Reconstruction is deterministic: the same trace always yields the
same spec, so a replayed trace shares its compiled fingerprint with
any spec file that compiles to the same phase program.
"""

from __future__ import annotations

import re
from collections import defaultdict
from pathlib import Path
from typing import Optional, Union

from typing import TYPE_CHECKING

from .darshan import DarshanReport, events_from_csv
from .events import IOEvent
from .tracer import IOTracer

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..workloads.synthetic import SyntheticSpec

# NOTE: repro.workloads imports repro.tracing (the tracer types), so
# the reverse imports here stay inside function bodies — ingestion is
# the one place the trace layer *produces* workload objects.

__all__ = [
    "IngestError",
    "load_trace",
    "trace_to_spec",
    "report_to_spec",
    "load_trace_workload",
    "trace_coverage",
]

#: per-process file name convention: "<base>.<rank>"
_RANK_SUFFIX_RE = re.compile(r"^(?P<base>.+)\.(?P<rank>\d+)$")


class IngestError(ValueError):
    """A trace could not be folded into a runnable workload."""


def load_trace(source: Union[str, Path]) -> IOTracer:
    """An :class:`IOTracer` from a portable trace file or literal text."""
    if isinstance(source, Path):
        text = source.read_text(encoding="utf-8")
    elif isinstance(source, str) and "\n" not in source:
        # a newline-free string is a file name, never literal CSV (a
        # real capture is multi-line) — fail clearly when it's missing
        if not Path(source).is_file():
            raise IngestError(f"no such trace file: {source!r}")
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    try:
        return events_from_csv(text)
    except (KeyError, ValueError, TypeError) as exc:
        raise IngestError(f"malformed trace: {exc}")


# ----------------------------------------------------------------------
# event replay: trace -> phase program
# ----------------------------------------------------------------------
def _strip_rank_suffix(path: str) -> str:
    m = _RANK_SUFFIX_RE.match(path)
    return m.group("base") if m else path


def _file_per_process(events: list[IOEvent], nranks: int) -> Optional[str]:
    """The common base path if the trace is file-per-process, else None.

    File-per-process means: more than one file, every file touched by
    exactly one rank, and all paths share one ``<base>.<rank>`` stem.
    """
    by_path: dict[str, set] = defaultdict(set)
    for e in events:
        by_path[e.path].add(e.rank)
    if len(by_path) < 2 or any(len(r) > 1 for r in by_path.values()):
        return None
    bases = set()
    for path in by_path:
        m = _RANK_SUFFIX_RE.match(path)
        if m is None:
            return None
        bases.add(m.group("base"))
    return bases.pop() if len(bases) == 1 else None


def trace_to_spec(tracer: IOTracer, infer_compute: bool = False) -> "SyntheticSpec":
    """Fold a traced run into a replayable phase program.

    Events group by the :meth:`~repro.tracing.events.IOEvent.signature`
    geometry the phase detector uses (operation, block size, bulk
    count, access mode, file), in order of first appearance — each
    group becomes one :class:`SyntheticPhase` whose repetitions are
    the per-rank event count.  The layout (shared file vs
    file-per-process, rank-disjoint vs overlapping offsets) is
    recovered from paths and offsets.

    For a shared-file trace touching several files the dominant file
    (most bytes moved) is replayed and the rest dropped — check
    :func:`trace_coverage` for the retained fraction.

    ``infer_compute=True`` additionally reconstructs per-repetition
    compute gaps from the mean idle time between a rank's consecutive
    same-phase events.  It defaults to off because captured gaps fold
    in synchronization noise, which would break the exact
    spec -> trace -> spec fingerprint round trip.
    """
    from ..workloads.synthetic import SyntheticPhase, SyntheticSpec

    events = [e for e in tracer.events if e.op in ("read", "write")]
    if not events:
        raise IngestError("trace has no read/write events to replay")
    nprocs = max(tracer.nranks, 1)

    fpp_base = _file_per_process(events, nprocs)
    if fpp_base is None:
        # shared file: keep the dominant path by bytes moved
        bytes_by_path: dict[str, int] = defaultdict(int)
        for e in events:
            bytes_by_path[e.path] += e.total_bytes
        dominant = max(sorted(bytes_by_path), key=lambda p: bytes_by_path[p])
        events = [e for e in events if e.path == dominant]
        path, per_process = dominant, False
    else:
        path, per_process = fpp_base, True

    ordered = sorted(events, key=lambda e: (e.t_start, e.rank))
    # group by geometry signature with per-process paths normalised,
    # so every rank's private file folds into one phase
    groups: dict[tuple, list[IOEvent]] = {}
    order: list[tuple] = []
    for e in ordered:
        sig = (e.op, e.nbytes, e.count, e.mode.value, _strip_rank_suffix(e.path))
        if sig not in groups:
            groups[sig] = []
            order.append(sig)
        groups[sig].append(e)

    # rank-disjoint detection (shared file only): distinct ranks using
    # identical offsets for the same geometry means overlapping access
    rank_disjoint = True
    if not per_process and nprocs > 1:
        for evs in groups.values():
            first_offset: dict[int, int] = {}
            for e in evs:
                if e.rank not in first_offset:
                    first_offset[e.rank] = e.offset
            offs = list(first_offset.values())
            if len(offs) > 1 and len(set(offs)) == 1:
                rank_disjoint = False
                break

    phases: list[SyntheticPhase] = []
    for sig in order:
        op, nbytes, count, _mode, _path = sig
        evs = groups[sig]
        by_rank: dict[int, list[IOEvent]] = defaultdict(list)
        for e in evs:
            by_rank[e.rank].append(e)
        repetitions = max(len(v) for v in by_rank.values())
        stride = evs[0].stride
        collective = any(e.collective for e in evs)
        compute_s = 0.0
        if infer_compute:
            gaps = []
            for rank_evs in by_rank.values():
                for prev, nxt in zip(rank_evs, rank_evs[1:]):
                    gaps.append(max(0.0, nxt.t_start - prev.t_end))
            if gaps:
                compute_s = sum(gaps) / len(gaps)
        phases.append(
            SyntheticPhase(
                op=op,
                nbytes=nbytes,
                count=count,
                stride=stride,
                repetitions=repetitions,
                collective=collective,
                compute_s=compute_s,
            )
        )
    return SyntheticSpec(
        phases=tuple(phases),
        nprocs=nprocs,
        path=path,
        per_process_files=per_process,
        rank_disjoint=rank_disjoint,
    )


def trace_coverage(tracer: IOTracer, spec: "SyntheticSpec") -> float:
    """Fraction of the trace's read/write bytes the spec replays.

    1.0 when every event folded into the spec; lower when a
    multi-file shared trace was reduced to its dominant file.
    """
    total = sum(e.total_bytes for e in tracer.events if e.op in ("read", "write"))
    if total == 0:
        return 1.0
    if spec.per_process_files:
        return 1.0
    kept = sum(
        e.total_bytes
        for e in tracer.events
        if e.op in ("read", "write") and e.path == spec.path
    )
    return kept / total


# ----------------------------------------------------------------------
# counter replay: DarshanReport -> representative spec
# ----------------------------------------------------------------------
def report_to_spec(report: DarshanReport) -> "SyntheticSpec":
    """A representative phase program from per-file Darshan counters.

    The compressed counters carry no event ordering, so this is
    necessarily coarser than :func:`trace_to_spec`: the dominant file
    (most bytes) becomes one write and/or one read phase whose block
    size is the mean access size, repetitions spread the per-file
    operation count over the ranks, and the collective flag follows
    the majority of operations.
    """
    from ..workloads.synthetic import SyntheticPhase, SyntheticSpec

    if not report.files:
        raise IngestError("report has no file records")
    nprocs = max(report.nranks, 1)
    dominant = max(
        sorted(report.files),
        key=lambda p: report.files[p].bytes_read + report.files[p].bytes_written,
    )
    rec = report.files[dominant]
    per_process = not rec.shared and len(report.files) > 1 and not report.shared_files
    path = _strip_rank_suffix(dominant) if per_process else dominant
    collective = rec.collective_ops >= rec.independent_ops and rec.collective_ops > 0

    phases: list[SyntheticPhase] = []
    for op, n_ops, total in (
        ("write", rec.writes, rec.bytes_written),
        ("read", rec.reads, rec.bytes_read),
    ):
        if n_ops <= 0 or total <= 0:
            continue
        nbytes = max(1, total // n_ops)
        phases.append(
            SyntheticPhase(
                op=op,
                nbytes=nbytes,
                count=1,
                stride=None,
                repetitions=max(1, round(n_ops / nprocs)),
                collective=collective,
            )
        )
    if not phases:
        raise IngestError(f"file record {dominant!r} has no transferred bytes")
    return SyntheticSpec(
        phases=tuple(phases),
        nprocs=nprocs,
        path=path,
        per_process_files=per_process,
        rank_disjoint=True,
    )


def load_trace_workload(source: Union[str, Path], infer_compute: bool = False):
    """A ready-to-evaluate application replaying the trace in ``source``.

    Returns a :class:`~repro.workloads.apps.SyntheticApplication`
    labelled after the trace file.
    """
    from ..workloads.apps import SyntheticApplication

    tracer = load_trace(source)
    label = "trace"
    if isinstance(source, Path):
        label = f"trace-{source.stem}"
    elif isinstance(source, str) and "\n" not in source and Path(source).is_file():
        label = f"trace-{Path(source).stem}"
    spec = trace_to_spec(tracer, infer_compute=infer_compute)
    return SyntheticApplication(spec=spec, label=label)
