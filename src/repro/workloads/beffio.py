"""b_eff_io-like effective-I/O-bandwidth benchmark.

The paper cites b_eff_io (Rabenseifner & Koniges) as an alternative
to IOR for characterizing the I/O library level.  b_eff_io samples a
matrix of *access patterns* × *chunk sizes* through MPI-IO and folds
them into a single **effective bandwidth** figure.  The model covers
the benchmark's pattern families:

* pattern 0 — strided collective access, one shared file;
* pattern 1 — strided collective, *individual* chunk boundaries;
* pattern 2 — segmented access, one shared file;
* pattern 3 — segmented access, one file per process;
* pattern 4 — non-collective (independent) segmented access.

``b_eff_io = Σ weighted pattern bandwidths`` using the benchmark's
geometric weighting over chunk sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.base import KiB, MiB
from ..clusters.builder import System

__all__ = ["BeffIOResult", "run_beffio", "PATTERNS"]

PATTERNS = ("strided_collective", "strided_individual", "segmented", "seg_per_process", "noncollective")

_DEFAULT_CHUNKS = (32 * KiB, 256 * KiB, 1 * MiB)


@dataclass
class BeffIOResult:
    nprocs: int
    #: pattern -> {chunk_bytes: aggregate write Bps}
    write_Bps: dict[str, dict[int, float]] = field(default_factory=dict)
    read_Bps: dict[str, dict[int, float]] = field(default_factory=dict)

    def effective_bandwidth(self, op: str = "write") -> float:
        """Geometric-style average over patterns and chunk sizes."""
        table = self.write_Bps if op == "write" else self.read_Bps
        rates = [r for chunks in table.values() for r in chunks.values() if r > 0]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)


def run_beffio(
    system: System,
    nprocs: int,
    path: str = "/nfs/beffio",
    chunk_sizes: tuple = _DEFAULT_CHUNKS,
    chunks_per_pattern: int = 32,
) -> BeffIOResult:
    """Run the pattern matrix; returns aggregate rates per cell."""
    env = system.env
    result = BeffIOResult(nprocs=nprocs)
    for p in PATTERNS:
        result.write_Bps[p] = {}
        result.read_Bps[p] = {}
    marks: dict = {}

    def program(mpi):
        for pattern in PATTERNS:
            per_file = pattern == "seg_per_process"
            # per-process files have no shared collective context
            collective = pattern != "noncollective" and not per_file
            for chunk in chunk_sizes:
                if per_file:
                    f = yield mpi.file_open_self(f"{path}/{pattern}_{chunk}_{mpi.rank}.dat", "w")
                else:
                    f = yield mpi.file_open(f"{path}/{pattern}_{chunk}.dat", "w")
                yield mpi.barrier()
                t0 = mpi.now
                total = chunk * chunks_per_pattern
                if pattern.startswith("strided"):
                    # round-robin interleaved chunks across ranks
                    stride = chunk * mpi.size
                    off = chunk * mpi.rank
                    if collective:
                        yield f.write_at_all(off, chunk, count=chunks_per_pattern, stride=stride)
                    else:
                        yield f.write_at(off, chunk, count=chunks_per_pattern, stride=stride)
                else:
                    off = 0 if per_file else mpi.rank * total
                    if collective:
                        yield f.write_at_all(off, chunk, count=chunks_per_pattern)
                    else:
                        yield f.write_at(off, chunk, count=chunks_per_pattern)
                yield mpi.barrier()
                t1 = mpi.now
                # read the pattern back
                if pattern.startswith("strided"):
                    stride = chunk * mpi.size
                    off = chunk * mpi.rank
                    if collective:
                        yield f.read_at_all(off, chunk, count=chunks_per_pattern, stride=stride)
                    else:
                        yield f.read_at(off, chunk, count=chunks_per_pattern, stride=stride)
                else:
                    off = 0 if per_file else mpi.rank * total
                    if collective:
                        yield f.read_at_all(off, chunk, count=chunks_per_pattern)
                    else:
                        yield f.read_at(off, chunk, count=chunks_per_pattern)
                yield mpi.barrier()
                t2 = mpi.now
                if per_file:
                    yield f.close_self()
                else:
                    yield f.close()
                if mpi.rank == 0:
                    marks[(pattern, chunk)] = (t0, t1, t2)
        return None

    world = system.world(nprocs)
    env.run(world.run_program(program, name="beffio"))
    for (pattern, chunk), (t0, t1, t2) in marks.items():
        total = chunk * chunks_per_pattern * nprocs
        result.write_Bps[pattern][chunk] = total / (t1 - t0) if t1 > t0 else 0.0
        result.read_Bps[pattern][chunk] = total / (t2 - t1) if t2 > t1 else 0.0
    return result
