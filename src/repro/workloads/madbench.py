"""MADbench2 application model.

MADbench2 (Carter, Borrill, Oliker) exercises the I/O, communication
and calculation subsystems with the matrix workload of a CMB angular
power-spectrum analysis.  In *IO mode* (the paper's setup) all
calculations and communications are replaced by busy-work and the D
function is skipped, leaving three I/O phases over ``NBIN`` component
matrices:

* **S** — derives and *writes* each matrix (8 writes/process);
* **W** — *reads* each matrix back, busy-works, *writes* it again
  (8 reads + 8 writes/process);
* **C** — *reads* each matrix (8 reads/process).

The matrices are ``NPIX² ×  8`` bytes, distributed over the processes:
with the paper's ``18 KPIX`` and 16 processes each operation moves
162 MB per process; with 64 processes, 40.5 MB (Table VIII).  Files
are either per-process (``FILETYPE=UNIQUE``, COMM_SELF) or one shared
file (``FILETYPE=SHARED``).  MADbench2 reports the time spent in each
function split by operation — the paper's S_w, W_w, W_r, C_r columns
(Tables IX–XI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.base import MiB
from ..clusters.builder import System
from ..tracing import IOTracer

__all__ = ["MadBenchConfig", "MadBenchResult", "run_madbench", "characterize_madbench"]


@dataclass(frozen=True)
class MadBenchConfig:
    kpix: int = 18
    nbin: int = 8
    nprocs: int = 16
    filetype: str = "unique"  # "unique" | "shared"
    iomode: str = "sync"
    path: str = "/nfs/madbench"
    #: busy-work seconds between consecutive I/O operations
    busywork_s: float = 0.5

    def __post_init__(self):
        if self.filetype not in ("unique", "shared"):
            raise ValueError(f"filetype must be 'unique' or 'shared', got {self.filetype!r}")
        if self.iomode not in ("sync",):
            raise ValueError("only IOMODE=SYNC is modelled")

    @property
    def npix(self) -> int:
        return self.kpix * 1000

    @property
    def matrix_bytes(self) -> int:
        """One component matrix, whole system."""
        return self.npix * self.npix * 8

    @property
    def block_bytes(self) -> int:
        """Per-process share of one matrix = one I/O operation."""
        return self.matrix_bytes // self.nprocs

    @property
    def file_bytes_per_proc(self) -> int:
        return self.block_bytes * self.nbin


@dataclass
class FunctionTimes:
    """Per-function accumulated I/O time and bytes (averaged over ranks)."""

    read_s: float = 0.0
    write_s: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0

    def read_rate(self) -> float:
        return self.bytes_read / self.read_s if self.read_s > 0 else 0.0

    def write_rate(self) -> float:
        return self.bytes_written / self.write_s if self.write_s > 0 else 0.0


@dataclass
class MadBenchResult:
    config: MadBenchConfig
    execution_time: float = 0.0
    functions: dict[str, FunctionTimes] = field(default_factory=dict)
    tracer: object = None
    #: phase-replay accelerator statistics of the run (ReplayStats)
    replay: object = None

    #: paper column names -> (function, op)
    COLUMNS = {
        "S_w": ("S", "write"),
        "W_w": ("W", "write"),
        "W_r": ("W", "read"),
        "C_r": ("C", "read"),
    }

    def rate(self, column: str) -> float:
        fn, op = self.COLUMNS[column]
        ft = self.functions[fn]
        return ft.read_rate() if op == "read" else ft.write_rate()

    def time(self, column: str) -> float:
        fn, op = self.COLUMNS[column]
        ft = self.functions[fn]
        return ft.read_s if op == "read" else ft.write_s

    @property
    def io_time(self) -> float:
        return sum(f.read_s + f.write_s for f in self.functions.values())


def characterize_madbench(config: MadBenchConfig) -> dict:
    """Static characterization (paper Table VIII)."""
    per_file = config.nprocs if config.filetype == "shared" else 1
    nfiles = 1 if config.filetype == "shared" else config.nprocs
    reads_per_proc = 2 * config.nbin  # W + C
    writes_per_proc = 2 * config.nbin  # S + W
    return {
        "num_files": nfiles,
        "numio_read": reads_per_proc * per_file if config.filetype == "shared" else reads_per_proc,
        "numio_write": writes_per_proc * per_file if config.filetype == "shared" else writes_per_proc,
        "numio_read_total": reads_per_proc * config.nprocs,
        "numio_write_total": writes_per_proc * config.nprocs,
        "block_bytes": config.block_bytes,
        "numio_open": nfiles if config.filetype == "shared" else 1,
        "nprocs": config.nprocs,
    }


def run_madbench(
    system: System, config: MadBenchConfig, tracer: IOTracer | None = None
) -> MadBenchResult:
    """Execute the MADbench2 IO-mode model; returns per-function metrics."""
    env = system.env
    tracer = tracer if tracer is not None else IOTracer()
    world = system.world(config.nprocs, tracer=tracer)
    result = MadBenchResult(config=config)
    for fn in ("S", "W", "C"):
        result.functions[fn] = FunctionTimes()

    nb = config.block_bytes

    # per-rank accumulators: {fn: [read_s, write_s]}
    times = {fn: [[0.0, 0.0] for _ in range(config.nprocs)] for fn in "SWC"}

    def offset_of(rank: int, b: int) -> int:
        if config.filetype == "shared":
            return b * config.matrix_bytes + rank * nb
        return b * nb

    def program(mpi):
        if config.filetype == "shared":
            f = yield mpi.file_open(f"{config.path}/data.dat", "w")
        else:
            f = yield mpi.file_open_self(f"{config.path}/data_{mpi.rank}.dat", "w")
        # ---- S: write each component matrix --------------------------------
        for b in range(config.nbin):
            yield mpi.compute(seconds=config.busywork_s)
            t0 = mpi.now
            yield f.write_at(offset_of(mpi.rank, b), nb)
            times["S"][mpi.rank][1] += mpi.now - t0
        yield mpi.barrier()
        # ---- W: read, busy-work, write -------------------------------------
        for b in range(config.nbin):
            t0 = mpi.now
            yield f.read_at(offset_of(mpi.rank, b), nb)
            times["W"][mpi.rank][0] += mpi.now - t0
            yield mpi.compute(seconds=config.busywork_s)
            t0 = mpi.now
            yield f.write_at(offset_of(mpi.rank, b), nb)
            times["W"][mpi.rank][1] += mpi.now - t0
        yield mpi.barrier()
        # ---- C: read ---------------------------------------------------------
        for b in range(config.nbin):
            t0 = mpi.now
            yield f.read_at(offset_of(mpi.rank, b), nb)
            times["C"][mpi.rank][0] += mpi.now - t0
            yield mpi.compute(seconds=config.busywork_s)
        if config.filetype == "shared":
            yield f.close()
        else:
            yield f.close_self()
        return None

    t_start = env.now
    env.run(world.run_program(program, name=f"madbench-{config.filetype}"))
    result.execution_time = env.now - t_start

    n = config.nprocs
    for fn in "SWC":
        ft = result.functions[fn]
        ft.read_s = sum(t[0] for t in times[fn]) / n
        ft.write_s = sum(t[1] for t in times[fn]) / n
    # aggregate bytes over all ranks; with the mean per-rank phase time
    # this yields the aggregate achieved transfer rate of each phase
    result.functions["S"].bytes_written = nb * config.nbin * n
    result.functions["W"].bytes_read = nb * config.nbin * n
    result.functions["W"].bytes_written = nb * config.nbin * n
    result.functions["C"].bytes_read = nb * config.nbin * n
    result.tracer = tracer
    result.replay = world.replay.stats
    return result
