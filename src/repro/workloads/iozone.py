"""IOzone-like filesystem benchmark.

The paper characterizes the local and network filesystem levels with
IOzone (Figs. 5 and 13): block-level sequential tests with a file
twice the node's RAM, record (block) sizes swept from 32 KiB to
16 MiB.  This module reproduces that methodology against a simulated
node's VFS and additionally measures strided and random patterns so
the performance tables can answer every access mode the search
algorithm (paper Fig. 11) may be asked about.

Tests per block size, in IOzone's order: ``write`` (fresh file),
``rewrite``, ``read``, ``reread`` — then optional ``strided read/
write`` and ``random read/write`` passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..simengine import Environment
from ..storage.base import AccessMode, IORequest, KiB, MiB
from ..clusters.builder import System

__all__ = ["IOzoneRow", "IOzoneResult", "run_iozone", "DEFAULT_BLOCKS"]

DEFAULT_BLOCKS = tuple((32 * KiB) << k for k in range(10))  # 32 KiB .. 16 MiB


@dataclass(frozen=True)
class IOzoneRow:
    """One measurement: a (test, block size, mode) combination."""

    test: str  # write / rewrite / read / reread / strided_* / random_*
    op: str  # read | write
    block_bytes: int
    mode: AccessMode
    rate_Bps: float
    elapsed_s: float
    total_bytes: int


@dataclass
class IOzoneResult:
    node: str
    path: str
    file_bytes: int
    rows: list[IOzoneRow] = field(default_factory=list)

    def rate(self, test: str, block_bytes: int) -> float:
        for r in self.rows:
            if r.test == test and r.block_bytes == block_bytes:
                return r.rate_Bps
        raise KeyError((test, block_bytes))

    def by_test(self, test: str) -> list[IOzoneRow]:
        return [r for r in self.rows if r.test == test]


#: (test name, op, stride factor or None, random?) in run order
_SEQ_TESTS = (
    ("write", "write"),
    ("rewrite", "write"),
    ("read", "read"),
    ("reread", "read"),
)


def run_iozone(
    system: System,
    node_name: str,
    path: str,
    file_bytes: int | None = None,
    block_sizes: Sequence[int] = DEFAULT_BLOCKS,
    include_strided: bool = True,
    include_random: bool = True,
    stride_factor: int = 8,
) -> IOzoneResult:
    """Run the benchmark on ``node_name`` against ``path``.

    ``file_bytes`` defaults to the paper's methodology: twice the
    node's RAM, so the page cache cannot hide the device.  The
    simulation clock advances; results carry simulated elapsed times.
    """
    env = system.env
    node = system.node(node_name)
    if file_bytes is None:
        file_bytes = 2 * node.spec.ram_bytes
    vfs = node.vfs
    result = IOzoneResult(node=node_name, path=path, file_bytes=file_bytes)

    def bench():
        for block in block_sizes:
            count = max(file_bytes // block, 1)
            fh = yield vfs.create(path)
            for test, op in _SEQ_TESTS:
                t0 = env.now
                yield fh.fs.submit(fh.inode, IORequest(op, 0, block, count=count))
                if op == "write":
                    yield fh.fsync()
                dt = env.now - t0
                result.rows.append(
                    IOzoneRow(test, op, block, AccessMode.SEQUENTIAL,
                              block * count / dt if dt > 0 else 0.0, dt, block * count)
                )
            if include_strided:
                s_count = max(count // stride_factor, 1)
                for test, op in (("strided_read", "read"), ("strided_write", "write")):
                    t0 = env.now
                    yield fh.fs.submit(
                        fh.inode,
                        IORequest(op, 0, block, count=s_count, stride=block * stride_factor),
                    )
                    if op == "write":
                        yield fh.fsync()
                    dt = env.now - t0
                    result.rows.append(
                        IOzoneRow(test, op, block, AccessMode.STRIDED,
                                  block * s_count / dt if dt > 0 else 0.0, dt, block * s_count)
                    )
            if include_random:
                r_count = max(min(count, 4096) // 4, 1)
                for test, op in (("random_read", "read"), ("random_write", "write")):
                    t0 = env.now
                    yield fh.fs.submit(
                        fh.inode, IORequest(op, 0, block, count=r_count, stride=-1)
                    )
                    if op == "write":
                        yield fh.fsync()
                    dt = env.now - t0
                    result.rows.append(
                        IOzoneRow(test, op, block, AccessMode.RANDOM,
                                  block * r_count / dt if dt > 0 else 0.0, dt, block * r_count)
                    )
            yield fh.close()
            yield vfs.unlink(path)
        return result

    env.run(env.process(bench(), name=f"iozone@{node_name}"))
    return result
