"""Seeded workload fuzzing: random walks over the declarative grammar.

The race matrix (``repro race``) and the grammar compiler are only as
well-exercised as the corpus thrown at them, and the two hand-coded
benchmark adapters visit a narrow slice of phase space.  This module
generates *valid* version-1 workload specs by a bounded random walk
over the grammar — op mix, transfer sizes, access patterns, bursts,
collectives, nested loops, shared vs file-per-process layout — so CI
can sweep schedule perturbations over fresh-but-reproducible shapes.

Every draw comes from a named :class:`~repro.simengine.rng.RngRegistry`
stream, so ``fuzz_spec(seed=7)`` is the same document forever: a race
or compiler bug found in CI replays locally from the seed alone.
Generated documents are self-checked through
:func:`~repro.workloads.grammar.compile_spec` before being returned —
the fuzzer can only ever hand out specs the grammar accepts.

Sizes and counts are deliberately small (4 KiB–1 MiB transfers, a few
phases): the point is shape diversity under the differential runner,
not volume.
"""

from __future__ import annotations

from typing import Any

from ..simengine.rng import RngRegistry
from .grammar import compile_spec, validate_spec

__all__ = ["fuzz_spec", "fuzz_specs"]

#: transfer and stride sizes the walk draws from (strings exercise the
#: unit parser; ints exercise the plain-bytes path)
_SIZES: tuple[Any, ...] = ("4KiB", "16KiB", "64KiB", "256KiB", 65536, 1048576)
_STRIDES: tuple[str, ...] = ("32KiB", "128KiB", "512KiB")


def _leaf_phase(rng: Any) -> dict[str, Any]:
    """One random leaf phase node (always grammar-valid)."""
    node: dict[str, Any] = {
        "op": "write" if rng.integers(2) else "read",
        "nbytes": _SIZES[int(rng.integers(len(_SIZES)))],
    }
    if rng.integers(2):
        node["count"] = int(rng.integers(1, 9))
    pattern = ("sequential", "strided", "bursty")[int(rng.integers(3))]
    if pattern == "strided":
        node["pattern"] = "strided"
        node["stride"] = _STRIDES[int(rng.integers(len(_STRIDES)))]
    elif pattern == "bursty":
        node["pattern"] = "bursty"
        node["burst_ops"] = int(rng.integers(2, 5))
        node["gap_s"] = int(rng.integers(1, 6)) / 1000.0
    elif rng.integers(3) == 0:
        # sequential phases sometimes carry a compute gap instead
        node["compute_s"] = int(rng.integers(0, 6)) / 1000.0
    if rng.integers(2):
        node["repetitions"] = int(rng.integers(1, 4))
    if rng.integers(3) == 0:
        node["collective"] = True
    return node


def fuzz_spec(seed: int, max_phases: int = 6) -> dict[str, Any]:
    """One random-walk workload spec document for ``seed``.

    The walk draws 1..``max_phases`` top-level nodes; each has a ~1/4
    chance of being a small loop (2–3 iterations over 1–2 leaf
    phases), the rest are leaves.  The returned dict validates and
    compiles under the grammar — checked here, every call.
    """
    if max_phases < 1:
        raise ValueError("max_phases must be >= 1")
    rng = RngRegistry(seed=seed).stream("workload.fuzz")
    phases: list[dict[str, Any]] = []
    for _ in range(int(rng.integers(1, max_phases + 1))):
        if rng.integers(4) == 0:
            phases.append(
                {
                    "loop": int(rng.integers(2, 4)),
                    "phases": [
                        _leaf_phase(rng) for _ in range(int(rng.integers(1, 3)))
                    ],
                }
            )
        else:
            phases.append(_leaf_phase(rng))
    doc: dict[str, Any] = {
        "version": 1,
        "name": f"fuzz-{seed}",
        "nprocs": int(2 ** rng.integers(0, 4)),
        "path": f"/nfs/fuzz{seed}.dat",
        "layout": "file-per-process" if rng.integers(4) == 0 else "shared",
        "rank_disjoint": bool(rng.integers(2)),
        "phases": phases,
    }
    compile_spec(validate_spec(doc))  # the generator's own contract
    return doc


def fuzz_specs(n: int, seed: int = 0, max_phases: int = 6) -> list[dict[str, Any]]:
    """``n`` independent specs for seeds ``seed .. seed + n - 1``."""
    return [fuzz_spec(seed + i, max_phases=max_phases) for i in range(n)]
