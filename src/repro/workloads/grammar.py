"""Declarative workload grammar: JSON/YAML specs compiled to phases.

The paper's methodology starts from characterizing the application's
I/O behavior; until now that behavior could only enter the system as
one of the hand-coded workload classes.  Following FBench's CFG-style
approach (PAPERS.md), this module defines a small declarative grammar
— phases, loops, access patterns, compute gaps, collective flags —
that validates against a versioned schema and compiles to the existing
:class:`~repro.workloads.synthetic.SyntheticSpec` phase program, so
arbitrary access patterns (strided, bursty, shared-file vs
file-per-process, mixed read/write) are expressible in a spec file
without new code.

Grammar (version 1)::

    version: 1                  # required, schema version
    name: checkpoint-cycle      # workload label (default: "workload")
    nprocs: 8                   # MPI world size
    path: /nfs/ckpt.dat         # file (file-per-process appends .<rank>)
    layout: shared              # shared | file-per-process
    rank_disjoint: true         # ranks access disjoint regions
    phases:                     # ordered phase / loop nodes
      - op: write               # read | write
        nbytes: 64KiB           # transfer size (int bytes or "64KiB")
        count: 16               # ops per repetition (bulk geometry)
        pattern: strided        # sequential | strided | bursty
        stride: 256KiB          # strided only: distance between ops
        repetitions: 4
        collective: true
        compute_s: 0.01         # busy time before each repetition
      - loop: 3                 # repeat the nested phases in order
        phases: [ ... ]

``pattern: bursty`` models clustered I/O: ``burst_ops`` back-to-back
operations per repetition separated by ``gap_s`` of compute — sugar
for ``count: count*burst_ops, compute_s: gap_s``.

Sizes accept plain ints (bytes) or unit-suffixed strings parsed by
:func:`repro.units.parse_bytes`.  Specs load from JSON or from a YAML
subset (nested mappings, ``-`` lists, scalars, comments) so no
third-party YAML dependency is required.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from ..units import parse_bytes
from .synthetic import SyntheticPhase, SyntheticSpec

__all__ = [
    "SCHEMA_VERSION",
    "WorkloadSpecError",
    "load_document",
    "validate_spec",
    "compile_spec",
    "load_spec",
    "spec_fingerprint",
]

#: grammar version this module validates and compiles
SCHEMA_VERSION = 1

PATTERNS = ("sequential", "strided", "bursty")
LAYOUTS = ("shared", "file-per-process")

#: maximum loop-expansion product, a runaway-spec guard
MAX_COMPILED_PHASES = 100_000


class WorkloadSpecError(ValueError):
    """A spec failed to parse, validate or compile; ``errors`` carries
    one ``"<where>: <what>"`` entry per problem."""

    def __init__(self, errors: "list[str] | str"):
        self.errors = [errors] if isinstance(errors, str) else list(errors)
        super().__init__("; ".join(self.errors))


# ----------------------------------------------------------------------
# document loading: JSON, or a YAML subset (stdlib only)
# ----------------------------------------------------------------------
_YAML_SCALARS = {"true": True, "false": False, "null": None, "~": None, "": None}
_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d*(?:[eE][+-]?\d+)?$|^-?\d+[eE][+-]?\d+$")


def _yaml_scalar(token: str) -> Any:
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return json.loads(token)
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1].replace("''", "'")
    lowered = token.lower()
    if lowered in _YAML_SCALARS:
        return _YAML_SCALARS[lowered]
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token):
        return float(token)
    if token.startswith("[") or token.startswith("{"):
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            raise WorkloadSpecError(f"malformed inline collection: {token!r}")
    return token


def _strip_comment(line: str) -> str:
    """Drop a trailing ``# ...`` comment outside quotes."""
    quote = None
    for i, ch in enumerate(line):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i]
    return line


@dataclass
class _Line:
    indent: int
    text: str
    lineno: int


def _yaml_lines(text: str) -> list[_Line]:
    out = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise WorkloadSpecError(f"line {lineno}: tabs are not allowed in indentation")
        indent = len(stripped) - len(stripped.lstrip(" "))
        out.append(_Line(indent, stripped.strip(), lineno))
    return out


def _parse_block(lines: list[_Line], pos: int, indent: int) -> tuple[Any, int]:
    """Parse the block starting at ``pos`` whose items sit at ``indent``."""
    if pos >= len(lines):
        return None, pos
    if lines[pos].text.startswith("- "):
        return _parse_list(lines, pos, indent)
    return _parse_mapping(lines, pos, indent)


def _parse_list(lines: list[_Line], pos: int, indent: int) -> tuple[list, int]:
    items: list[Any] = []
    while pos < len(lines) and lines[pos].indent == indent and lines[pos].text.startswith("- "):
        ln = lines[pos]
        rest = ln.text[2:].strip()
        if not rest:
            # "-" alone: the item is the nested block
            value, pos = _parse_block(lines, pos + 1, _next_indent(lines, pos + 1, indent))
            items.append(value)
            continue
        if ":" in rest and not rest.startswith(("[", "{", '"', "'")):
            # "- key: value": a mapping item, continued by deeper lines
            synthetic = _Line(indent + 2, rest, ln.lineno)
            sub = [synthetic]
            pos += 1
            while pos < len(lines) and lines[pos].indent > indent:
                sub.append(lines[pos])
                pos += 1
            value, _ = _parse_mapping(sub, 0, indent + 2)
            items.append(value)
            continue
        items.append(_yaml_scalar(rest))
        pos += 1
    return items, pos


def _next_indent(lines: list[_Line], pos: int, parent: int) -> int:
    if pos < len(lines) and lines[pos].indent > parent:
        return lines[pos].indent
    return parent + 2


def _parse_mapping(lines: list[_Line], pos: int, indent: int) -> tuple[dict, int]:
    out: dict[str, Any] = {}
    while pos < len(lines) and lines[pos].indent == indent and not lines[pos].text.startswith("- "):
        ln = lines[pos]
        key, sep, rest = ln.text.partition(":")
        if not sep:
            raise WorkloadSpecError(f"line {ln.lineno}: expected 'key: value', got {ln.text!r}")
        key = _yaml_scalar(key)
        rest = rest.strip()
        if rest:
            out[str(key)] = _yaml_scalar(rest)
            pos += 1
            continue
        # value is the nested block (mapping or list) on deeper lines
        pos += 1
        if pos < len(lines) and lines[pos].indent > indent:
            value, pos = _parse_block(lines, pos, lines[pos].indent)
        else:
            value = None
        out[str(key)] = value
    return out, pos


def _loads_yaml(text: str) -> Any:
    lines = _yaml_lines(text)
    if not lines:
        raise WorkloadSpecError("empty document")
    value, pos = _parse_block(lines, 0, lines[0].indent)
    if pos != len(lines):
        ln = lines[pos]
        raise WorkloadSpecError(f"line {ln.lineno}: unexpected indentation near {ln.text!r}")
    return value


def load_document(source: Union[str, Path]) -> Any:
    """Parse a spec document from a path or literal text.

    A :class:`~pathlib.Path` (or a string naming an existing file) is
    read first; ``.json`` parses as JSON, anything else through the
    YAML-subset reader (which also accepts JSON, its syntax being a
    YAML subset in spirit — a leading ``{`` or ``[`` routes to the
    JSON parser).
    """
    text = None
    name = ""
    if isinstance(source, Path):
        text, name = source.read_text(encoding="utf-8"), source.name
    elif isinstance(source, str) and "\n" not in source and Path(source).is_file():
        text, name = Path(source).read_text(encoding="utf-8"), Path(source).name
    else:
        text = str(source)
    stripped = text.lstrip()
    if name.endswith(".json") or stripped.startswith(("{", "[")):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadSpecError(f"malformed JSON: {exc}")
    return _loads_yaml(text)


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def _is_size(value: Any) -> bool:
    try:
        return parse_bytes(value) >= 0
    except ValueError:
        return False


#: field name -> (checker, description); shared by phase validation
_PHASE_FIELDS: dict[str, tuple] = {
    "name": (lambda v: isinstance(v, str) and v != "", "non-empty string"),
    "op": (lambda v: v in ("read", "write"), "'read' or 'write'"),
    "nbytes": (lambda v: _is_size(v) and parse_bytes(v) > 0, "positive size"),
    "count": (lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1, "int >= 1"),
    "pattern": (lambda v: v in PATTERNS, f"one of {PATTERNS}"),
    "stride": (lambda v: _is_size(v) and parse_bytes(v) > 0, "positive size"),
    "repetitions": (lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1, "int >= 1"),
    "collective": (lambda v: isinstance(v, bool), "bool"),
    "compute_s": (
        lambda v: isinstance(v, (int, float)) and not isinstance(v, bool) and v >= 0,
        "number >= 0",
    ),
    "offset_step": (lambda v: _is_size(v), "size >= 0"),
    "burst_ops": (lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1, "int >= 1"),
    "gap_s": (
        lambda v: isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0,
        "number > 0",
    ),
}

_TOP_FIELDS: dict[str, tuple] = {
    "version": (lambda v: v == SCHEMA_VERSION, f"the int {SCHEMA_VERSION}"),
    "name": (lambda v: isinstance(v, str) and v != "", "non-empty string"),
    "nprocs": (lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1, "int >= 1"),
    "path": (lambda v: isinstance(v, str) and v.startswith("/"), "absolute path string"),
    "layout": (lambda v: v in LAYOUTS, f"one of {LAYOUTS}"),
    "rank_disjoint": (lambda v: isinstance(v, bool), "bool"),
    "phases": (lambda v: isinstance(v, list) and len(v) >= 1, "non-empty list"),
}


def _validate_fields(node: dict, fields: dict, where: str, errors: list[str]) -> None:
    for key, value in node.items():
        if key not in fields:
            errors.append(f"{where}: unknown key {key!r}")
            continue
        check, want = fields[key]
        if not check(value):
            errors.append(f"{where}.{key}: expected {want}, got {value!r}")


def _validate_phase_node(node: Any, where: str, errors: list[str]) -> None:
    if not isinstance(node, dict):
        errors.append(f"{where}: expected a mapping, got {type(node).__name__}")
        return
    if "loop" in node:
        loop = node.get("loop")
        if not (isinstance(loop, int) and not isinstance(loop, bool) and loop >= 1):
            errors.append(f"{where}.loop: expected int >= 1, got {loop!r}")
        body = node.get("phases")
        for key in node:
            if key not in ("loop", "phases"):
                errors.append(f"{where}: unknown key {key!r} in loop node")
        if not isinstance(body, list) or not body:
            errors.append(f"{where}.phases: loop needs a non-empty phase list")
            return
        for i, sub in enumerate(body):
            _validate_phase_node(sub, f"{where}.phases[{i}]", errors)
        return
    _validate_fields(node, _PHASE_FIELDS, where, errors)
    if "op" not in node:
        errors.append(f"{where}: missing required key 'op'")
    if "nbytes" not in node:
        errors.append(f"{where}: missing required key 'nbytes'")
    pattern = node.get("pattern", "sequential")
    if pattern == "strided":
        if "stride" not in node:
            errors.append(f"{where}: pattern 'strided' requires 'stride'")
    elif "stride" in node:
        errors.append(f"{where}: 'stride' is only valid with pattern 'strided'")
    if pattern == "bursty":
        if "gap_s" not in node:
            errors.append(f"{where}: pattern 'bursty' requires 'gap_s'")
        if "compute_s" in node:
            errors.append(f"{where}: bursty phases take 'gap_s', not 'compute_s'")
    else:
        for key in ("burst_ops", "gap_s"):
            if key in node:
                errors.append(f"{where}: {key!r} is only valid with pattern 'bursty'")


def validate_spec(doc: Any) -> dict:
    """Validate a parsed document against the version-1 schema.

    Returns the document unchanged on success; raises
    :class:`WorkloadSpecError` carrying *every* problem found (not
    just the first) otherwise.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise WorkloadSpecError(f"spec: expected a mapping, got {type(doc).__name__}")
    if "version" not in doc:
        errors.append("spec: missing required key 'version'")
    if "phases" not in doc:
        errors.append("spec: missing required key 'phases'")
    _validate_fields(doc, _TOP_FIELDS, "spec", errors)
    for i, node in enumerate(doc.get("phases") or []):
        _validate_phase_node(node, f"phases[{i}]", errors)
    if errors:
        raise WorkloadSpecError(errors)
    return doc


def is_workload_spec(doc: Any) -> bool:
    """Heuristic: does this parsed document claim to be a workload
    spec (as opposed to, say, a fault schedule)?"""
    return isinstance(doc, dict) and "version" in doc and "phases" in doc


# ----------------------------------------------------------------------
# compilation: validated document -> SyntheticSpec
# ----------------------------------------------------------------------
def _compile_phase(node: dict) -> SyntheticPhase:
    pattern = node.get("pattern", "sequential")
    count = node.get("count", 1)
    compute_s = float(node.get("compute_s", 0.0))
    stride = None
    if pattern == "strided":
        stride = parse_bytes(node["stride"])
    elif pattern == "bursty":
        # a burst: burst_ops back-to-back transfers per repetition,
        # separated by gap_s of compute — bulk-count geometry
        count = count * node.get("burst_ops", 1)
        compute_s = float(node["gap_s"])
    offset_step = node.get("offset_step")
    return SyntheticPhase(
        op=node["op"],
        nbytes=parse_bytes(node["nbytes"]),
        count=count,
        stride=stride,
        repetitions=node.get("repetitions", 1),
        collective=node.get("collective", False),
        compute_s=compute_s,
        offset_step=None if offset_step is None else parse_bytes(offset_step),
    )


def _expand(nodes: list, out: list[SyntheticPhase]) -> None:
    for node in nodes:
        if "loop" in node:
            for _ in range(node["loop"]):
                _expand(node["phases"], out)
        else:
            out.append(_compile_phase(node))
        if len(out) > MAX_COMPILED_PHASES:
            raise WorkloadSpecError(
                f"spec expands to more than {MAX_COMPILED_PHASES} phases; "
                "reduce loop nesting"
            )


def compile_spec(doc: Any) -> SyntheticSpec:
    """Compile a (validated) document into a :class:`SyntheticSpec`.

    Loops expand in place, patterns lower to the synthetic phase
    geometry, sizes normalise to integer bytes.  Compilation is pure:
    the same document always yields an identical spec, so the spec's
    fingerprint is a stable identity for caching and dedupe.
    """
    doc = validate_spec(doc)
    phases: list[SyntheticPhase] = []
    _expand(doc["phases"], phases)
    return SyntheticSpec(
        phases=tuple(phases),
        nprocs=doc.get("nprocs", 4),
        path=doc.get("path", "/nfs/synthetic.dat"),
        per_process_files=doc.get("layout", "shared") == "file-per-process",
        rank_disjoint=doc.get("rank_disjoint", True),
    )


def spec_name(doc: Any, default: str = "workload") -> str:
    """The workload label of a parsed spec document."""
    if isinstance(doc, dict) and isinstance(doc.get("name"), str) and doc["name"]:
        return doc["name"]
    return default


def spec_fingerprint(spec: SyntheticSpec) -> str:
    """Stable content hash of a compiled spec.

    Two spec files (or a spec file and an ingested trace) that compile
    to the same phase program share this fingerprint — the identity
    the TableCache/dedupe layers key evaluation artifacts on.
    """
    from ..fingerprint import fingerprint

    return fingerprint(spec)


def load_spec(source: Union[str, Path]):
    """Parse + validate + compile ``source``; returns a ready-to-run
    :class:`~repro.workloads.apps.SyntheticApplication`."""
    from .apps import SyntheticApplication

    doc = load_document(source)
    spec = compile_spec(doc)
    default = "workload"
    if isinstance(source, Path):
        default = source.stem
    elif isinstance(source, str) and "\n" not in source and Path(source).is_file():
        default = Path(source).stem
    return SyntheticApplication(spec=spec, label=spec_name(doc, default))
