"""Workload generators: benchmarks and application models."""

from .apps import BTIOApplication, MadBenchApplication, SyntheticApplication
from .btio import (
    BTIO_CLASSES,
    BTIOClass,
    BTIOConfig,
    BTIOResult,
    btio_geometry,
    characterize_btio,
    run_btio,
)
from .beffio import BeffIOResult, PATTERNS, run_beffio
from .bonnie import BonnieResult, run_bonnie
from .iozone import DEFAULT_BLOCKS, IOzoneResult, IOzoneRow, run_iozone
from .ior import IORResult, IORRow, run_ior
from .madbench import (
    characterize_madbench,
    MadBenchConfig,
    MadBenchResult,
    run_madbench,
)
from .grammar import (
    compile_spec,
    load_spec,
    spec_fingerprint,
    validate_spec,
    WorkloadSpecError,
)
from .synthetic import run_synthetic, SyntheticPhase, SyntheticResult, SyntheticSpec

__all__ = [
    "BTIOApplication",
    "MadBenchApplication",
    "SyntheticApplication",
    "compile_spec",
    "load_spec",
    "spec_fingerprint",
    "validate_spec",
    "WorkloadSpecError",
    "BTIO_CLASSES",
    "BTIOClass",
    "BTIOConfig",
    "BTIOResult",
    "btio_geometry",
    "characterize_btio",
    "run_btio",
    "DEFAULT_BLOCKS",
    "IOzoneResult",
    "IOzoneRow",
    "run_iozone",
    "IORResult",
    "IORRow",
    "run_ior",
    "characterize_madbench",
    "MadBenchConfig",
    "MadBenchResult",
    "run_madbench",
    "BeffIOResult",
    "PATTERNS",
    "run_beffio",
    "BonnieResult",
    "run_bonnie",
    "run_synthetic",
    "SyntheticPhase",
    "SyntheticResult",
    "SyntheticSpec",
]
