"""IOR-like parallel I/O benchmark.

The paper characterizes the I/O library level with IOR (Figs. 6 and
14): N MPI processes write and then read a shared file through
MPI-IO, each owning a contiguous *block* accessed in *transfer*-sized
operations.  Aohyper: 8 processes, 32 GB file (12 GB on JBOD), block
sizes 1 MiB – 1 GiB, 256 KiB transfers.  Cluster A: 40 GB file.

Both the collective (two-phase) and independent APIs are supported;
the paper's library-level characterization uses the MPI-IO default
(collective buffering on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..storage.base import MiB
from ..clusters.builder import System

__all__ = ["IORRow", "IORResult", "run_ior"]


@dataclass(frozen=True)
class IORRow:
    op: str  # read | write
    block_bytes: int
    transfer_bytes: int
    nprocs: int
    aggregate_rate_Bps: float
    elapsed_s: float
    total_bytes: int


@dataclass
class IORResult:
    path: str
    nprocs: int
    rows: list[IORRow] = field(default_factory=list)
    #: phase-replay accelerator statistics of the run (ReplayStats)
    replay: object = None

    def rate(self, op: str, block_bytes: int) -> float:
        for r in self.rows:
            if r.op == op and r.block_bytes == block_bytes:
                return r.aggregate_rate_Bps
        raise KeyError((op, block_bytes))


def run_ior(
    system: System,
    nprocs: int,
    path: str = "/nfs/ior.dat",
    block_sizes: Sequence[int] = (1 * MiB, 16 * MiB, 256 * MiB),
    transfer_bytes: int = 256 * 1024,
    file_bytes: int | None = None,
    collective: bool = True,
    placement: str = "block",
) -> IORResult:
    """Run the benchmark; one write and one read row per block size.

    ``file_bytes`` caps the data per pass (IOR's segment count): each
    pass moves ``min(block * nprocs, file_bytes)`` bytes, repeated so
    every pass touches at least ``file_bytes`` when given.
    """
    env = system.env
    result = IORResult(path=path, nprocs=nprocs)
    world = system.world(nprocs, placement=placement, io_hints={"collective": collective})

    barrier_times: dict = {}

    def program(mpi):
        for block in block_sizes:
            per_proc = block
            segments = 1
            if file_bytes is not None:
                total = block * mpi.size
                segments = max(1, min(file_bytes // total, 8))
            chunk = 16 * MiB  # one collective call per cb buffer
            # ---- write pass -------------------------------------------------
            f = yield mpi.file_open(path, "w")
            yield mpi.barrier()
            t0 = mpi.now
            for seg in range(segments):
                base = seg * per_proc * mpi.size + mpi.rank * per_proc
                done = 0
                while done < per_proc:
                    n = min(chunk, per_proc - done)
                    ops = max(n // transfer_bytes, 1)
                    if collective:
                        yield f.write_at_all(base + done, transfer_bytes, count=ops)
                    else:
                        yield f.write_at(base + done, transfer_bytes, count=ops)
                    done += n
            yield f.close()
            yield mpi.barrier()
            t1 = mpi.now
            # ---- read pass ----------------------------------------------------
            f = yield mpi.file_open(path, "r")
            yield mpi.barrier()
            t2 = mpi.now
            for seg in range(segments):
                base = seg * per_proc * mpi.size + mpi.rank * per_proc
                done = 0
                while done < per_proc:
                    n = min(chunk, per_proc - done)
                    ops = max(n // transfer_bytes, 1)
                    if collective:
                        yield f.read_at_all(base + done, transfer_bytes, count=ops)
                    else:
                        yield f.read_at(base + done, transfer_bytes, count=ops)
                    done += n
            yield f.close()
            yield mpi.barrier()
            t3 = mpi.now
            if mpi.rank == 0:
                barrier_times[block] = (t0, t1, t2, t3, segments)
        return None

    env.run(world.run_program(program, name="ior"))

    for block, (t0, t1, t2, t3, segments) in barrier_times.items():
        total = block * nprocs * segments
        for op, dt in (("write", t1 - t0), ("read", t3 - t2)):
            result.rows.append(
                IORRow(op, block, transfer_bytes, nprocs,
                       total / dt if dt > 0 else 0.0, dt, total)
            )
    result.rows.sort(key=lambda r: (r.op, r.block_bytes))
    result.replay = world.replay.stats
    return result
