"""NAS BT-IO application model (NPB 2.4 I/O benchmark).

Block-Tridiagonal solver with *diagonal multi-partitioning*: with
``p = K²`` processes, the 3-D grid is split into ``K³`` cells and
every process owns the ``K`` cells along a diagonal.  Every 5 time
steps the whole solution (5 doubles per mesh point) is appended to
the output file; after the time loop the solution is read back and
verified.  The paper evaluates class C (162³ grid, 200 steps → 40
I/O steps) with 16 and 64 processes.

Two I/O subtypes (paper §III-A2):

* **full** — MPI collective buffering: each process contributes its
  ~10 MB (16p) / ~2.5 MB (64p) per I/O step through
  ``MPI_File_write_at_all``; ROMIO's two-phase engine turns that into
  large contiguous writes (Table II: 640 ops of 10 MB).
* **simple** — plain MPI-IO without collective buffering: one write
  per x-row of each owned cell — 1600/1640-byte strided operations,
  ~6561 per process per I/O step at 16 processes (Table II:
  2,073,600 + 2,125,440 tiny ops; reads likewise).

The compute/communication skeleton between I/O steps is modelled with
calibrated busy-time plus real boundary exchanges over the simulated
network, so I/O time can be compared to total run time as the paper
does (Figs. 12 and 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isqrt

from ..storage.base import MiB
from ..clusters.builder import System
from ..tracing import IOTracer

__all__ = [
    "BTIOClass",
    "BTIOConfig",
    "BTIOResult",
    "btio_class",
    "btio_geometry",
    "characterize_btio",
    "run_btio",
    "BTIO_CLASSES",
]

#: NPB class -> (grid points per side, time steps, total Gflop count)
BTIO_CLASSES: dict[str, tuple[int, int, float]] = {
    "S": (12, 60, 0.3),
    "W": (24, 200, 7.8),
    "A": (64, 200, 168.3),
    "B": (102, 200, 721.5),
    "C": (162, 200, 2922.0),
    "D": (408, 250, 58883.0),
}

#: bytes per mesh point: 5 double-precision words
_POINT_BYTES = 5 * 8
#: time steps between solution dumps
_WRITE_INTERVAL = 5


@dataclass(frozen=True)
class BTIOClass:
    name: str
    grid: int
    steps: int
    gflops: float

    @property
    def io_steps(self) -> int:
        return self.steps // _WRITE_INTERVAL

    @property
    def step_bytes(self) -> int:
        """Solution bytes appended per I/O step (entire field)."""
        return self.grid**3 * _POINT_BYTES

    @property
    def file_bytes(self) -> int:
        return self.step_bytes * self.io_steps


def btio_class(name: str) -> BTIOClass:
    try:
        grid, steps, gf = BTIO_CLASSES[name.upper()]
    except KeyError:
        raise ValueError(f"unknown BT class {name!r}") from None
    return BTIOClass(name.upper(), grid, steps, gf)


def _partition(n: int, k: int) -> list[int]:
    """Split ``n`` points into ``k`` near-equal parts (ceil parts first)."""
    base, rem = divmod(n, k)
    return [base + 1 if i < rem else base for i in range(k)]


@dataclass(frozen=True)
class CellGeometry:
    """One owned cell: sizes and derived simple-subtype row pattern."""

    sx: int
    sy: int
    sz: int

    @property
    def row_bytes(self) -> int:
        return self.sx * _POINT_BYTES

    @property
    def rows(self) -> int:
        return self.sy * self.sz

    @property
    def cell_bytes(self) -> int:
        return self.sx * self.sy * self.sz * _POINT_BYTES


def btio_geometry(clazz: BTIOClass, nprocs: int) -> list[list[CellGeometry]]:
    """Per-rank owned cells under diagonal multi-partitioning.

    ``nprocs`` must be a perfect square ``K²``; each rank owns ``K``
    cells whose (x, y, z) indices follow a diagonal of the K³ cell
    grid, so the per-rank data volume is within one part-size of
    uniform and global sums are exact.
    """
    k = isqrt(nprocs)
    if k * k != nprocs:
        raise ValueError(f"BT-IO requires a square process count, got {nprocs}")
    parts = _partition(clazz.grid, k)
    out: list[list[CellGeometry]] = []
    for p in range(nprocs):
        j, i = divmod(p, k)
        cells = []
        for d in range(k):
            xi = (d + i) % k
            yi = (d + j) % k
            zi = d
            cells.append(CellGeometry(parts[xi], parts[yi], parts[zi]))
        out.append(cells)
    return out


@dataclass(frozen=True)
class BTIOConfig:
    clazz: str = "C"
    nprocs: int = 16
    subtype: str = "full"  # "full" | "simple"
    path: str = "/nfs/btio.out"
    #: sustained fraction of peak flops for the solver kernel
    cpu_efficiency: float = 0.12
    #: boundary-exchange messages per rank per time step
    msgs_per_step: int = 24
    verify_read: bool = True

    def __post_init__(self):
        if self.subtype not in ("full", "simple"):
            raise ValueError(f"subtype must be 'full' or 'simple', got {self.subtype!r}")


@dataclass
class BTIOResult:
    config: BTIOConfig
    execution_time: float = 0.0
    io_time: float = 0.0
    write_time: float = 0.0
    read_time: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0
    n_writes: int = 0
    n_reads: int = 0
    n_opens: int = 0
    tracer: object = None
    #: phase-replay accelerator statistics of the run (ReplayStats)
    replay: object = None

    @property
    def write_rate_Bps(self) -> float:
        return self.bytes_written / self.write_time if self.write_time > 0 else 0.0

    @property
    def read_rate_Bps(self) -> float:
        return self.bytes_read / self.read_time if self.read_time > 0 else 0.0

    @property
    def throughput_Bps(self) -> float:
        total = self.bytes_written + self.bytes_read
        return total / self.io_time if self.io_time > 0 else 0.0

    @property
    def io_fraction(self) -> float:
        return self.io_time / self.execution_time if self.execution_time > 0 else 0.0


def characterize_btio(config: BTIOConfig) -> dict:
    """Static application characterization (paper Tables II and V).

    Derived from geometry alone — no simulation required, which is the
    point the paper makes: the characterization is system-independent
    ("it is not necessary to re-characterize the application in other
    system for the same class and number of processes").
    """
    clazz = btio_class(config.clazz)
    geom = btio_geometry(clazz, config.nprocs)
    io_steps = clazz.io_steps
    if config.subtype == "full":
        per_rank_bytes = [sum(c.cell_bytes for c in cells) for cells in geom]
        blocks = sorted({b for b in per_rank_bytes})
        n_ops = io_steps * config.nprocs
        return {
            "num_files": 1,
            "numio_write": n_ops,
            "numio_read": n_ops if config.verify_read else 0,
            "block_bytes_write": blocks,
            "block_bytes_read": blocks,
            "numio_open": config.nprocs * (2 if config.verify_read else 1),
            "nprocs": config.nprocs,
        }
    counts: dict[int, int] = {}
    for cells in geom:
        for c in cells:
            counts[c.row_bytes] = counts.get(c.row_bytes, 0) + c.rows
    ops = {b: n * io_steps for b, n in counts.items()}
    total_ops = sum(ops.values())
    return {
        "num_files": 1,
        "numio_write": total_ops,
        "numio_read": total_ops if config.verify_read else 0,
        "block_bytes_write": sorted(ops),
        "block_bytes_read": sorted(ops),
        "ops_by_block": ops,
        "numio_open": config.nprocs * (2 if config.verify_read else 1),
        "nprocs": config.nprocs,
    }


def run_btio(system: System, config: BTIOConfig, tracer: IOTracer | None = None) -> BTIOResult:
    """Execute the BT-IO model on a system; returns timing metrics."""
    env = system.env
    clazz = btio_class(config.clazz)
    geom = btio_geometry(clazz, config.nprocs)
    k = isqrt(config.nprocs)
    tracer = tracer if tracer is not None else IOTracer()
    world = system.world(config.nprocs, tracer=tracer)
    result = BTIOResult(config=config)

    flops_per_step_rank = clazz.gflops * 1e9 / clazz.steps / config.nprocs
    face_bytes = max((clazz.grid // k) ** 2 * _POINT_BYTES, 1)
    grid = clazz.grid
    line_bytes = grid * _POINT_BYTES

    io_time = [0.0] * config.nprocs
    write_time = [0.0] * config.nprocs
    read_time = [0.0] * config.nprocs

    def exchange(mpi):
        """One time step's boundary exchanges (3 directions)."""
        sends = []
        per_dir = max(config.msgs_per_step // 3, 1)
        directions = (1, k % mpi.size or 1, (k + 1) % mpi.size or 1)
        for direction in directions:
            peer = (mpi.rank + direction) % mpi.size
            for _ in range(per_dir // 2 or 1):
                sends.append(mpi.isend(peer, face_bytes, tag=direction))
        for direction in directions:
            peer = (mpi.rank - direction) % mpi.size
            for _ in range(per_dir // 2 or 1):
                yield mpi.recv(peer, tag=direction)
        for s in sends:
            yield s

    def write_step(mpi, f, step):
        cells = geom[mpi.rank]
        base = step * clazz.step_bytes
        t0 = mpi.now
        if config.subtype == "full":
            nbytes = sum(c.cell_bytes for c in cells)
            offset = base + (mpi.rank * clazz.step_bytes) // mpi.size
            yield f.write_at_all(offset, nbytes)
        else:
            # x-rows of every owned cell, batched: stride is one full
            # grid line, one part per cell
            yield f.write_at_multi(
                [
                    (
                        base + ((ci * grid // k) * grid + mpi.rank) * _POINT_BYTES,
                        c.row_bytes,
                        c.rows,
                        line_bytes,
                    )
                    for ci, c in enumerate(cells)
                ]
            )
        dt = mpi.now - t0
        io_time[mpi.rank] += dt
        write_time[mpi.rank] += dt
        result.bytes_written += sum(c.cell_bytes for c in cells)
        result.n_writes += 1 if config.subtype == "full" else sum(c.rows for c in cells)

    def read_step(mpi, f, step):
        cells = geom[mpi.rank]
        base = step * clazz.step_bytes
        t0 = mpi.now
        if config.subtype == "full":
            nbytes = sum(c.cell_bytes for c in cells)
            offset = base + (mpi.rank * clazz.step_bytes) // mpi.size
            yield f.read_at_all(offset, nbytes)
        else:
            yield f.read_at_multi(
                [
                    (
                        base + ((ci * grid // k) * grid + mpi.rank) * _POINT_BYTES,
                        c.row_bytes,
                        c.rows,
                        line_bytes,
                    )
                    for ci, c in enumerate(cells)
                ]
            )
        dt = mpi.now - t0
        io_time[mpi.rank] += dt
        read_time[mpi.rank] += dt
        result.bytes_read += sum(c.cell_bytes for c in cells)
        result.n_reads += 1 if config.subtype == "full" else sum(c.rows for c in cells)

    def solver_step(mpi):
        """One time step's solve: calibrated busy-time + exchanges."""
        yield mpi.compute(
            seconds=flops_per_step_rank
            / (mpi.node.spec.core_gflops * 1e9 * config.cpu_efficiency)
        )
        yield from exchange(mpi)

    def program(mpi):
        f = yield mpi.file_open(config.path, "w")
        result.n_opens += 1
        for step in range(clazz.steps):
            # the solver step is one repetitive non-I/O region: the
            # replay accelerator may extrapolate it once verified
            yield from mpi.replay_region(("step",), solver_step(mpi))
            if (step + 1) % _WRITE_INTERVAL == 0:
                yield from write_step(mpi, f, step // _WRITE_INTERVAL)
        yield mpi.barrier()
        if config.verify_read:
            for io_step in range(clazz.io_steps):
                yield from read_step(mpi, f, io_step)
        yield f.close()
        return None

    t_start = env.now
    env.run(world.run_program(program, name=f"btio-{config.subtype}"))
    result.execution_time = env.now - t_start
    n = config.nprocs
    result.io_time = sum(io_time) / n
    result.write_time = sum(write_time) / n
    result.read_time = sum(read_time) / n
    result.tracer = tracer
    result.replay = world.replay.stats
    return result
