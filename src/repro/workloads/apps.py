"""Adapters exposing the workload models as methodology Applications.

The evaluation phase (:class:`~repro.core.methodology.Methodology`)
runs anything implementing the :class:`~repro.core.methodology.
Application` protocol; these wrappers bind a workload configuration
so one object can be evaluated across many I/O configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..clusters.builder import System
from ..tracing import IOTracer
from .btio import BTIOConfig, run_btio
from .madbench import MadBenchConfig, run_madbench

__all__ = ["BTIOApplication", "MadBenchApplication"]


@dataclass
class BTIOApplication:
    """NAS BT-IO as an evaluation-phase application."""

    config: BTIOConfig

    @property
    def name(self) -> str:
        return f"btio-{self.config.clazz}-{self.config.nprocs}p-{self.config.subtype}"

    def run(self, system: System):
        from ..core.methodology import AppRun

        tracer = IOTracer()
        system.last_tracer = tracer
        res = run_btio(system, self.config, tracer=tracer)
        return AppRun(
            tracer=tracer,
            execution_time_s=res.execution_time,
            io_time_s=res.io_time,
            bytes_written=res.bytes_written,
            bytes_read=res.bytes_read,
        )


@dataclass
class MadBenchApplication:
    """MADbench2 as an evaluation-phase application."""

    config: MadBenchConfig

    @property
    def name(self) -> str:
        return f"madbench-{self.config.nprocs}p-{self.config.filetype}"

    def run(self, system: System):
        from ..core.methodology import AppRun

        tracer = IOTracer()
        system.last_tracer = tracer
        res = run_madbench(system, self.config, tracer=tracer)
        nb = self.config.block_bytes * self.config.nbin * self.config.nprocs
        return AppRun(
            tracer=tracer,
            execution_time_s=res.execution_time,
            io_time_s=res.io_time,
            bytes_written=2 * nb,  # S + W
            bytes_read=2 * nb,  # W + C
        )
