"""Adapters exposing the workload models as methodology Applications.

The evaluation phase (:class:`~repro.core.methodology.Methodology`)
runs anything implementing the :class:`~repro.core.methodology.
Application` protocol; these wrappers bind a workload configuration
so one object can be evaluated across many I/O configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clusters.builder import System
from ..tracing import IOTracer
from .btio import BTIOConfig, run_btio
from .madbench import MadBenchConfig, run_madbench
from .synthetic import SyntheticSpec, run_synthetic

__all__ = ["BTIOApplication", "MadBenchApplication", "SyntheticApplication"]


@dataclass
class BTIOApplication:
    """NAS BT-IO as an evaluation-phase application."""

    config: BTIOConfig

    @property
    def name(self) -> str:
        return f"btio-{self.config.clazz}-{self.config.nprocs}p-{self.config.subtype}"

    def fingerprint(self) -> str:
        """Stable workload identity (see repro.fingerprint.workload_fingerprint)."""
        from ..fingerprint import fingerprint

        return fingerprint(type(self).__name__, self.config)

    def run(self, system: System):
        from ..core.methodology import AppRun

        tracer = IOTracer()
        system.last_tracer = tracer
        res = run_btio(system, self.config, tracer=tracer)
        return AppRun(
            tracer=tracer,
            execution_time_s=res.execution_time,
            io_time_s=res.io_time,
            bytes_written=res.bytes_written,
            bytes_read=res.bytes_read,
        )


@dataclass
class MadBenchApplication:
    """MADbench2 as an evaluation-phase application."""

    config: MadBenchConfig

    @property
    def name(self) -> str:
        return f"madbench-{self.config.nprocs}p-{self.config.filetype}"

    def fingerprint(self) -> str:
        """Stable workload identity (see repro.fingerprint.workload_fingerprint)."""
        from ..fingerprint import fingerprint

        return fingerprint(type(self).__name__, self.config)

    def run(self, system: System):
        from ..core.methodology import AppRun

        tracer = IOTracer()
        system.last_tracer = tracer
        res = run_madbench(system, self.config, tracer=tracer)
        nb = self.config.block_bytes * self.config.nbin * self.config.nprocs
        return AppRun(
            tracer=tracer,
            execution_time_s=res.execution_time,
            io_time_s=res.io_time,
            bytes_written=2 * nb,  # S + W
            bytes_read=2 * nb,  # W + C
        )


@dataclass
class SyntheticApplication:
    """A compiled phase program as an evaluation-phase application.

    Both grammar specs (:func:`repro.workloads.grammar.load_spec`) and
    ingested traces (:func:`repro.tracing.ingest.load_trace_workload`)
    produce one of these, so every spec file and every imported trace
    is an evaluation scenario with no further code.
    """

    spec: SyntheticSpec
    label: str = "synthetic"

    @property
    def name(self) -> str:
        return self.label

    def fingerprint(self) -> str:
        """Content hash of the compiled phase program only.

        Deliberately excludes the display label: a spec file and a
        re-imported trace that compile to the same phases dedupe to
        the same identity.
        """
        from ..fingerprint import fingerprint

        return fingerprint(self.spec)

    def run(self, system: System):
        from ..core.methodology import AppRun

        tracer = IOTracer()
        system.last_tracer = tracer
        res = run_synthetic(system, self.spec, tracer=tracer)
        return AppRun(
            tracer=tracer,
            execution_time_s=res.execution_time,
            io_time_s=res.io_time,
            bytes_written=sum(e.total_bytes for e in tracer.events if e.op == "write"),
            bytes_read=sum(e.total_bytes for e in tracer.events if e.op == "read"),
        )
