"""bonnie++-like filesystem benchmark.

The paper lists bonnie++ alongside IOzone as an option for
characterizing the global and local filesystem levels.  The model
covers bonnie++'s three classic test families:

* **sequential output** — per-char (small buffered puts), per-block,
  and rewrite (read + dirty + write back);
* **sequential input** — per-char and per-block;
* **random seeks** — the classic ``SeekProcCount`` random 8 KiB
  read(+occasional write) probe, reported in seeks/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simengine import Environment
from ..storage.base import IORequest, KiB, MiB
from ..clusters.builder import System

__all__ = ["BonnieResult", "run_bonnie"]

_CHAR_CHUNK = 8 * KiB  # stdio buffering makes per-char I/O 8K-ish syscalls
_BLOCK = 1 * MiB
_SEEK_BLOCK = 8 * KiB


@dataclass
class BonnieResult:
    node: str
    path: str
    file_bytes: int
    #: MB/s per test
    putc_Bps: float = 0.0
    write_Bps: float = 0.0
    rewrite_Bps: float = 0.0
    getc_Bps: float = 0.0
    read_Bps: float = 0.0
    seeks_per_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "putc": self.putc_Bps,
            "write": self.write_Bps,
            "rewrite": self.rewrite_Bps,
            "getc": self.getc_Bps,
            "read": self.read_Bps,
            "seeks": self.seeks_per_s,
        }


def run_bonnie(
    system: System,
    node_name: str,
    path: str,
    file_bytes: int | None = None,
    seek_count: int = 4000,
) -> BonnieResult:
    """Run the benchmark; rates are bytes/second (seeks: ops/second)."""
    env = system.env
    node = system.node(node_name)
    if file_bytes is None:
        file_bytes = 2 * node.spec.ram_bytes
    vfs = node.vfs
    result = BonnieResult(node=node_name, path=path, file_bytes=file_bytes)

    def bench():
        fh = yield vfs.create(path)
        fs, inode = fh.fs, fh.inode
        # -- sequential output, per chr (stdio-buffered 8K chunks) ----
        t0 = env.now
        yield fs.submit(inode, IORequest("write", 0, _CHAR_CHUNK, count=file_bytes // _CHAR_CHUNK))
        yield fh.fsync()
        result.putc_Bps = file_bytes / (env.now - t0)
        # -- sequential output, per block ------------------------------
        t0 = env.now
        yield fs.submit(inode, IORequest("write", 0, _BLOCK, count=file_bytes // _BLOCK))
        yield fh.fsync()
        result.write_Bps = file_bytes / (env.now - t0)
        # -- rewrite: read a block, dirty it, write it back -------------
        t0 = env.now
        nblocks = file_bytes // _BLOCK
        yield fs.submit(inode, IORequest("read", 0, _BLOCK, count=nblocks))
        yield fs.submit(inode, IORequest("write", 0, _BLOCK, count=nblocks))
        yield fh.fsync()
        result.rewrite_Bps = 2 * file_bytes / (env.now - t0)
        # -- sequential input ------------------------------------------------
        t0 = env.now
        yield fs.submit(inode, IORequest("read", 0, _CHAR_CHUNK, count=file_bytes // _CHAR_CHUNK))
        result.getc_Bps = file_bytes / (env.now - t0)
        t0 = env.now
        yield fs.submit(inode, IORequest("read", 0, _BLOCK, count=file_bytes // _BLOCK))
        result.read_Bps = file_bytes / (env.now - t0)
        # -- random seeks -----------------------------------------------------
        t0 = env.now
        yield fs.submit(inode, IORequest("read", 0, _SEEK_BLOCK, count=seek_count, stride=-1))
        # bonnie++ rewrites 10% of the blocks it seeks to
        yield fs.submit(inode, IORequest("write", 0, _SEEK_BLOCK, count=max(seek_count // 10, 1), stride=-1))
        yield fh.fsync()
        result.seeks_per_s = seek_count / (env.now - t0)
        yield fh.close()
        yield vfs.unlink(path)
        return result

    env.run(env.process(bench(), name=f"bonnie@{node_name}"))
    return result
