"""Synthetic MPI-IO workload generator.

A small declarative language for building test applications: a
:class:`SyntheticSpec` is a list of phases, each phase a repeated I/O
pattern with optional compute between repetitions.  Used by tests,
examples and ablation benchmarks to exercise arbitrary corners of the
I/O path without hand-writing a program per case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..clusters.builder import System
from ..tracing import IOTracer

__all__ = ["SyntheticPhase", "SyntheticSpec", "run_synthetic", "SyntheticResult"]


@dataclass(frozen=True)
class SyntheticPhase:
    """One repeated access pattern."""

    op: str  # "read" | "write"
    nbytes: int
    count: int = 1  # operations per repetition (bulk geometry)
    stride: Optional[int] = None
    repetitions: int = 1
    collective: bool = False
    compute_s: float = 0.0  # busy time before each repetition
    offset_step: Optional[int] = None  # file offset advance per repetition

    def __post_init__(self):
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.nbytes <= 0 or self.count < 1 or self.repetitions < 1:
            raise ValueError("invalid phase geometry")


@dataclass(frozen=True)
class SyntheticSpec:
    """A whole application: phases executed in order by every rank."""

    phases: tuple[SyntheticPhase, ...]
    nprocs: int = 4
    path: str = "/nfs/synthetic.dat"
    per_process_files: bool = False
    rank_disjoint: bool = True  # ranks access disjoint file regions

    def __post_init__(self):
        if not self.phases:
            raise ValueError("need at least one phase")


@dataclass
class SyntheticResult:
    spec: SyntheticSpec
    execution_time: float
    io_time: float
    tracer: IOTracer

    @property
    def io_fraction(self) -> float:
        return self.io_time / self.execution_time if self.execution_time > 0 else 0.0


def run_synthetic(system: System, spec: SyntheticSpec, tracer: IOTracer | None = None) -> SyntheticResult:
    """Execute the synthetic application; returns timing + trace."""
    env = system.env
    tracer = tracer if tracer is not None else IOTracer()
    world = system.world(spec.nprocs, tracer=tracer)
    io_time = [0.0] * spec.nprocs

    def program(mpi):
        if spec.per_process_files:
            f = yield mpi.file_open_self(f"{spec.path}.{mpi.rank}", "w")
        else:
            f = yield mpi.file_open(spec.path, "w")
        for phase in spec.phases:
            span = phase.count * (phase.stride or phase.nbytes)
            rank_base = mpi.rank * span if spec.rank_disjoint and not spec.per_process_files else 0
            step = phase.offset_step if phase.offset_step is not None else span * (
                mpi.size if spec.rank_disjoint and not spec.per_process_files else 1
            )
            for rep in range(phase.repetitions):
                if phase.compute_s:
                    yield mpi.compute(seconds=phase.compute_s)
                offset = rank_base + rep * step
                t0 = mpi.now
                if phase.collective:
                    if phase.op == "write":
                        yield f.write_at_all(offset, phase.nbytes, phase.count, phase.stride)
                    else:
                        yield f.read_at_all(offset, phase.nbytes, phase.count, phase.stride)
                else:
                    if phase.op == "write":
                        yield f.write_at(offset, phase.nbytes, phase.count, phase.stride)
                    else:
                        yield f.read_at(offset, phase.nbytes, phase.count, phase.stride)
                io_time[mpi.rank] += mpi.now - t0
        if spec.per_process_files:
            yield f.close_self()
        else:
            yield f.close()
        return None

    t0 = env.now
    env.run(world.run_program(program, name="synthetic"))
    return SyntheticResult(
        spec=spec,
        execution_time=env.now - t0,
        io_time=sum(io_time) / spec.nprocs,
        tracer=tracer,
    )
