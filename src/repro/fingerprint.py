"""Stable content hashes for configuration objects.

The characterization phase is a pure function of a
:class:`~repro.clusters.builder.SystemConfig` plus the sweep
parameters, so its result can be keyed by a digest of those inputs and
cached on disk (see :mod:`repro.core.tablecache`).  This module is a
leaf — stdlib only — so both :mod:`repro.clusters` and
:mod:`repro.core` can use it without layering cycles.

The digest is built from a canonical JSON form, not ``pickle`` or
``repr`` of the object graph, so it is stable across interpreter runs
(no hash randomisation) and across field *values* only: renaming or
adding a dataclass field changes the fingerprint, which is exactly the
invalidation behaviour a cache wants.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

__all__ = ["canonicalize", "canonical_json", "fingerprint", "workload_fingerprint"]


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Dataclasses become ``{"<ClassName>": {field: value, ...}}`` (class
    name included so two configs with identical field values but
    different types do not collide), enums become ``[ClassName,
    value]``, mappings are key-sorted, and sequences keep their order.
    Anything else falls back to ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {type(obj).__name__: fields}
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, canonicalize(obj.value)]
    if isinstance(obj, (list, tuple)):
        return [canonicalize(x) for x in obj]
    if isinstance(obj, dict):
        return {
            str(k): canonicalize(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def canonical_json(obj: Any) -> str:
    """The canonical JSON serialisation of ``obj``.

    One byte sequence per value, forever: keys sorted, separators
    fixed, objects reduced through :func:`canonicalize` first.  This
    is the byte stream that both :func:`fingerprint` digests and the
    sweep write-ahead store CRCs — two processes (or two runs of the
    same process, days apart) serialising an equal value always
    produce identical bytes.
    """
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(*objs: Any) -> str:
    """A short stable hex digest of the canonical form of ``objs``."""
    payload = canonical_json(list(objs))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def workload_fingerprint(app: Any) -> str:
    """The content identity of an evaluation-phase workload.

    Routing: a workload that knows its own identity (``fingerprint()``
    method — spec-compiled and trace-replayed applications hash their
    compiled phase program, benchmark adapters their config) is asked
    directly; anything else falls back to a digest of its class name
    and canonical ``config``/``name`` attributes.  Two spec files — or
    a spec file and a re-imported trace — that compile to the same
    phase program therefore share a fingerprint, which is what lets
    them dedupe in caches and sweep schedulers.
    """
    fp = getattr(app, "fingerprint", None)
    if callable(fp):
        return fp()
    return fingerprint(
        type(app).__name__,
        getattr(app, "config", None),
        getattr(app, "name", ""),
    )
