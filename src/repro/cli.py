"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the methodology's phases:

* ``characterize`` — build and print the performance tables of a
  named cluster configuration (optionally save as CSV).
* ``evaluate`` — run a workload on one or more configurations and
  print the run metrics and used-percentage tables.
* ``predict`` — phase-1-only configuration selection: predict the
  workload's I/O time on every configuration from the tables alone.
* ``list`` — show the available cluster configurations and workloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .clusters import AOHYPER_CONFIGS, aohyper_config, cluster_a_config
from .core import (
    Methodology,
    format_perf_table,
    format_run_metrics,
    format_used_matrix,
)
from .core.prediction import rank_predicted
from .storage.base import GiB, KiB, MiB
from .workloads.apps import BTIOApplication, MadBenchApplication
from .workloads.btio import BTIOConfig
from .workloads.madbench import MadBenchConfig

__all__ = ["main"]


def _configs(names: list[str]) -> dict:
    out = {}
    for name in names:
        if name in AOHYPER_CONFIGS:
            out[name] = aohyper_config(name)
        elif name in ("cluster-a", "cluster_a"):
            out["cluster-a"] = cluster_a_config()
        else:
            raise SystemExit(f"unknown configuration {name!r}; see `repro list`")
    return out


def _app(args):
    if args.workload == "btio":
        return BTIOApplication(
            BTIOConfig(clazz=args.clazz, nprocs=args.nprocs, subtype=args.subtype)
        )
    if args.workload == "madbench":
        return MadBenchApplication(
            MadBenchConfig(kpix=args.kpix, nprocs=args.nprocs, filetype=args.filetype)
        )
    raise SystemExit(f"unknown workload {args.workload!r}")


def _methodology(args) -> Methodology:
    blocks = tuple((32 * KiB) << k for k in range(0, 10, max(1, args.block_step)))
    return Methodology(
        _configs(args.configs),
        block_sizes=blocks,
        ior_nprocs=8,
        ior_file_bytes=args.ior_gib * GiB,
    )


def cmd_list(_args) -> int:
    print("cluster configurations:")
    for name in AOHYPER_CONFIGS:
        print(f"  {name:<10} (paper cluster Aohyper, device={name})")
    print("  cluster-a  (paper cluster A: 32 nodes, NFS on RAID5 front-end)")
    print("workloads:")
    print("  btio       NAS BT-IO (--class, --nprocs, --subtype full|simple)")
    print("  madbench   MADbench2 (--kpix, --nprocs, --filetype unique|shared)")
    return 0


def cmd_characterize(args) -> int:
    m = _methodology(args)
    m.characterize()
    for tables in m.tables.values():
        for table in tables.values():
            print(format_perf_table(table))
            print()
    if args.out:
        for name in m.save_tables(args.out):
            print(f"  -> saved {Path(args.out) / name}")
    return 0


def cmd_evaluate(args) -> int:
    m = _methodology(args)
    print("characterizing ...", file=sys.stderr)
    m.characterize()
    app = _app(args)
    print(f"evaluating {app.name} ...", file=sys.stderr)
    reports = m.evaluate(app)
    print(format_run_metrics(reports))
    for op in ("write", "read"):
        print(format_used_matrix(reports, op))
    return 0


def cmd_predict(args) -> int:
    m = _methodology(args)
    print("characterizing ...", file=sys.stderr)
    m.characterize()
    app = _app(args)
    # one (cheap) reference run on the first configuration builds the
    # system-independent application profile
    first = next(iter(m.configs))
    print(f"profiling {app.name} on {first!r} ...", file=sys.stderr)
    reports = m.evaluate(app, names=[first])
    profile = reports[first].profile
    print(f"{'configuration':<14}{'predicted I/O time':>20}{'limiting levels':>30}")
    for pred in rank_predicted(profile, m.tables):
        levels = ", ".join(f"{k}:{v}" for k, v in pred.limiting_levels().items())
        print(f"{pred.config_name:<14}{pred.io_time_s:>18.1f}s  {levels:>28}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="I/O-system performance evaluation methodology (CLUSTER 2011 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show configurations and workloads").set_defaults(func=cmd_list)

    def common(sp):
        sp.add_argument("--configs", nargs="+", default=list(AOHYPER_CONFIGS),
                        help="configuration names (default: the three Aohyper configs)")
        sp.add_argument("--block-step", type=int, default=3,
                        help="stride through the 32K..16M block sweep (1 = all ten sizes)")
        sp.add_argument("--ior-gib", type=int, default=2, help="IOR file size in GiB")

    c = sub.add_parser("characterize", help="phase 1: build performance tables")
    common(c)
    c.add_argument("--out", help="directory to save tables as CSV")
    c.set_defaults(func=cmd_characterize)

    def workload(sp):
        sp.add_argument("workload", choices=["btio", "madbench"])
        sp.add_argument("--nprocs", type=int, default=16)
        sp.add_argument("--class", dest="clazz", default="A", help="BT-IO class (S/W/A/B/C)")
        sp.add_argument("--subtype", default="full", choices=["full", "simple"])
        sp.add_argument("--kpix", type=int, default=6, help="MADbench2 KPIX")
        sp.add_argument("--filetype", default="shared", choices=["unique", "shared"])

    e = sub.add_parser("evaluate", help="phase 3: run a workload per configuration")
    common(e)
    workload(e)
    e.set_defaults(func=cmd_evaluate)

    pr = sub.add_parser("predict", help="predict I/O time per configuration (no full runs)")
    common(pr)
    workload(pr)
    pr.set_defaults(func=cmd_predict)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
