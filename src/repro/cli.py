"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the methodology's phases:

* ``characterize`` — build and print the performance tables of a
  named cluster configuration (optionally save as CSV).
* ``evaluate`` — run a workload on one or more configurations and
  print the run metrics and used-percentage tables.
* ``predict`` — phase-1-only configuration selection: predict the
  workload's I/O time on every configuration from the tables alone.
* ``report`` — instrumented evaluation: per-level counters, windowed
  utilization with bottleneck attribution, phase-replay stats;
  exports JSON/CSV reports and JSONL/Chrome-format traces.
* ``perf`` — benchmark the methodology itself: serial vs parallel vs
  cached characterization timings, written as machine-readable JSON.
* ``workload`` — validate or compile declarative workload spec files
  (the JSON/YAML grammar; see :mod:`repro.workloads.grammar`), or
  ``workload fuzz`` seeded random-walk specs over it.
* ``lint`` — run the simlint static checks (determinism, units,
  resource-release safety, schedule-race rules; see
  :mod:`repro.analysis.simlint` and :mod:`repro.analysis.simrace`).
* ``race`` — the differential schedule-race matrix: kernel modes x
  sanitizer x seeded tie-break perturbations over one workload,
  byte-comparing conserved results (see
  :func:`repro.analysis.simrace.run_race_matrix`).
* ``list`` — show the available cluster configurations and workloads.

``evaluate``/``predict``/``report`` take the workload either as a
named benchmark adapter (``btio``/``madbench``), a spec file
(``--workload spec.yaml``), or a portable trace capture
(``--trace capture.csv``, produced by ``report --trace-format csv``).

``evaluate``/``report`` accept ``--sanitize`` to attach the runtime
sim-sanitizer (invariant checks; also ``REPRO_SANITIZE=1``) — a
sanitized run with violations exits nonzero.  They also accept
``--faults SCHEDULE.json`` to inject a deterministic fault schedule
(disk failures with RAID rebuild, NFS server stalls with RPC
retransmits, network flaps/latency spikes; see :mod:`repro.faults`)
and print a degraded-mode report per configuration.

``characterize``/``evaluate``/``predict`` accept ``--jobs`` (worker
processes; also the ``REPRO_JOBS`` environment variable) and
``--cache`` (on-disk characterization cache directory).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .clusters import (
    AOHYPER_CONFIGS,
    AOHYPER_EXTRA_CONFIGS,
    aohyper_config,
    cluster_a_config,
)
from .core import (
    Methodology,
    format_perf_table,
    format_run_metrics,
    format_used_matrix,
)
from .core.prediction import rank_predicted
from .storage.base import GiB, KiB, MiB
from .workloads.apps import BTIOApplication, MadBenchApplication
from .workloads.btio import BTIOConfig
from .workloads.madbench import MadBenchConfig

__all__ = ["main"]


def _configs(names: list[str]) -> dict:
    out = {}
    for name in names:
        if name in AOHYPER_CONFIGS or name in AOHYPER_EXTRA_CONFIGS:
            out[name] = aohyper_config(name)
        elif name in ("cluster-a", "cluster_a"):
            out["cluster-a"] = cluster_a_config()
        else:
            raise SystemExit(f"unknown configuration {name!r}; see `repro list`")
    return out


def _app(args):
    spec_src = getattr(args, "workload_spec", None)
    trace_src = getattr(args, "trace", None)
    chosen = [s for s in (args.workload, spec_src, trace_src) if s]
    if len(chosen) != 1:
        raise SystemExit(
            "choose exactly one workload: a named workload (btio/madbench), "
            "--workload SPEC.{yaml,json} or --trace CAPTURE.csv"
        )
    if spec_src:
        from .workloads.grammar import WorkloadSpecError, load_spec

        try:
            return load_spec(spec_src)
        except (OSError, WorkloadSpecError) as exc:
            raise SystemExit(f"cannot load workload spec {spec_src!r}: {exc}")
    if trace_src:
        from .tracing.ingest import IngestError, load_trace_workload

        try:
            return load_trace_workload(trace_src)
        except (OSError, IngestError) as exc:
            raise SystemExit(f"cannot load trace {trace_src!r}: {exc}")
    if args.workload == "btio":
        return BTIOApplication(
            BTIOConfig(clazz=args.clazz, nprocs=args.nprocs, subtype=args.subtype)
        )
    if args.workload == "madbench":
        return MadBenchApplication(
            MadBenchConfig(kpix=args.kpix, nprocs=args.nprocs, filetype=args.filetype)
        )
    raise SystemExit(f"unknown workload {args.workload!r}")


def _methodology(args) -> Methodology:
    blocks = tuple((32 * KiB) << k for k in range(0, 10, max(1, args.block_step)))
    return Methodology(
        _configs(args.configs),
        block_sizes=blocks,
        ior_nprocs=8,
        ior_file_bytes=args.ior_gib * GiB,
    )


def _characterize(m: Methodology, args) -> None:
    """Phase 1 with the shared --jobs/--cache/--refresh knobs."""
    m.characterize(
        n_jobs=args.jobs,
        cache=args.cache,
        refresh=getattr(args, "refresh", False),
    )


def cmd_list(_args) -> int:
    print("cluster configurations:")
    for name in AOHYPER_CONFIGS:
        print(f"  {name:<10} (paper cluster Aohyper, device={name})")
    for name in AOHYPER_EXTRA_CONFIGS:
        print(f"  {name:<10} (Aohyper extra, opt-in; device={name})")
    print("  cluster-a  (paper cluster A: 32 nodes, NFS on RAID5 front-end)")
    print("workloads:")
    print("  btio       NAS BT-IO (--class, --nprocs, --subtype full|simple)")
    print("  madbench   MADbench2 (--kpix, --nprocs, --filetype unique|shared)")
    print("  --workload SPEC.{yaml,json}  declarative grammar spec "
          "(see `repro workload validate|compile`)")
    print("  --trace CAPTURE.csv          replay a portable trace "
          "(from `repro report --trace-format csv`)")
    return 0


def cmd_characterize(args) -> int:
    m = _methodology(args)
    _characterize(m, args)
    for tables in m.tables.values():
        for table in tables.values():
            print(format_perf_table(table))
            print()
    if args.out:
        for name in m.save_tables(args.out):
            print(f"  -> saved {Path(args.out) / name}")
    return 0


def _sanitizer_summary(reports) -> int:
    """Print per-config sanitizer summaries; count total violations."""
    problems = 0
    for name, r in reports.items():
        if r.sanitizer is None:
            continue
        violations = r.sanitizer.get("violations", [])
        problems += len(violations)
        state = "clean" if not violations else f"{len(violations)} VIOLATION(S)"
        print(f"sanitizer[{name}]: {state} "
              f"({r.sanitizer.get('events_checked', 0)} events checked)")
        for v in violations:
            print(f"  [{v['check']}] t={v['t_s']:.6f}s: {v['message']}")
    return problems


def _load_faults(args):
    """The FaultSchedule named by --faults, or ``None``."""
    path = getattr(args, "faults", None)
    if not path:
        return None
    from .faults import FaultSchedule

    try:
        return FaultSchedule.load(path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"cannot load fault schedule {path!r}: {exc}")


def _faults_summary(reports) -> None:
    """Print the degraded-mode verdict per faulted configuration."""
    for name, r in reports.items():
        f = r.faults
        if f is None:
            continue
        print(f"faults[{name}]: verdict={f['verdict']} "
              f"(degraded {f['degraded_s']:.2f}s of {f['run_end_s']:.2f}s)")
        for op, ratio in sorted(f.get("bandwidth_ratio", {}).items()):
            healthy = f["rates_Bps"]["healthy"].get(op, 0.0)
            degraded = f["rates_Bps"]["degraded"].get(op, 0.0)
            print(f"  {op:<6} healthy {healthy / 1e6:8.2f} MB/s  "
                  f"degraded {degraded / 1e6:8.2f} MB/s  ratio {ratio:.3f}")
        for w in f.get("windows", []):
            extra = f" disk={w['disk']}" if "disk" in w else ""
            print(f"  window[{w['index']}] {w['kind']} on {w['target']}{extra}: "
                  f"{w['t0_s']:.2f}-{w['t1_s']:.2f}s -> {w['outcome']}")
        for owner, reb in sorted(f.get("rebuild", {}).items()):
            state = ("rebuilding" if reb["still_rebuilding"]
                     else "degraded" if reb["degraded"] else "complete")
            print(f"  rebuild[{owner}]: read {reb['bytes_read'] / 1e6:.1f} MB, "
                  f"wrote {reb['bytes_written'] / 1e6:.1f} MB ({state})")
        nfs = f.get("nfs", {})
        if nfs.get("retransmits") or nfs.get("major_timeouts"):
            print(f"  nfs: {nfs['retransmits']} retransmit(s), "
                  f"{nfs['major_timeouts']} major timeout(s)")
        if f.get("data_loss"):
            print(f"  DATA LOSS: {f['data_loss']}")


def cmd_evaluate(args) -> int:
    m = _methodology(args)
    print("characterizing ...", file=sys.stderr)
    _characterize(m, args)
    app = _app(args)
    faults = _load_faults(args)
    from .fingerprint import workload_fingerprint

    print(f"evaluating {app.name} [workload {workload_fingerprint(app)}] ...",
          file=sys.stderr)
    reports = m.evaluate(app, n_jobs=args.jobs, faults=faults)
    print(format_run_metrics(reports))
    for op in ("write", "read"):
        print(format_used_matrix(reports, op))
    _faults_summary(reports)
    if _sanitizer_summary(reports):
        print("ERROR: sanitizer reported invariant violations", file=sys.stderr)
        return 1
    return 0


def cmd_lint(args) -> int:
    """Run the simlint static checks (see repro.analysis.simlint)."""
    from .analysis.simlint import main as simlint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.rules:
        argv += ["--rules", *args.rules]
    return simlint_main(argv)


def cmd_race(args) -> int:
    """Differential schedule-race matrix (see repro.analysis.simrace)."""
    import json

    from .analysis.simrace import KERNEL_MODES, render_report, run_race_matrix

    app = _app(args)
    name, cfg = next(iter(_configs([args.config]).items()))
    kw: dict = {}
    if args.quick:
        # CI-sized: two modes, no sanitizer axis, small sweep — the
        # full matrix at paper scale is `repro race` with no flags
        kw.update(
            modes=("exact", "analytic"),
            sanitize=(False,),
            block_sizes=(256 * KiB, 1 * MiB),
            char_file_bytes=8 * MiB,
            ior_file_bytes=64 * MiB,
        )
    else:
        kw.update(modes=KERNEL_MODES, sanitize=(False, True))
    if args.modes:
        kw["modes"] = tuple(args.modes)
    report = run_race_matrix(
        app,
        config=cfg,
        config_name=name,
        seeds=tuple(args.seeds),
        tol=args.tol,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        **kw,
    )
    print(render_report(report))
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  -> wrote {args.out}", file=sys.stderr)
    return 0 if report["ok"] else 1


def cmd_workload(args) -> int:
    """Validate/compile declarative workload spec files (the grammar)."""
    from .workloads.grammar import (
        WorkloadSpecError,
        compile_spec,
        is_workload_spec,
        load_document,
        spec_fingerprint,
        spec_name,
    )

    if args.wcommand == "fuzz":
        import json as _json

        from .workloads.fuzz import fuzz_specs

        specs = fuzz_specs(args.n, seed=args.seed, max_phases=args.max_phases)
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            for doc in specs:
                target = out / f"{doc['name']}.json"
                target.write_text(_json.dumps(doc, indent=2) + "\n")
                print(f"  -> wrote {target}")
        else:
            print(_json.dumps(specs if args.n > 1 else specs[0], indent=2))
        return 0

    if args.wcommand == "validate":
        bad = 0
        for path in args.files:
            try:
                doc = load_document(path)
            except OSError as exc:
                print(f"{path}: ERROR: {exc}")
                bad += 1
                continue
            except WorkloadSpecError as exc:
                print(f"{path}: PARSE ERROR: {exc}")
                bad += 1
                continue
            if args.skip_foreign and not is_workload_spec(doc):
                print(f"{path}: skipped (not a workload spec)")
                continue
            try:
                spec = compile_spec(doc)
            except WorkloadSpecError as exc:
                print(f"{path}: INVALID")
                for err in exc.errors:
                    print(f"  - {err}")
                bad += 1
                continue
            print(f"{path}: ok ({len(spec.phases)} phase(s), "
                  f"nprocs={spec.nprocs}, fingerprint={spec_fingerprint(spec)})")
        return 1 if bad else 0

    # wcommand == "compile": show the compiled phase program
    import json as _json

    from .fingerprint import canonicalize

    try:
        doc = load_document(args.file)
        spec = compile_spec(doc)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file!r}: {exc}")
    except WorkloadSpecError as exc:
        print(f"{args.file}: INVALID", file=sys.stderr)
        for err in exc.errors:
            print(f"  - {err}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(canonicalize(spec), indent=2, sort_keys=True))
        return 0
    name = spec_name(doc, Path(str(args.file)).stem)
    layout = "file-per-process" if spec.per_process_files else "shared"
    print(f"workload {name!r}: nprocs={spec.nprocs} path={spec.path} "
          f"layout={layout} rank_disjoint={spec.rank_disjoint}")
    print(f"fingerprint: {spec_fingerprint(spec)}")
    print(f"{'#':>3} {'op':<6} {'nbytes':>10} {'count':>6} {'stride':>10} "
          f"{'reps':>5} {'coll':>5} {'compute_s':>10}")
    for i, ph in enumerate(spec.phases):
        stride = "-" if ph.stride is None else str(ph.stride)
        print(f"{i:>3} {ph.op:<6} {ph.nbytes:>10} {ph.count:>6} {stride:>10} "
              f"{ph.repetitions:>5} {str(ph.collective):>5} {ph.compute_s:>10.4f}")
    return 0


def cmd_report(args) -> int:
    """Instrumented phase 3: run metrics, counters, utilization, traces."""
    import json

    from .obs.runreport import build_run_report, render_run_report, report_to_csv

    m = _methodology(args)
    print("characterizing ...", file=sys.stderr)
    _characterize(m, args)
    app = _app(args)
    faults = _load_faults(args)
    print(f"evaluating {app.name} (instrumented) ...", file=sys.stderr)
    reports = m.evaluate(
        app,
        n_jobs=args.jobs,
        instrument=True,
        keep_events=bool(args.trace_out),
        window_s=args.window,
        faults=faults,
    )
    print(render_run_report(reports))
    report = build_run_report(
        app.name,
        reports,
        meta={"configs": sorted(m.configs), "phase_fastpath": not args.no_phase_fastpath},
    )
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  -> wrote {args.json}", file=sys.stderr)
    if args.csv:
        Path(args.csv).write_text(report_to_csv(report))
        print(f"  -> wrote {args.csv}", file=sys.stderr)
    if args.trace_out:
        if args.trace_format == "csv":
            # portable per-event capture, replayable via `evaluate
            # --trace` / ingest; one file per configuration
            from .tracing.darshan import events_to_csv
            from .tracing.tracer import IOTracer

            out = Path(args.trace_out)
            for name, r in reports.items():
                tracer = IOTracer(world_size=r.profile.nprocs)
                for e in r.events or []:
                    tracer.record(e.rank, e)
                target = (out if len(reports) == 1
                          else out.with_name(f"{out.stem}.{name}{out.suffix}"))
                target.write_text(events_to_csv(tracer))
                print(f"  -> wrote {target} (portable csv)", file=sys.stderr)
        else:
            from .obs.export import write_chrome_trace, write_events_jsonl

            runs = {
                name: {"events": r.events or [], "replay": r.replay_phases}
                for name, r in reports.items()
            }
            if args.trace_format == "chrome":
                write_chrome_trace(args.trace_out, runs, app=app.name)
            else:
                write_events_jsonl(args.trace_out, runs, meta={"app": app.name})
            print(f"  -> wrote {args.trace_out} ({args.trace_format})", file=sys.stderr)
    _faults_summary(reports)
    if _sanitizer_summary(reports):
        print("ERROR: sanitizer reported invariant violations", file=sys.stderr)
        return 1
    return 0


def cmd_sweep(args) -> int:
    """Crash-safe parameter-space sweep (see :mod:`repro.sweep`)."""
    from .sweep import (
        PlanError,
        StoreError,
        build_plan,
        char_params,
        collect_faults,
        collect_workloads,
        render_sweep_report,
        run_sweep,
    )

    def progress(msg: str) -> None:
        print(f"  {msg}", file=sys.stderr)

    # runner knobs: only what the user actually set overrides the
    # manifest (resume) or the defaults (fresh run)
    params = {
        key: value
        for key, value in (
            ("n_jobs", args.jobs),
            ("timeout_s", args.timeout),
            ("max_attempts", args.retries),
            ("backoff_base_s", args.backoff),
            ("seed", args.seed),
        )
        if value is not None
    }

    try:
        if args.resume or args.verify:
            out = run_sweep(
                args.rundir,
                params=params,
                resume=not args.verify,
                verify_only=args.verify,
                retry_quarantined=args.retry_quarantined,
                progress=progress,
            )
        else:
            if args.quick:
                char = char_params(
                    (256 * KiB, 1 * MiB),
                    char_file_bytes=8 * MiB,
                    ior_nprocs=8,
                    ior_file_bytes=64 * MiB,
                )
            else:
                blocks = tuple(
                    (32 * KiB) << k for k in range(0, 10, max(1, args.block_step))
                )
                char = char_params(
                    blocks, ior_nprocs=8, ior_file_bytes=args.ior_gib * GiB
                )
            tasks = build_plan(
                args.configs,
                collect_workloads(
                    named=args.workloads,
                    spec_files=args.workload_spec,
                    fuzz_seeds=args.fuzz_seeds,
                ),
                collect_faults(args.faults),
                args.modes,
                char,
                phase_fastpath=not args.no_phase_fastpath,
                sanitize=args.sanitize,
            )
            print(f"planned {len(tasks)} task(s)", file=sys.stderr)
            out = run_sweep(args.rundir, tasks, params, progress=progress)
    except (PlanError, StoreError) as exc:
        raise SystemExit(f"sweep: {exc}")

    print(render_sweep_report(out.report))
    print(f"  -> wrote {out.report_path}", file=sys.stderr)
    if out.error:
        print(f"ERROR: {out.error}", file=sys.stderr)
    return out.exit_code


def cmd_predict(args) -> int:
    m = _methodology(args)
    print("characterizing ...", file=sys.stderr)
    _characterize(m, args)
    trace_src = getattr(args, "trace", None)
    if trace_src:
        # a captured trace already characterizes the application — no
        # reference run needed, predict straight from the tables
        from .tracing.ingest import IngestError

        print(f"profiling trace {trace_src!r} ...", file=sys.stderr)
        try:
            profile = m.characterize_trace(trace_src)
        except (OSError, IngestError) as exc:
            raise SystemExit(f"cannot load trace {trace_src!r}: {exc}")
    else:
        app = _app(args)
        # one (cheap) reference run on the first configuration builds
        # the system-independent application profile
        first = next(iter(m.configs))
        print(f"profiling {app.name} on {first!r} ...", file=sys.stderr)
        reports = m.evaluate(app, names=[first])
        profile = reports[first].profile
    print(f"{'configuration':<14}{'predicted I/O time':>20}{'limiting levels':>30}")
    for pred in rank_predicted(profile, m.tables):
        levels = ", ".join(f"{k}:{v}" for k, v in pred.limiting_levels().items())
        print(f"{pred.config_name:<14}{pred.io_time_s:>18.1f}s  {levels:>28}")
    return 0


def cmd_perf(args) -> int:
    """Benchmark the methodology pipeline itself (serial/parallel/cached)."""
    import json
    import os
    import platform
    import tempfile
    import time

    from .core.tablecache import TableCache
    from .workloads.apps import MadBenchApplication
    from .workloads.madbench import MadBenchConfig

    if args.quick:
        sweep = dict(
            block_sizes=(256 * KiB, 1 * MiB),
            char_file_bytes=8 * MiB,
            ior_file_bytes=64 * MiB,
        )
    else:
        sweep = dict(
            block_sizes=tuple((32 * KiB) << k for k in range(0, 10, 3)),
            ior_file_bytes=args.ior_gib * GiB,
        )
    configs = _configs(args.configs)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)

    try:
        # the CPUs this process may actually use (cgroup/affinity aware)
        cpu_effective = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpu_effective = os.cpu_count()
    host = {
        "cpu_count": os.cpu_count(),
        "cpu_effective": cpu_effective,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }

    from .analysis.sanitizer import sanitize_enabled
    from .simengine import analytic as _analytic
    from .simengine.bench import kernel_microbench

    common_params = {
        "sanitize": sanitize_enabled(),
        "analytic": bool(_analytic.ANALYTIC),
        "faults": None,
    }

    # ---- kernel microbenchmark: raw event throughput of the DES core
    kb = kernel_microbench()
    print(f"  kernel microbench      {kb['wall_s']:8.2f}s  "
          f"({kb['events_per_s']:,} events/s)", file=sys.stderr)
    kernel_timings = {"kernel_total": kb["wall_s"]}
    for scen, row in kb["scenarios"].items():
        kernel_timings[f"kernel_{scen}"] = row["wall_s"]
    kernel_result = {
        "benchmark": "kernel",
        "host": host,
        "params": {**common_params, "repeats": kb["repeats"]},
        "timings_s": kernel_timings,
        "scenarios": kb["scenarios"],
        "events": kb["events"],
        "events_per_s": kb["events_per_s"],
    }
    kernel_out = Path(args.kernel_out)
    kernel_out.write_text(json.dumps(kernel_result, indent=2) + "\n")
    print(f"  -> wrote {kernel_out}", file=sys.stderr)

    def csvs(m: Methodology) -> dict:
        return {
            name: {level: t.to_csv() for level, t in tables.items()}
            for name, tables in m.tables.items()
        }

    def timed(fn):
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out

    def timed_best(fn, repeats):
        # best-wall over repeats, like the kernel microbench: single-shot
        # evaluation timings carry enough host noise (±15% observed) to
        # swamp the ~5% metrics-overhead bound perf_guard enforces
        best = float("inf")
        out = None
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            out = fn()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
        return best, out

    print(f"perf: {len(configs)} config(s), jobs={jobs}, "
          f"{'quick' if args.quick else 'full'} sweep", file=sys.stderr)

    m_serial = Methodology(dict(configs), **sweep)
    serial_s, _ = timed(lambda: m_serial.characterize(n_jobs=1))
    print(f"  characterize serial    {serial_s:8.2f}s", file=sys.stderr)

    m_par = Methodology(dict(configs), **sweep)
    parallel_s, _ = timed(lambda: m_par.characterize(n_jobs=jobs))
    print(f"  characterize parallel  {parallel_s:8.2f}s (jobs={jobs})", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as cache_dir:
        cache = TableCache(args.cache or cache_dir)
        m_warmup = Methodology(dict(configs), **sweep)
        m_warmup.characterize(cache=cache, refresh=args.refresh)
        m_cached = Methodology(dict(configs), **sweep)
        cached_s, _ = timed(lambda: m_cached.characterize(cache=cache))
        print(f"  characterize cached    {cached_s:8.2f}s (warm load)", file=sys.stderr)
        identical = csvs(m_serial) == csvs(m_par) == csvs(m_cached)

    app = MadBenchApplication(MadBenchConfig(kpix=2, nprocs=4))
    eval_serial_s, _ = timed(lambda: m_serial.evaluate(app, n_jobs=1))
    eval_parallel_s, _ = timed(lambda: m_serial.evaluate(app, n_jobs=jobs))
    print(f"  evaluate serial        {eval_serial_s:8.2f}s", file=sys.stderr)
    print(f"  evaluate parallel      {eval_parallel_s:8.2f}s", file=sys.stderr)

    result = {
        "benchmark": "characterize",
        "host": host,
        "params": {
            "configs": sorted(configs),
            "quick": bool(args.quick),
            **common_params,
            "n_jobs": jobs,
            "levels": list(m_serial.levels),
            "block_sizes": list(m_serial.block_sizes),
            "ior_file_bytes": m_serial.ior_file_bytes,
        },
        "timings_s": {
            "characterize_serial": round(serial_s, 4),
            "characterize_parallel": round(parallel_s, 4),
            "characterize_cached": round(cached_s, 4),
            "evaluate_serial": round(eval_serial_s, 4),
            "evaluate_parallel": round(eval_parallel_s, 4),
        },
        "speedup": {
            "parallel": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
            "cached": round(serial_s / cached_s, 3) if cached_s > 0 else None,
        },
        "tables_identical": identical,
    }
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"  -> wrote {out}", file=sys.stderr)
    print(json.dumps(result, indent=2))
    if not identical:
        print("ERROR: serial/parallel/cached tables differ", file=sys.stderr)
        return 1

    # ---- evaluation benchmark: full replay vs phase fastpath vs warm start
    from .core.evaluation import used_tables_equal
    from .workloads.apps import BTIOApplication
    from .workloads.btio import BTIOConfig

    if args.quick:
        eval_apps = {
            "btio": BTIOApplication(BTIOConfig(clazz="W", nprocs=4, subtype="full")),
            "madbench": MadBenchApplication(MadBenchConfig(kpix=2, nprocs=4)),
        }
    else:
        eval_apps = {
            "btio": BTIOApplication(BTIOConfig(clazz="A", nprocs=16, subtype="full")),
            "madbench": MadBenchApplication(MadBenchConfig(kpix=6, nprocs=16)),
        }

    per_app = {}
    totals = {"full": 0.0, "fastpath": 0.0, "warm_start": 0.0, "full_metrics": 0.0}
    eval_identical = True
    for app_name, eapp in eval_apps.items():
        full_s, full_r = timed_best(
            lambda: m_serial.evaluate(eapp, n_jobs=1, phase_fastpath=False),
            args.eval_repeat,
        )
        # same run with metrics collection on: its cost over full_s is
        # the observability overhead scripts/perf_guard.py bounds
        inst_s, _ = timed_best(
            lambda: m_serial.evaluate(
                eapp, n_jobs=1, phase_fastpath=False, instrument=True
            ),
            args.eval_repeat,
        )
        fast_s, fast_r = timed(
            lambda: m_serial.evaluate(eapp, n_jobs=1, phase_fastpath=True)
        )
        warm_s, warm_r = timed(
            lambda: m_serial.evaluate(eapp, n_jobs=1, phase_fastpath=True, warm_start=True)
        )
        same = all(
            used_tables_equal(full_r[n].used, fast_r[n].used, rel_tol=1e-5)
            and used_tables_equal(full_r[n].used, warm_r[n].used, rel_tol=1e-5)
            and full_r[n].write_bottleneck() == fast_r[n].write_bottleneck()
            and full_r[n].read_bottleneck() == fast_r[n].read_bottleneck()
            for n in full_r
        )
        eval_identical = eval_identical and same
        totals["full"] += full_s
        totals["fastpath"] += fast_s
        totals["warm_start"] += warm_s
        totals["full_metrics"] += inst_s
        per_app[app_name] = {
            "full_s": round(full_s, 4),
            "full_metrics_s": round(inst_s, 4),
            "fastpath_s": round(fast_s, 4),
            "warm_start_s": round(warm_s, 4),
            "speedup_fastpath": round(full_s / fast_s, 3) if fast_s > 0 else None,
            "speedup_warm_start": round(full_s / warm_s, 3) if warm_s > 0 else None,
            "tables_identical": same,
            "replay": {
                n: r.replay.as_dict() for n, r in fast_r.items() if r.replay is not None
            },
        }
        print(f"  evaluate {app_name:<9} full {full_s:7.2f}s  "
              f"fastpath {fast_s:7.2f}s  warm {warm_s:7.2f}s", file=sys.stderr)

    eval_result = {
        "benchmark": "evaluate",
        "host": host,
        "params": {
            "configs": sorted(configs),
            "quick": bool(args.quick),
            **common_params,
            "apps": sorted(eval_apps),
            "eval_repeat": max(args.eval_repeat, 1),
        },
        "timings_s": {
            "evaluate_full": round(totals["full"], 4),
            "evaluate_full_metrics": round(totals["full_metrics"], 4),
            "evaluate_fastpath": round(totals["fastpath"], 4),
            "evaluate_warm_start": round(totals["warm_start"], 4),
        },
        "speedup": {
            "fastpath": round(totals["full"] / totals["fastpath"], 3)
            if totals["fastpath"] > 0 else None,
            "warm_start": round(totals["full"] / totals["warm_start"], 3)
            if totals["warm_start"] > 0 else None,
        },
        "metrics_overhead": round(totals["full_metrics"] / totals["full"], 4)
        if totals["full"] > 0 else None,
        "per_app": per_app,
        "tables_identical": eval_identical,
    }
    eval_out = Path(args.eval_out)
    eval_out.write_text(json.dumps(eval_result, indent=2) + "\n")
    print(f"  -> wrote {eval_out}", file=sys.stderr)
    print(json.dumps(eval_result, indent=2))
    if not eval_identical:
        print("ERROR: fastpath/warm-start used tables differ from full replay",
              file=sys.stderr)
        return 1

    if args.profile:
        # a separate profiled characterization run, so the profiler's
        # own overhead never leaks into the timings written above
        import cProfile
        import pstats

        # a single quick characterization finishes in ~0.2s on a 1-CPU
        # host, which makes top-25 attribution a coin flip; accumulate
        # several runs into one Profile so the ranking is stable
        repeat = max(args.profile_repeat, 1)
        pr = cProfile.Profile()
        for _ in range(repeat):
            m_prof = Methodology(dict(configs), **sweep)
            pr.enable()
            m_prof.characterize(n_jobs=1)
            pr.disable()
        st = pstats.Stats(pr)
        st.sort_stats("cumulative")
        rows = []
        for func in st.fcn_list[:25]:
            cc, nc, tt, ct, _callers = st.stats[func]
            filename, line, name = func
            rows.append({
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            })
        prof_result = {
            "benchmark": "profile",
            "host": host,
            "params": {
                "configs": sorted(configs),
                "quick": bool(args.quick),
                "profile_repeat": repeat,
                **common_params,
            },
            "total_tt_s": round(st.total_tt, 4),
            "top_cumulative": rows,
        }
        prof_out = Path(args.profile_out)
        prof_out.write_text(json.dumps(prof_result, indent=2) + "\n")
        print(f"  -> wrote {prof_out} (top {len(rows)} by cumulative time)",
              file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="I/O-system performance evaluation methodology (CLUSTER 2011 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show configurations and workloads").set_defaults(func=cmd_list)

    def common(sp):
        sp.add_argument("--configs", nargs="+", default=list(AOHYPER_CONFIGS),
                        help="configuration names (default: the three Aohyper configs)")
        sp.add_argument("--block-step", type=int, default=3,
                        help="stride through the 32K..16M block sweep (1 = all ten sizes)")
        sp.add_argument("--ior-gib", type=int, default=2, help="IOR file size in GiB")
        sp.add_argument("--jobs", type=int, default=None,
                        help="worker processes for characterization/evaluation "
                             "(0 = one per CPU; default: REPRO_JOBS, else serial)")
        sp.add_argument("--cache", default=None, metavar="DIR",
                        help="characterization cache directory (reuse tables "
                             "keyed by config fingerprint + sweep params)")
        sp.add_argument("--refresh", action="store_true",
                        help="recompute and overwrite cached tables")
        sp.add_argument("--no-phase-fastpath", action="store_true",
                        help="disable phase-replay extrapolation: fully "
                             "simulate every phase occurrence (also the "
                             "REPRO_NO_PHASE_FASTPATH environment variable)")
        sp.add_argument("--sanitize", action="store_true",
                        help="attach the runtime sim-sanitizer: invariant "
                             "checks for event monotonicity, tie-breaking, "
                             "utilization bounds, byte conservation and "
                             "resource leaks (also REPRO_SANITIZE=1)")
        sp.add_argument("--faults", default=None, metavar="FILE",
                        help="inject the deterministic fault schedule in "
                             "FILE (JSON; see repro.faults.FaultSchedule) "
                             "during evaluation and print a degraded-mode "
                             "report per configuration")
        sp.add_argument("--analytic", action="store_true",
                        help="enable the analytic fast-forward kernel mode "
                             "(slice rings + vectorized scatter costs; "
                             "bit-identical tables, also REPRO_ANALYTIC=1)")

    c = sub.add_parser("characterize", help="phase 1: build performance tables")
    common(c)
    c.add_argument("--out", help="directory to save tables as CSV")
    c.set_defaults(func=cmd_characterize)

    def workload(sp):
        sp.add_argument("workload", nargs="?", default=None,
                        choices=["btio", "madbench"],
                        help="a built-in benchmark adapter (or use "
                             "--workload/--trace instead)")
        sp.add_argument("--nprocs", type=int, default=16)
        sp.add_argument("--class", dest="clazz", default="A", help="BT-IO class (S/W/A/B/C)")
        sp.add_argument("--subtype", default="full", choices=["full", "simple"])
        sp.add_argument("--kpix", type=int, default=6, help="MADbench2 KPIX")
        sp.add_argument("--filetype", default="shared", choices=["unique", "shared"])
        sp.add_argument("--workload", dest="workload_spec", default=None,
                        metavar="SPEC",
                        help="declarative workload spec file (JSON or YAML "
                             "grammar; see `repro workload validate`)")
        sp.add_argument("--trace", dest="trace", default=None, metavar="FILE",
                        help="replay a portable trace capture (csv format "
                             "from `repro report --trace-format csv`)")

    e = sub.add_parser("evaluate", help="phase 3: run a workload per configuration")
    common(e)
    workload(e)
    e.set_defaults(func=cmd_evaluate)

    pr = sub.add_parser("predict", help="predict I/O time per configuration (no full runs)")
    common(pr)
    workload(pr)
    pr.set_defaults(func=cmd_predict)

    rp = sub.add_parser(
        "report",
        help="instrumented evaluation: per-level counters, windowed "
             "utilization, phase-replay stats, trace export",
    )
    common(rp)
    workload(rp)
    rp.add_argument("--json", metavar="FILE", help="write the run report as JSON")
    rp.add_argument("--csv", metavar="FILE", help="write the run report as flat CSV")
    rp.add_argument("--trace-out", metavar="FILE",
                    help="write the MPI-IO event trace to FILE")
    rp.add_argument("--trace-format", choices=["chrome", "jsonl", "csv"],
                    default="chrome",
                    help="trace file format (default: chrome, for "
                         "chrome://tracing / Perfetto; csv = portable "
                         "capture replayable via `evaluate --trace`)")
    rp.add_argument("--window", type=float, default=None,
                    help="utilization sampling window in simulated seconds "
                         "(default: 0.05, width doubles on long runs)")
    rp.set_defaults(func=cmd_report)

    pf = sub.add_parser("perf", help="benchmark the methodology pipeline itself")
    common(pf)
    pf.add_argument("--quick", action="store_true",
                    help="small sweep suitable for CI (seconds, not minutes)")
    pf.add_argument("--out", default="BENCH_characterize.json",
                    help="JSON results file (default: BENCH_characterize.json)")
    pf.add_argument("--eval-out", default="BENCH_evaluate.json",
                    help="evaluation-benchmark JSON file (default: BENCH_evaluate.json)")
    pf.add_argument("--kernel-out", default="BENCH_kernel.json",
                    help="kernel-microbenchmark JSON file (default: BENCH_kernel.json)")
    pf.add_argument("--profile", action="store_true",
                    help="additionally cProfile a serial characterization run "
                         "and write the top-25 functions by cumulative time")
    pf.add_argument("--profile-out", default="PROFILE_perf.json",
                    help="profile JSON file (default: PROFILE_perf.json)")
    pf.add_argument("--eval-repeat", type=int, default=3,
                    help="repeats per full/instrumented evaluation timing, "
                         "best wall kept (default: 3; the within-run metrics-"
                         "overhead bound needs noise-robust timings)")
    pf.add_argument("--profile-repeat", type=int, default=5,
                    help="profiled characterization runs aggregated into "
                         "one pstats table (default: 5; quick runs are too "
                         "short for a stable top-25 from a single run)")
    pf.set_defaults(func=cmd_perf)

    sw = sub.add_parser(
        "sweep",
        help="crash-safe parameter-space sweep: config x workload x "
             "fault x mode, resumable from its write-ahead result log",
    )
    sw.add_argument("rundir", metavar="RUNDIR",
                    help="run directory (manifest + append-only results + "
                         "sweep report); resume with --resume RUNDIR")
    sw.add_argument("--configs", nargs="+",
                    default=["jbod", "raid1", "raid5"],
                    help="configuration axis (default: jbod raid1 raid5)")
    sw.add_argument("--workloads", nargs="+", default=[],
                    metavar="NAME[:ARGS]",
                    help="named workload axis items: "
                         "btio[:CLASS[:NPROCS[:SUBTYPE]]] or "
                         "madbench[:KPIX[:NPROCS[:FILETYPE]]]")
    sw.add_argument("--workload-spec", nargs="+", default=[], metavar="SPEC",
                    help="declarative spec files added to the workload axis "
                         "(inlined into the plan, so the run directory "
                         "resumes without them)")
    sw.add_argument("--fuzz-seeds", nargs="+", type=int, default=[],
                    metavar="SEED",
                    help="`repro workload fuzz` seeds added to the "
                         "workload axis")
    sw.add_argument("--faults", nargs="+", default=["none"],
                    metavar="FILE|none",
                    help="fault axis: 'none' and/or fault-schedule JSON "
                         "files (default: none)")
    sw.add_argument("--modes", nargs="+", default=["exact"],
                    choices=["exact", "analytic"],
                    help="kernel-mode axis (default: exact)")
    sw.add_argument("--quick", action="store_true",
                    help="small characterization sweep per config (CI-sized)")
    sw.add_argument("--block-step", type=int, default=3,
                    help="stride through the 32K..16M block sweep (full mode)")
    sw.add_argument("--ior-gib", type=int, default=2,
                    help="IOR file size in GiB (full mode)")
    sw.add_argument("--jobs", type=int, default=None,
                    help="sweep worker processes (default: 1, or the "
                         "manifest's value on resume)")
    sw.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="per-task wall-clock budget in seconds (default 300)")
    sw.add_argument("--retries", type=int, default=None, metavar="N",
                    help="attempts per task before quarantine (default 3)")
    sw.add_argument("--backoff", type=float, default=None, metavar="S",
                    help="base retry backoff in seconds (default 0.5)")
    sw.add_argument("--seed", type=int, default=None,
                    help="backoff-jitter seed (default 0; results never "
                         "depend on it)")
    sw.add_argument("--resume", action="store_true",
                    help="continue an interrupted run from its WAL")
    sw.add_argument("--verify", action="store_true",
                    help="only replay and verify the WAL against the "
                         "manifest; no execution")
    sw.add_argument("--retry-quarantined", action="store_true",
                    help="with --resume: re-attempt quarantined tasks")
    sw.add_argument("--sanitize", action="store_true",
                    help="pin the runtime sim-sanitizer on in every task")
    sw.add_argument("--no-phase-fastpath", action="store_true",
                    help="pin phase-replay extrapolation off in every task")
    sw.set_defaults(func=cmd_sweep)

    wl = sub.add_parser("workload", help="validate/compile declarative "
                                         "workload spec files")
    wsub = wl.add_subparsers(dest="wcommand", required=True)
    wv = wsub.add_parser("validate", help="validate spec files against the "
                                          "workload grammar")
    wv.add_argument("files", nargs="+", metavar="SPEC",
                    help="spec files (JSON or YAML)")
    wv.add_argument("--skip-foreign", action="store_true",
                    help="skip files that are valid JSON/YAML but not "
                         "workload specs (e.g. fault schedules)")
    wv.set_defaults(func=cmd_workload)
    wc = wsub.add_parser("compile", help="print the compiled phase program "
                                         "of one spec file")
    wc.add_argument("file", metavar="SPEC")
    wc.add_argument("--json", action="store_true",
                    help="emit the canonical JSON form instead of a table")
    wc.set_defaults(func=cmd_workload)
    wf = wsub.add_parser("fuzz", help="generate seeded random-walk specs "
                                      "over the grammar (race-matrix corpus)")
    wf.add_argument("--n", type=int, default=1,
                    help="number of specs (seeds seed..seed+n-1; default 1)")
    wf.add_argument("--seed", type=int, default=0,
                    help="base seed; each spec is a pure function of its seed")
    wf.add_argument("--max-phases", type=int, default=6,
                    help="maximum top-level phase/loop nodes per spec")
    wf.add_argument("--out", default=None, metavar="DIR",
                    help="write each spec as DIR/<name>.json instead of stdout")
    wf.set_defaults(func=cmd_workload)

    ln = sub.add_parser("lint", help="simlint static checks (determinism, "
                                     "units, resource-release safety, "
                                     "schedule races)")
    ln.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ln.add_argument("--format", choices=["text", "json"], default="text")
    ln.add_argument("--rules", nargs="+", default=None, metavar="RULE",
                    help="restrict to these rules (simlint and/or "
                         "schedule-race rule names)")
    ln.set_defaults(func=cmd_lint)

    rc = sub.add_parser(
        "race",
        help="differential schedule-race matrix: kernel modes x sanitizer "
             "x seeded tie-break perturbations",
    )
    workload(rc)
    rc.add_argument("--config", default="jbod",
                    help="cluster configuration for the matrix (default: jbod)")
    rc.add_argument("--quick", action="store_true",
                    help="CI-sized cells: exact+analytic modes, no sanitizer "
                         "axis, small characterization sweep")
    rc.add_argument("--modes", nargs="+", default=None,
                    choices=["exact", "analytic", "no_fasthold", "no_fsfast"],
                    help="override the kernel-mode axis")
    rc.add_argument("--seeds", nargs="+", type=int, default=[0],
                    help="seeds for the shuffled tie-break plans (default: 0)")
    rc.add_argument("--tol", type=float, default=0.02,
                    help="timing-sensitivity tolerance (default: 0.02)")
    rc.add_argument("--out", default=None, metavar="FILE",
                    help="write the repro.race-report/1 JSON to FILE")
    rc.set_defaults(func=cmd_race)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_phase_fastpath", False):
        import os

        # propagate to worker processes spawned by run_tasks
        os.environ["REPRO_NO_PHASE_FASTPATH"] = "1"
    if getattr(args, "sanitize", False):
        import os

        # propagate to worker processes spawned by run_tasks
        os.environ["REPRO_SANITIZE"] = "1"
    if getattr(args, "analytic", False):
        import os

        from .simengine import analytic

        # flip the live flag for this process and propagate to workers
        analytic.ANALYTIC = True
        os.environ["REPRO_ANALYTIC"] = "1"
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
