"""Ablation — collective-buffering aggregator count (``cb_nodes``).

Two-phase I/O trades exchange traffic against filesystem concurrency:
too few aggregators serialise the I/O phase, too many fragment the
file domains and fight for the server.  The ROMIO default (one per
node) should sit at or near the sweet spot.
"""

from repro.simengine import Environment
from repro.clusters import build_aohyper
from repro.storage.base import MiB
from repro.workloads.ior import run_ior
from conftest import show


def sweep():
    out = {}
    for cb_nodes in (1, 2, 4, 8):
        system = build_aohyper(Environment(), "raid5")
        # route the hint through the world the IOR program builds
        import repro.workloads.ior as ior_mod

        res = _run_with_hint(system, cb_nodes)
        out[cb_nodes] = res
    return out


def _run_with_hint(system, cb_nodes):
    from repro.workloads.ior import IORResult, IORRow

    env = system.env
    world = system.world(8, io_hints={"collective": True, "cb_nodes": cb_nodes})
    marks = {}

    def program(mpi):
        f = yield mpi.file_open("/nfs/abl.dat", "w")
        yield mpi.barrier()
        t0 = mpi.now
        for seg in range(4):
            base = seg * 16 * MiB * mpi.size + mpi.rank * 16 * MiB
            yield f.write_at_all(base, 256 * 1024, count=64)
        yield f.close()
        yield mpi.barrier()
        if mpi.rank == 0:
            marks["dt"] = mpi.now - t0

    env.run(world.run_program(program))
    total = 4 * 16 * MiB * 8
    return total / marks["dt"]


def test_aggregator_sweep(benchmark):
    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "Ablation — aggregator count (8 procs, 8 nodes, RAID5)",
        "\n".join(f"cb_nodes={k}: {v / MiB:8.1f} MB/s" for k, v in rates.items()),
    )
    # more aggregators must not catastrophically hurt, and >1 helps
    assert rates[4] > 0.6 * max(rates.values())
    assert max(rates.values()) < 150 * MiB  # still wire-bound
