"""Extension — BT-IO full-subtype process-count scaling on Aohyper.

The paper compares 16 vs 64 processes on cluster A; this sweep makes
the trend explicit on Aohyper: aggregate I/O throughput plateaus at
the wire (more ranks cannot push more through one NFS server), while
compute time keeps shrinking, so the I/O *fraction* of the run grows
with scale — the paper's "with a greater number of processes, the I/O
system affects the run time".
"""

from repro.simengine import Environment
from repro.clusters import build_aohyper
from repro.storage.base import MiB
from repro.workloads.btio import BTIOConfig, run_btio
from conftest import show


def sweep():
    out = {}
    for nprocs in (4, 16, 64):
        system = build_aohyper(Environment(), "raid5")
        res = run_btio(system, BTIOConfig(clazz="A", nprocs=nprocs, subtype="full"))
        out[nprocs] = res
    return out


def test_scaling(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'procs':>6}{'exec (s)':>10}{'I/O (s)':>10}{'I/O %':>8}{'agg MB/s':>10}"]
    for n, r in results.items():
        lines.append(
            f"{n:>6}{r.execution_time:>10.1f}{r.io_time:>10.1f}"
            f"{r.io_fraction * 100:>7.1f}%{r.throughput_Bps / MiB:>10.1f}"
        )
    show("Extension — BT-IO full scaling (class A, Aohyper RAID5)", "\n".join(lines))

    # compute shrinks with more ranks...
    assert results[64].execution_time < results[4].execution_time
    # ...but aggregate I/O stays wire-bound (within 40% across scales)
    rates = [r.throughput_Bps for r in results.values()]
    assert max(rates) / min(rates) < 1.6
    # so the I/O share of the run grows with the process count
    assert results[64].io_fraction > results[16].io_fraction > results[4].io_fraction
