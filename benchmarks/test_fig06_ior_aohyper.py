"""Fig. 6 — I/O library (MPI-IO) characterization of cluster Aohyper
with IOR: 8 processes, 256 KiB transfers, block sizes 1 MiB–256 MiB
(the paper sweeps to 1 GiB; the plateau is reached well before),
32 GB file on the RAID configurations and 12 GB on JBOD.

Shape: the library level sits at or just below the NFS level — the
wire, not the array, caps collective throughput.
"""

import pytest

from repro.simengine import Environment
from repro.clusters import build_aohyper
from repro.storage.base import GiB, MiB
from repro.workloads import run_ior
from conftest import show

BLOCKS = (1 * MiB, 16 * MiB, 64 * MiB, 256 * MiB)


@pytest.mark.parametrize("device", ["jbod", "raid1", "raid5"])
def test_fig06(benchmark, device):
    file_bytes = 12 * GiB if device == "jbod" else 32 * GiB

    def run():
        system = build_aohyper(Environment(), device)
        return run_ior(system, 8, block_sizes=BLOCKS, transfer_bytes=256 * 1024,
                       file_bytes=file_bytes)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'block':>8} {'write':>10} {'read':>10}  (MB/s aggregate)"]
    for b in BLOCKS:
        lines.append(f"{b // MiB:>7}M {res.rate('write', b) / MiB:>10.1f} {res.rate('read', b) / MiB:>10.1f}")
    show(f"Fig. 6 ({device}) — Aohyper I/O library characterization", "\n".join(lines))

    for b in BLOCKS:
        # the library level cannot beat the wire by much (cache bursts aside)
        assert res.rate("write", b) < 140 * MiB
        assert res.rate("write", b) > 20 * MiB
