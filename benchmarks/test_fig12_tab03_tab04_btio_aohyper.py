"""Fig. 12 + Tables III/IV — NAS BT-IO class C, 16 processes, on the
three Aohyper configurations: execution time, I/O time and throughput
(Fig. 12) and the used percentage of the I/O system per level for
writes (Table III) and reads (Table IV).

Shapes to preserve (paper §III-C2):
* full is far more efficient than simple; full's performance is
  similar on the three configurations;
* full exploits the I/O system's capacity (≳100% at the library
  level);
* simple uses <15% of the write capacity and roughly a third of the
  read capacity at the NFS level.
"""

from repro.core import format_run_metrics, format_used_matrix
from conftest import show


def test_fig12_run_metrics(benchmark, btio_aohyper_reports):
    def render():
        out = {}
        for subtype, reports in btio_aohyper_reports.items():
            for cfg, rep in reports.items():
                out[f"{cfg}-{subtype}"] = rep
        return format_run_metrics(out)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Fig. 12 — BT-IO class C / 16 procs on Aohyper", text)

    full = btio_aohyper_reports["full"]
    simple = btio_aohyper_reports["simple"]
    for cfg in ("jbod", "raid1", "raid5"):
        assert full[cfg].execution_time_s < simple[cfg].execution_time_s
        assert full[cfg].throughput_Bps > 2 * simple[cfg].throughput_Bps
    # full performs similarly across the three configurations (<12% spread)
    times = [full[c].execution_time_s for c in ("jbod", "raid1", "raid5")]
    assert (max(times) - min(times)) / min(times) < 0.12


def test_tab03_write_used_percentage(benchmark, btio_aohyper_reports):
    def render():
        return {
            subtype: format_used_matrix(reports, "write")
            for subtype, reports in btio_aohyper_reports.items()
        }

    texts = benchmark.pedantic(render, rounds=1, iterations=1)
    for subtype, text in texts.items():
        show(f"Table III — % of I/O system use, WRITES ({subtype})", text)

    for cfg in ("jbod", "raid1", "raid5"):
        full_pct = btio_aohyper_reports["full"][cfg].used.cell("iolib", "write")
        simple_pct = btio_aohyper_reports["simple"][cfg].used.cell("nfs", "write")
        assert full_pct > 75.0  # capacity exploited
        assert simple_pct < 15.0  # paper: "less than 15% on writing"


def test_tab04_read_used_percentage(benchmark, btio_aohyper_reports):
    def render():
        return {
            subtype: format_used_matrix(reports, "read")
            for subtype, reports in btio_aohyper_reports.items()
        }

    texts = benchmark.pedantic(render, rounds=1, iterations=1)
    for subtype, text in texts.items():
        show(f"Table IV — % of I/O system use, READS ({subtype})", text)

    jbod_simple = btio_aohyper_reports["simple"]["jbod"].used.cell("nfs", "read")
    assert jbod_simple < 60.0  # paper: "only about 30%"
    assert jbod_simple > 5.0
    # reads fare better than writes for the simple subtype
    for cfg in ("jbod", "raid1", "raid5"):
        used = btio_aohyper_reports["simple"][cfg].used
        assert used.cell("nfs", "read") > used.cell("nfs", "write")
