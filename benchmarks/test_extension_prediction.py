"""Extension — validating the predictive I/O model (paper §V future
work) against full simulations.

For BT-IO full/simple on each Aohyper configuration, compare the I/O
time predicted from the performance tables alone with the I/O time of
the actual (simulated) run.  The prediction ignores overlap, metadata
and contention transients, so we require agreement within a factor of
3 — good enough to *rank* configurations, which is its purpose.
"""

from repro.core.prediction import predict_io_time, rank_predicted
from conftest import show


def test_prediction_vs_simulation(benchmark, aohyper_methodology, btio_aohyper_reports):
    def validate():
        rows = []
        for subtype, reports in btio_aohyper_reports.items():
            for cfg, rep in reports.items():
                pred = predict_io_time(cfg, rep.profile, aohyper_methodology.tables[cfg])
                rows.append((f"{cfg}-{subtype}", pred.io_time_s, rep.io_time_s))
        return rows

    rows = benchmark.pedantic(validate, rounds=1, iterations=1)
    lines = [f"{'run':<16}{'predicted (s)':>14}{'simulated (s)':>14}{'ratio':>8}"]
    for name, pred_t, sim_t in rows:
        lines.append(f"{name:<16}{pred_t:>14.1f}{sim_t:>14.1f}{pred_t / sim_t:>8.2f}")
    show("Extension — predictive model vs simulation (BT-IO class C/16p)", "\n".join(lines))

    for name, pred_t, sim_t in rows:
        assert pred_t > 0
        ratio = pred_t / sim_t
        if name.endswith("full"):
            # well-behaved access patterns predict within a few percent
            assert 0.8 < ratio < 1.25, name
        else:
            # the simple subtype under-predicts by the per-operation
            # latency the sequential tables cannot express — the same
            # inefficiency the used-percentage evaluation measures as
            # <15% utilization; the prediction is a best-case bound
            assert 0.1 < ratio <= 1.05, name


def test_prediction_ranks_like_simulation(benchmark, aohyper_methodology, btio_aohyper_reports):
    """The cheap phase-1-only ranking should order configurations the
    same way the expensive full runs do (for the simple subtype, where
    configurations actually differ)."""

    def ranks():
        reports = btio_aohyper_reports["simple"]
        profile = reports["raid5"].profile
        predicted = [p.config_name for p in rank_predicted(profile, aohyper_methodology.tables)]
        simulated = sorted(reports, key=lambda c: reports[c].io_time_s)
        return predicted, simulated

    predicted, simulated = benchmark.pedantic(ranks, rounds=1, iterations=1)
    show("Extension — configuration ranking",
         f"predicted order: {predicted}\nsimulated order: {simulated}")
    assert predicted[0] == simulated[0]  # the winner matches
