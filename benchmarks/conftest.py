"""Shared state for the experiment benchmarks.

Each ``test_*`` file regenerates one of the paper's tables or figures
(see DESIGN.md §5).  Expensive artefacts — system characterizations
and application runs — are session-scoped fixtures so the many tables
derived from one run do not recompute it.

Scale notes (documented deviations, also in EXPERIMENTS.md):

* Aohyper experiments run at full paper scale (class C, 16 processes,
  IOzone file = 2 x RAM = 4 GB).
* Cluster A characterization uses 4 IOzone block sizes instead of 10
  (its 24 GB stress file makes each pass expensive); the application
  runs use the paper's full 16/64-process setups.

Opt-in acceleration (see README "Performance & caching"):

* ``REPRO_BENCH_CACHE=<dir>`` reuses characterization tables across
  benchmark sessions via the fingerprint-keyed on-disk cache — the
  first run pays full price, later runs load the tables in
  milliseconds.  Keys cover every config field and sweep parameter,
  so a changed setup recomputes automatically; delete the directory
  (or use ``TableCache.invalidate``) after simulator changes.
* ``REPRO_JOBS=<n>`` fans the per-(config, level) characterization
  units out over worker processes.
"""

from __future__ import annotations

import os

import pytest

from repro.simengine import Environment
from repro.core import Methodology
from repro.clusters import AOHYPER_CONFIGS, aohyper_config, cluster_a_config
from repro.storage.base import GiB, KiB, MiB
from repro.workloads.apps import BTIOApplication, MadBenchApplication
from repro.workloads.btio import BTIOConfig
from repro.workloads.madbench import MadBenchConfig

#: the paper's IOzone sweep: 32 KiB .. 16 MiB
PAPER_BLOCKS = tuple((32 * KiB) << k for k in range(10))
#: reduced sweep for the expensive cluster-A stress file
CLUSTER_A_BLOCKS = (32 * KiB, 256 * KiB, 1 * MiB, 16 * MiB)

#: opt-in on-disk characterization cache for benchmark sessions
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "").strip() or None


def show(title: str, body: str) -> None:
    """Print a regenerated artefact under a banner (visible with -s;
    captured output is shown for failing shapes)."""
    print(f"\n===== {title} =====\n{body}\n")


@pytest.fixture(scope="session")
def aohyper_methodology() -> Methodology:
    """Phase-1 characterization of all three Aohyper configurations."""
    m = Methodology(
        {name: aohyper_config(name) for name in AOHYPER_CONFIGS},
        block_sizes=PAPER_BLOCKS,
        ior_nprocs=8,
        ior_file_bytes=4 * GiB,
    )
    m.characterize(cache=BENCH_CACHE)
    return m


@pytest.fixture(scope="session")
def cluster_a_methodology() -> Methodology:
    m = Methodology(
        {"cluster-a": cluster_a_config()},
        block_sizes=CLUSTER_A_BLOCKS,
        ior_nprocs=8,
        ior_file_bytes=4 * GiB,
    )
    m.characterize(cache=BENCH_CACHE)
    return m


@pytest.fixture(scope="session")
def btio_aohyper_reports(aohyper_methodology):
    """BT-IO class C, 16 processes, both subtypes, all three configs."""
    out = {}
    for subtype in ("full", "simple"):
        app = BTIOApplication(BTIOConfig(clazz="C", nprocs=16, subtype=subtype))
        out[subtype] = aohyper_methodology.evaluate(app)
    return out


@pytest.fixture(scope="session")
def btio_cluster_a_reports(cluster_a_methodology):
    """BT-IO class C on cluster A for 16 and 64 processes."""
    out = {}
    for nprocs in (16, 64):
        for subtype in ("full", "simple"):
            app = BTIOApplication(BTIOConfig(clazz="C", nprocs=nprocs, subtype=subtype))
            out[(nprocs, subtype)] = cluster_a_methodology.evaluate(app)["cluster-a"]
    return out


@pytest.fixture(scope="session")
def madbench_aohyper_reports(aohyper_methodology):
    """MADbench2 16 processes, both filetypes, all three configs."""
    out = {}
    for filetype in ("unique", "shared"):
        app = MadBenchApplication(MadBenchConfig(nprocs=16, filetype=filetype))
        out[filetype] = aohyper_methodology.evaluate(app)
    return out


@pytest.fixture(scope="session")
def madbench_cluster_a_reports(cluster_a_methodology):
    out = {}
    for nprocs in (16, 64):
        for filetype in ("unique", "shared"):
            app = MadBenchApplication(MadBenchConfig(nprocs=nprocs, filetype=filetype))
            out[(nprocs, filetype)] = cluster_a_methodology.evaluate(app)["cluster-a"]
    return out
