"""Fig. 15 + Tables VI/VII — NAS BT-IO class C on cluster A with 16
and 64 processes.

Shapes (paper §IV-D):
* the full subtype "achieves more than 100% of the characterized
  performance on the I/O library for both 16 and 64 processes";
* "with a greater number of processes, the I/O system affects the run
  time" — full's I/O share grows from 16 to 64 processes;
* full "does not achieve 50% of NFS characterized values" at 64
  processes (communication + I/O contention);
* the simple subtype is limited by I/O: its "I/O time is greater than
  90% of the run time" at 64 processes.
"""

from repro.core import format_run_metrics, format_used_matrix
from conftest import show


def test_fig15_run_metrics(benchmark, btio_cluster_a_reports):
    def render():
        return format_run_metrics(
            {f"{n}p-{s}": rep for (n, s), rep in btio_cluster_a_reports.items()}
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Fig. 15 — BT-IO class C on cluster A (16/64 procs)", text)

    r = btio_cluster_a_reports
    assert r[(16, "full")].execution_time_s < r[(16, "simple")].execution_time_s
    assert r[(64, "full")].execution_time_s < r[(64, "simple")].execution_time_s
    # I/O share grows with process count for full
    assert r[(64, "full")].io_fraction > r[(16, "full")].io_fraction
    # simple at 64p: I/O time ≈ >85% of the run time (paper: >90%)
    assert r[(64, "simple")].io_fraction > 0.85


def test_tab06_writes(benchmark, btio_cluster_a_reports):
    def render():
        return format_used_matrix(
            {f"{n}p-{s}": rep for (n, s), rep in btio_cluster_a_reports.items()},
            "write",
            label="Number of Processes",
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Table VI — % of I/O system use on cluster A, WRITES", text)

    r = btio_cluster_a_reports
    # full exceeds 100% of the library-level characterization
    assert r[(16, "full")].used.cell("iolib", "write") > 100.0
    assert r[(64, "full")].used.cell("iolib", "write") > 100.0
    # simple writes are a small fraction at the NFS level
    assert r[(16, "simple")].used.cell("nfs", "write") < 20.0
    assert r[(64, "simple")].used.cell("nfs", "write") < 20.0


def test_tab07_reads(benchmark, btio_cluster_a_reports):
    def render():
        return format_used_matrix(
            {f"{n}p-{s}": rep for (n, s), rep in btio_cluster_a_reports.items()},
            "read",
            label="Number of Processes",
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Table VII — % of I/O system use on cluster A, READS", text)

    r = btio_cluster_a_reports
    # reads can exceed 100% (served by the server's cache at 16p the
    # paper reports 1,049% at the library level)
    assert r[(16, "full")].used.cell("iolib", "read") > 60.0
    # simple reads better than simple writes but still far from capacity
    for n in (16, 64):
        used = r[(n, "simple")].used
        assert used.cell("nfs", "read") > used.cell("nfs", "write")
        assert used.cell("nfs", "read") < 80.0
