"""Fig. 17 + Table IX — MADbench2 on cluster Aohyper: per-function
times and transfer rates (Fig. 17) and the used percentage of the
local-filesystem level (Table IX).

Shapes (paper §IV-F):
* MADbench2's large blocks surpass the I/O library and network
  filesystem characterizations, so the local-FS table is the
  informative one;
* on JBOD the local-FS capacity is essentially saturated; RAID 1 sits
  near half; RAID 5 near a third (its striped capacity is far above
  what the wire lets the application reach);
* RAID 5 is the most suitable configuration (highest rates, lowest
  I/O time).
"""

from repro.storage.base import MiB
from conftest import show

COLUMNS = ("S_w", "W_w", "W_r", "C_r")


def test_fig17_rates_and_times(benchmark, madbench_aohyper_reports):
    """Per-function achieved rates; regenerated from the used tables'
    profiles (the evaluation runs live in the session fixture)."""

    def render():
        lines = [f"{'config':<16}" + "".join(f"{c:>10}" for c in ("exec(s)", "io(s)"))]
        for filetype, reports in madbench_aohyper_reports.items():
            for cfg, rep in reports.items():
                lines.append(
                    f"{cfg}-{filetype:<8}{rep.execution_time_s:>10.1f}{rep.io_time_s:>10.1f}"
                )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Fig. 17 — MADbench2 on Aohyper (16 procs)", text)

    for filetype in ("unique", "shared"):
        reports = madbench_aohyper_reports[filetype]
        # RAID 5 is the most suitable configuration: lowest I/O time
        assert reports["raid5"].io_time_s <= reports["raid1"].io_time_s
        assert reports["raid5"].io_time_s <= reports["jbod"].io_time_s


def test_tab09_local_fs_used(benchmark, madbench_aohyper_reports):
    def render():
        out = {}
        for filetype, reports in madbench_aohyper_reports.items():
            for cfg, rep in reports.items():
                out[f"{cfg}-{filetype}"] = (
                    rep.used.cell("localfs", "write"),
                    rep.used.cell("localfs", "read"),
                )
        return out

    cells = benchmark.pedantic(render, rounds=1, iterations=1)
    lines = [f"{'config':<18}{'write %':>10}{'read %':>10}"]
    for name, (w, r) in cells.items():
        lines.append(f"{name:<18}{w:>10.1f}{r:>10.1f}")
    show("Table IX — MADbench2 % of use at the local-FS level", "\n".join(lines))

    for filetype in ("unique", "shared"):
        jbod_w, _ = cells[f"jbod-{filetype}"]
        raid1_w, _ = cells[f"raid1-{filetype}"]
        raid5_w, _ = cells[f"raid5-{filetype}"]
        # paper: JBOD near saturation, RAID5 far below (~30%) because its
        # striped local capacity dwarfs what the wire lets the app reach.
        # (The paper's additional JBOD>RAID1 write gap does not reproduce:
        # a mirrored write is single-spindle speed in a principled model,
        # so RAID1's characterized ceiling matches JBOD's — see
        # EXPERIMENTS.md.)
        assert jbod_w > 60.0
        assert raid5_w < 60.0
        assert raid5_w < jbod_w and raid5_w < raid1_w
