"""Table VIII + Fig. 16 — MADbench2 characterization (16/64 procs,
UNIQUE/SHARED) and its trace timeline.

Table VIII's exact values: 16 ops per process per file role
(8 writes in S, 8 writes + 8 reads in W, 8 reads in C), 162 MB blocks
at 16 processes, 40.5 MB at 64.  Fig. 16: the three I/O phases.
"""

import pytest

from repro.core import format_characterization
from repro.simengine import Environment
from repro.clusters import build_aohyper
from repro.tracing import render_timeline
from repro.workloads.madbench import MadBenchConfig, characterize_madbench, run_madbench
from conftest import show


def test_tab08(benchmark):
    def run():
        out = {}
        for nprocs in (16, 64):
            for filetype in ("unique", "shared"):
                cfg = MadBenchConfig(kpix=18, nbin=8, nprocs=nprocs, filetype=filetype)
                out[(nprocs, filetype)] = (cfg, characterize_madbench(cfg))
        return out

    chars = benchmark.pedantic(run, rounds=1, iterations=1)
    for (nprocs, filetype), (cfg, char) in chars.items():
        show(f"Table VIII — MADbench2, {nprocs} procs, {filetype.upper()}",
             format_characterization(char, f"{nprocs}p {filetype}"))

    cfg16, char16u = chars[(16, "unique")]
    assert cfg16.block_bytes == pytest.approx(162e6, rel=0.01)  # paper: 162 MB
    cfg64, _ = chars[(64, "unique")]
    assert cfg64.block_bytes == pytest.approx(40.5e6, rel=0.01)  # paper: 40.5 MB
    assert char16u["numio_read"] == 16  # 16 x file (UNIQUE)
    _, char16s = chars[(16, "shared")]
    assert char16s["numio_read"] == 256  # paper: 256 on the shared file
    _, char64s = chars[(64, "shared")]
    assert char64s["numio_read"] == 1024  # paper: 1024


def test_fig16_trace(benchmark):
    def run():
        system = build_aohyper(Environment(), "raid5")
        return run_madbench(
            system, MadBenchConfig(nprocs=16, filetype="shared", busywork_s=0.5)
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    art = render_timeline(res.tracer.events, width=100, ranks=[0, 1, 2, 3])
    show("Fig. 16 — MADbench2 trace, 16 processes (SHARED)", art)

    # three I/O phases: S (writes), W (writes+reads), C (reads)
    writes = res.tracer.count_ops("write")
    reads = res.tracer.count_ops("read")
    assert writes == 2 * 8 * 16
    assert reads == 2 * 8 * 16
    # phase order: first event is a write (S), last is a read (C)
    events = sorted(res.tracer.events, key=lambda e: e.t_start)
    assert events[0].op == "write"
    assert events[-1].op == "read"
