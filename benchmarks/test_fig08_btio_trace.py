"""Fig. 8 — NAS BT-IO trace timelines (the Jumpshot/MPE view).

Shape: repetitive behaviour — 40 write phases during the time loop,
one read phase after it; the same structure in both subtypes (the
simple subtype just issues thousands of tiny operations per phase).
"""

from repro.simengine import Environment
from repro.clusters import build_aohyper
from repro.tracing import detect_phases, render_timeline
from repro.workloads.btio import BTIOConfig, run_btio
from conftest import show


def run_trace(subtype):
    system = build_aohyper(Environment(), "raid5")
    res = run_btio(system, BTIOConfig(clazz="C", nprocs=16, subtype=subtype))
    return res


def test_fig08_full(benchmark):
    res = benchmark.pedantic(run_trace, args=("full",), rounds=1, iterations=1)
    art = render_timeline(res.tracer.events, width=100, ranks=[0, 1, 2, 3])
    show("Fig. 8(a) — BT-IO full subtype, 16 processes", art)
    # writes strictly precede the read phase
    writes = [e for e in res.tracer.events if e.op == "write"]
    reads = [e for e in res.tracer.events if e.op == "read"]
    assert max(w.t_end for w in writes) <= min(r.t_start for r in reads) + 1e-9
    # 40 write events per rank
    assert res.tracer.count_ops("write") == 640
    phases = detect_phases(res.tracer.events)
    assert {p.op for p in phases} == {"write", "read"}


def test_fig08_simple(benchmark):
    res = benchmark.pedantic(run_trace, args=("simple",), rounds=1, iterations=1)
    art = render_timeline(res.tracer.events, width=100, ranks=[0, 1])
    show("Fig. 8(b) — BT-IO simple subtype, 16 processes", art)
    # paper: each writing phase carries out 6,561 writes per process
    per_rank_per_phase = res.tracer.count_ops("write") / 16 / 40
    assert abs(per_rank_per_phase - 6561) < 66  # within 1%
