"""Fig. 18 + Tables X/XI — MADbench2 on cluster A (16/64 procs,
UNIQUE/SHARED): run metrics, and used percentage at the network- and
local-filesystem levels.

Shapes (paper §IV-G):
* "at network filesystem level, the I/O system is used almost to
  capacity with 64 processes for UNIQUE and SHARED filetypes";
* MADbench surpasses the I/O-library characterization (large blocks);
* both filetypes deliver comparable aggregate performance.
"""

from conftest import show


def _cells(reports, level):
    out = {}
    for key, rep in reports.items():
        out[key] = (rep.used.cell(level, "write"), rep.used.cell(level, "read"))
    return out


def test_fig18_run_metrics(benchmark, madbench_cluster_a_reports):
    def render():
        lines = [f"{'run':<16}{'exec(s)':>10}{'io(s)':>10}{'MB/s':>10}"]
        for (n, ft), rep in madbench_cluster_a_reports.items():
            lines.append(
                f"{n}p-{ft:<10}{rep.execution_time_s:>10.1f}{rep.io_time_s:>10.1f}"
                f"{rep.throughput_Bps / (1 << 20):>10.1f}"
            )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Fig. 18 — MADbench2 on cluster A", text)

    r = madbench_cluster_a_reports
    # comparable performance between filetypes (paper: SHARED acceptable)
    for n in (16, 64):
        a = r[(n, "unique")].execution_time_s
        b = r[(n, "shared")].execution_time_s
        assert abs(a - b) / min(a, b) < 0.25


def test_tab10_network_fs_used(benchmark, madbench_cluster_a_reports):
    cells = benchmark.pedantic(
        _cells, args=(madbench_cluster_a_reports, "nfs"), rounds=1, iterations=1
    )
    lines = [f"{'run':<16}{'write %':>10}{'read %':>10}"]
    for (n, ft), (w, rd) in cells.items():
        lines.append(f"{n}p-{ft:<10}{w:>10.1f}{rd:>10.1f}")
    show("Table X — MADbench2 % of use at the network-FS level", "\n".join(lines))

    # near capacity (or beyond, via the server cache) at 64 processes
    for ft in ("unique", "shared"):
        w, rd = cells[(64, ft)]
        assert w > 80.0
        assert rd > 80.0


def test_tab11_local_fs_used(benchmark, madbench_cluster_a_reports):
    cells = benchmark.pedantic(
        _cells, args=(madbench_cluster_a_reports, "localfs"), rounds=1, iterations=1
    )
    lines = [f"{'run':<16}{'write %':>10}{'read %':>10}"]
    for (n, ft), (w, rd) in cells.items():
        lines.append(f"{n}p-{ft:<10}{w:>10.1f}{rd:>10.1f}")
    show("Table XI — MADbench2 % of use at the local-FS level", "\n".join(lines))

    # the local level (single JBOD spindle table) is saturated or
    # exceeded: the shared RAID5 + caches deliver more than one local disk
    for key, (w, rd) in cells.items():
        assert w > 50.0
        assert rd > 50.0
