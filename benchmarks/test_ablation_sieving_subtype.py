"""Ablations — data sieving for sparse independent reads, and the
full-vs-simple subtype gap as a function of operation size (where is
the crossover at which collective buffering stops paying?)."""

from repro.simengine import Environment
from repro.clusters import build_aohyper, build_system
from repro.storage.base import KiB, MiB
from repro.workloads.synthetic import SyntheticPhase, SyntheticSpec, run_synthetic
from conftest import show


def test_data_sieving(benchmark):
    """romio_ds_read on BT-IO-shaped sparse reads (1600 B / 6480 B)."""

    def sweep():
        out = {}
        for ds in (False, True):
            system = build_aohyper(Environment(), "raid5")
            # one rank: per-op round-trip latency cannot be amortised
            # across concurrent ranks, which is the regime ROMIO's
            # sieving heuristic targets
            spec = SyntheticSpec(
                phases=(
                    SyntheticPhase("write", 1 * MiB, count=32, repetitions=1),
                    SyntheticPhase("read", 1600, count=4096, stride=6480, repetitions=4),
                ),
                nprocs=1,
                path="/nfs/sieve.dat",
            )
            world_hints = {"ds_read": ds}
            # run with hints by rebuilding the world inside run_synthetic:
            # synthetic uses system.world(); pass hints via a wrapper
            import repro.workloads.synthetic as syn

            orig = system.world

            def patched(nprocs, placement="block", tracer=None, io_hints=None):
                return orig(nprocs, placement=placement, tracer=tracer, io_hints=world_hints)

            system.world = patched
            res = run_synthetic(system, spec)
            out[ds] = res.io_time
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show("Ablation — data sieving (sparse 1600B reads @ 6480B stride)",
         "\n".join(f"ds_read={k}: io_time {v:8.2f} s" for k, v in times.items()))
    assert times[True] < times[False]


def test_collective_crossover(benchmark):
    """Collective buffering pays for small pieces; for large contiguous
    pieces the exchange phase is pure overhead and independent I/O
    catches up."""

    def sweep():
        out = {}
        for nbytes, count in ((4 * KiB, 512), (64 * KiB, 32), (2 * MiB, 1)):
            row = {}
            for collective in (True, False):
                system = build_aohyper(Environment(), "raid5")
                spec = SyntheticSpec(
                    phases=(
                        SyntheticPhase(
                            "write", nbytes, count=count,
                            stride=nbytes * 2 if count > 1 else None,
                            repetitions=4, collective=collective,
                        ),
                    ),
                    nprocs=8,
                    path="/nfs/cross.dat",
                )
                res = run_synthetic(system, spec)
                row[collective] = res.io_time
            out[nbytes] = row
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for nbytes, row in times.items():
        ratio = row[False] / row[True]
        lines.append(
            f"piece={nbytes // 1024:5d}K  collective {row[True]:7.2f}s  "
            f"independent {row[False]:7.2f}s  speedup x{ratio:5.1f}"
        )
    show("Ablation — collective buffering crossover", "\n".join(lines))
    # small pieces: collective wins big; large pieces: gap shrinks
    small_gain = times[4 * KiB][False] / times[4 * KiB][True]
    large_gain = times[2 * MiB][False] / times[2 * MiB][True]
    assert small_gain > large_gain
    assert small_gain > 2.0
