"""Figs. 13 and 14 — system characterization of cluster A: IOzone on
the local and network filesystems (Fig. 13) and IOR on the I/O
library (Fig. 14, 40 GB file, 256 KiB transfers).

Shapes: local JBOD ~ one spindle; NFS capped by the wire but backed
by the RAID 5 front-end; library level at or below NFS.
"""

import pytest

from repro.simengine import Environment
from repro.clusters import build_cluster_a
from repro.storage.base import GiB, MiB
from repro.workloads import run_ior, run_iozone
from conftest import CLUSTER_A_BLOCKS, show


def test_fig13_iozone(benchmark):
    def run():
        out = {}
        for where, path in (("local", "/local/z.tmp"), ("nfs", "/nfs/z.tmp")):
            system = build_cluster_a(Environment())
            out[where] = run_iozone(system, "n0", path, block_sizes=CLUSTER_A_BLOCKS,
                                    include_strided=False, include_random=False)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'block':>8} {'lfs write':>10} {'lfs read':>10} {'nfs write':>10} {'nfs read':>10}  (MB/s)"]
    for b in CLUSTER_A_BLOCKS:
        lines.append(
            f"{b // 1024:>7}K"
            f" {rows['local'].rate('write', b) / MiB:>10.1f}"
            f" {rows['local'].rate('read', b) / MiB:>10.1f}"
            f" {rows['nfs'].rate('write', b) / MiB:>10.1f}"
            f" {rows['nfs'].rate('read', b) / MiB:>10.1f}"
        )
    show("Fig. 13 — cluster A filesystem characterization", "\n".join(lines))
    big = CLUSTER_A_BLOCKS[-1]
    assert rows["nfs"].rate("write", big) < 130 * MiB  # wire cap
    assert rows["local"].rate("read", big) < 150 * MiB  # single local spindle


def test_fig14_ior(benchmark):
    blocks = (1 * MiB, 16 * MiB, 256 * MiB)

    def run():
        system = build_cluster_a(Environment())
        return run_ior(system, 8, block_sizes=blocks, transfer_bytes=256 * 1024,
                       file_bytes=40 * GiB)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'block':>8} {'write':>10} {'read':>10}  (MB/s aggregate)"]
    for b in blocks:
        lines.append(f"{b // MiB:>7}M {res.rate('write', b) / MiB:>10.1f} {res.rate('read', b) / MiB:>10.1f}")
    show("Fig. 14 — cluster A I/O library characterization (IOR)", "\n".join(lines))
    for b in blocks:
        assert 20 * MiB < res.rate("write", b) < 140 * MiB
