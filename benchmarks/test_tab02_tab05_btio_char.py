"""Tables II and V — NAS BT-IO class C application characterization
for 16 and 64 processes, full and simple subtypes.

These are the paper's exact numbers (geometry-derived, system
independent): 640 ops of ~10 MB / 4,199,040 ops of 1600 and 1640
bytes at 16 processes; 2560 ops of ~2.54 MB / 800- and 840-byte ops
at 64 processes.
"""

import pytest

from repro.core import format_characterization
from repro.storage.base import MiB
from repro.workloads.btio import BTIOConfig, characterize_btio
from conftest import show


def charactarize_all(nprocs):
    return {
        subtype: characterize_btio(BTIOConfig(clazz="C", nprocs=nprocs, subtype=subtype))
        for subtype in ("full", "simple")
    }


def test_tab02_16_processes(benchmark):
    chars = benchmark.pedantic(charactarize_all, args=(16,), rounds=1, iterations=1)
    for subtype, char in chars.items():
        show(f"Table II — BT-IO class C, 16 procs, {subtype}",
             format_characterization(char, f"subtype={subtype}"))
    full, simple = chars["full"], chars["simple"]
    assert full["numio_write"] == 640  # paper: 640
    assert full["numio_read"] == 640
    for b in full["block_bytes_write"]:
        assert b == pytest.approx(10 * MiB, rel=0.05)  # paper: 10 MB
    assert simple["numio_write"] == 4_199_040  # paper: 2,073,600 + 2,125,440
    assert simple["block_bytes_write"] == [1600, 1640]  # paper: 1.56KB / 1.6KB
    assert simple["ops_by_block"][1600] == pytest.approx(2_073_600, rel=0.02)
    assert simple["ops_by_block"][1640] == pytest.approx(2_125_440, rel=0.02)


def test_tab05_64_processes(benchmark):
    chars = benchmark.pedantic(charactarize_all, args=(64,), rounds=1, iterations=1)
    for subtype, char in chars.items():
        show(f"Table V — BT-IO class C, 64 procs, {subtype}",
             format_characterization(char, f"subtype={subtype}"))
    full, simple = chars["full"], chars["simple"]
    assert full["numio_write"] == 2560  # 40 I/O steps x 64 procs
    for b in full["block_bytes_write"]:
        assert b == pytest.approx(2.54 * MiB, rel=0.05)  # paper: 2.54 MB
    assert simple["block_bytes_write"] == [800, 840]  # paper: 800 / 840 bytes
