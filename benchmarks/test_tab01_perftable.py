"""Table I — the performance-table data structure and its search
semantics (Fig. 11), demonstrated on a real characterization."""

from repro.core import format_perf_table
from repro.storage.base import AccessType, MiB
from conftest import show


def test_tab01(benchmark, aohyper_methodology):
    def render():
        return format_perf_table(aohyper_methodology.tables["raid5"]["nfs"])

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    show("Table I — performance table (level: NFS, config: raid5)", text)
    for column in ("Operation", "Blocksize", "Access", "Mode", "MB/s"):
        assert column in text

    table = aohyper_methodology.tables["raid5"]["nfs"]
    # Fig. 11 cases on the real table
    blocks = sorted({r.block_bytes for r in table.rows if r.op == "write"})
    below = table.lookup("write", 1, AccessType.GLOBAL)
    at_min = table.lookup("write", blocks[0], AccessType.GLOBAL)
    assert below == at_min
    above = table.lookup("write", blocks[-1] * 100, AccessType.GLOBAL)
    at_max = table.lookup("write", blocks[-1], AccessType.GLOBAL)
    assert above == at_max
