"""Fig. 5 — local and network filesystem characterization of cluster
Aohyper (IOzone, block sizes 32 KiB–16 MiB, file = 2 x RAM) for the
JBOD, RAID 1 and RAID 5 configurations.

Shape to preserve: the local filesystem outruns NFS at large blocks;
NFS is capped by the Gigabit wire; RAID 5 gives the highest local
rates (striping), RAID 1 boosts reads over JBOD.
"""

import pytest

from repro.simengine import Environment
from repro.clusters import build_aohyper
from repro.storage.base import MiB
from repro.workloads import run_iozone
from conftest import PAPER_BLOCKS, show


def characterize_device(device: str):
    rows = {}
    for where, path in (("local", "/local/ioz.tmp"), ("nfs", "/nfs/ioz.tmp")):
        system = build_aohyper(Environment(), device)
        res = run_iozone(system, "n0", path, block_sizes=PAPER_BLOCKS,
                         include_strided=False, include_random=False)
        rows[where] = res
    return rows


@pytest.mark.parametrize("device", ["jbod", "raid1", "raid5"])
def test_fig05(benchmark, device):
    rows = benchmark.pedantic(characterize_device, args=(device,), rounds=1, iterations=1)
    lines = [f"{'block':>8} {'lfs write':>10} {'lfs read':>10} {'nfs write':>10} {'nfs read':>10}  (MB/s)"]
    for b in PAPER_BLOCKS:
        lines.append(
            f"{b // 1024:>7}K"
            f" {rows['local'].rate('write', b) / MiB:>10.1f}"
            f" {rows['local'].rate('read', b) / MiB:>10.1f}"
            f" {rows['nfs'].rate('write', b) / MiB:>10.1f}"
            f" {rows['nfs'].rate('read', b) / MiB:>10.1f}"
        )
    show(f"Fig. 5 ({device}) — Aohyper filesystem characterization", "\n".join(lines))

    local, nfs = rows["local"], rows["nfs"]
    big = PAPER_BLOCKS[-1]
    # NFS is wire-capped (~112 MiB/s on GbE)
    assert nfs.rate("write", big) < 130 * MiB
    assert nfs.rate("read", big) < 130 * MiB
    if device == "raid5":
        # striping pushes local rates beyond a single spindle / the wire
        assert local.rate("read", big) > 2 * nfs.rate("read", big)
    if device == "jbod":
        # single-disk local ~ GbE: same order of magnitude
        assert local.rate("read", big) == pytest.approx(nfs.rate("read", big), rel=0.8)


def test_fig05_raid_ordering(benchmark):
    """RAID5 local reads > RAID1 > JBOD (paper Fig. 5 panel ordering)."""

    def reads():
        out = {}
        for device in ("jbod", "raid1", "raid5"):
            system = build_aohyper(Environment(), device)
            res = run_iozone(system, "n0", "/local/o.tmp", block_sizes=(1 * MiB,),
                             include_strided=False, include_random=False)
            out[device] = res.rate("read", 1 * MiB)
        return out

    rates = benchmark.pedantic(reads, rounds=1, iterations=1)
    show("Fig. 5 — local read rate ordering",
         "\n".join(f"{d:6s} {r / MiB:8.1f} MB/s" for d, r in rates.items()))
    assert rates["raid5"] > rates["raid1"] > rates["jbod"]
